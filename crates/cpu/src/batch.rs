//! Batched, multi-sequence **interleaved** MSV and SSV filter kernels.
//!
//! The single-sequence striped filters are latency-bound, not width-bound:
//! with `M = 400` a row is only `Q = 13–25` vector ops, all serialized
//! behind the previous row's `xE → hmax → xJ/xB` broadcast chain, so a
//! wider ISA barely helps (measured: SSE2 MSV ≈ scalar, AVX2 only ~1.7×).
//! The paper's GPU mapping avoids exactly this by *inter-task* parallelism
//! — every warp owns an independent sequence (§III.E). This module is the
//! CPU transliteration of that idea: one fused inner loop scores `S`
//! sequences at once, round-robining their row updates so the `S`
//! independent dependency chains hide each other's latency
//! (warp ↦ sequence becomes batch-slot ↦ sequence).
//!
//! Per-sequence state (`dp` row, `xJ`/`xB` vectors, overflow flag) lives in
//! a small struct-of-arrays workspace. Sequences that finish early or
//! overflow drop out of the rotation (the fused loop re-dispatches at the
//! smaller width), so a length-skewed batch degrades gracefully instead of
//! padding. Every per-sequence outcome is **bit-identical** to the
//! single-sequence kernels: the interleaving never mixes data between
//! slots, it only reorders independent work in time.
//!
//! Feed batches through the length-binned scheduler in [`crate::sweep`] so
//! batch members stay in lockstep for as long as possible.

use crate::backend::Backend;
use crate::pipe::{prefetch_read, resolve_pipeline_depth};
use crate::quantized::MsvOutcome;
use crate::simd::{
    adds_u8, hmax_u8, max_u8, min_u8, shift_u8, splat_u8, subs_u8, ByteRow16, V16u8,
};
use crate::ssv::StripedSsv;
use crate::striped_msv::StripedMsv;
use h3w_hmm::alphabet::Residue;
use h3w_hmm::msvprofile::MsvProfile;

/// Largest supported batch width (slots per fused loop). Four u8 chains
/// cover the per-row feedback latency on every core we have measured;
/// eight was tried and loses 10–25% across the board — the interleaved
/// row loop keeps ~6 vectors per chain hot, and past four chains that
/// working set spills out of a 16-register vector file and the spill
/// traffic serializes exactly the work the interleave meant to overlap.
/// Pipeline depths past 4 therefore buy prefetch lookahead only.
pub const MAX_BATCH: usize = 4;

/// Reusable scratch for one batch: a single zeroed allocation holding all
/// `S` DP rows back to back (32-byte aligned so AVX2 rows never split a
/// cache line).
#[derive(Debug, Default)]
pub struct BatchWorkspace {
    buf: Vec<ByteRow16>,
}

impl BatchWorkspace {
    /// A zeroed, 32-byte-aligned scratch region of at least `bytes` bytes.
    fn zeroed(&mut self, bytes: usize) -> *mut u8 {
        // Two spare rows let the working pointer snap to a 32-byte
        // boundary.
        let entries = bytes.div_ceil(16) + 2;
        self.buf.clear();
        self.buf.resize(entries, ByteRow16::ZERO);
        let p = self.buf.as_mut_ptr() as *mut u8;
        // SAFETY: the slack above covers the alignment bump.
        unsafe { p.add(p.align_offset(32)) }
    }
}

/// The 8-bit saturating byte pipeline one backend exposes to the fused
/// kernels: just enough lane algebra for the MSV/SSV recurrences.
///
/// # Safety
///
/// Implementations may compile to ISA extensions; callers must only invoke
/// them when [`Backend::available`] said so (the `run_batch_into` entry
/// points guarantee this). Pointers passed to `load`/`store` must be valid
/// for `LANES` bytes.
trait BytePipe {
    type V: Copy;
    const LANES: usize;
    unsafe fn zero() -> Self::V;
    unsafe fn splat(x: u8) -> Self::V;
    unsafe fn max(a: Self::V, b: Self::V) -> Self::V;
    unsafe fn min(a: Self::V, b: Self::V) -> Self::V;
    unsafe fn adds(a: Self::V, b: Self::V) -> Self::V;
    unsafe fn subs(a: Self::V, b: Self::V) -> Self::V;
    /// Shift bytes up one lane, injecting 0 into lane 0 (the striped
    /// diagonal move).
    unsafe fn shl1(a: Self::V) -> Self::V;
    /// Every lane of the result holds `hmax(a)` — the vector-domain
    /// row reduction, so the `xJ/xB` feedback never round-trips through a
    /// general-purpose register.
    unsafe fn bcast_hmax(a: Self::V) -> Self::V;
    unsafe fn extract0(a: Self::V) -> u8;
    /// Is any lane of `a` `≥` the (splatted) `limit`?
    unsafe fn any_ge(a: Self::V, limit: Self::V) -> bool;
    unsafe fn or(a: Self::V, b: Self::V) -> Self::V;
    /// Is any byte of `a` nonzero?
    unsafe fn any_set(a: Self::V) -> bool;
    unsafe fn load(p: *const u8) -> Self::V;
    unsafe fn store(p: *mut u8, v: Self::V);
}

/// Portable emulated 16-lane pipeline (the scalar backend).
struct ScalarPipe;

impl BytePipe for ScalarPipe {
    type V = V16u8;
    const LANES: usize = 16;
    #[inline(always)]
    unsafe fn zero() -> V16u8 {
        splat_u8(0)
    }
    #[inline(always)]
    unsafe fn splat(x: u8) -> V16u8 {
        splat_u8(x)
    }
    #[inline(always)]
    unsafe fn max(a: V16u8, b: V16u8) -> V16u8 {
        max_u8(a, b)
    }
    #[inline(always)]
    unsafe fn min(a: V16u8, b: V16u8) -> V16u8 {
        min_u8(a, b)
    }
    #[inline(always)]
    unsafe fn adds(a: V16u8, b: V16u8) -> V16u8 {
        adds_u8(a, b)
    }
    #[inline(always)]
    unsafe fn subs(a: V16u8, b: V16u8) -> V16u8 {
        subs_u8(a, b)
    }
    #[inline(always)]
    unsafe fn shl1(a: V16u8) -> V16u8 {
        shift_u8(a, 0)
    }
    #[inline(always)]
    unsafe fn bcast_hmax(a: V16u8) -> V16u8 {
        splat_u8(hmax_u8(a))
    }
    #[inline(always)]
    unsafe fn extract0(a: V16u8) -> u8 {
        a[0]
    }
    #[inline(always)]
    unsafe fn any_ge(a: V16u8, limit: V16u8) -> bool {
        hmax_u8(a) >= limit[0]
    }
    #[inline(always)]
    unsafe fn or(a: V16u8, b: V16u8) -> V16u8 {
        let mut r = [0u8; 16];
        for i in 0..16 {
            r[i] = a[i] | b[i];
        }
        r
    }
    #[inline(always)]
    unsafe fn any_set(a: V16u8) -> bool {
        a.iter().any(|&x| x != 0)
    }
    #[inline(always)]
    unsafe fn load(p: *const u8) -> V16u8 {
        core::ptr::read_unaligned(p as *const V16u8)
    }
    #[inline(always)]
    unsafe fn store(p: *mut u8, v: V16u8) {
        core::ptr::write_unaligned(p as *mut V16u8, v)
    }
}

/// Real 128-bit SSE2 pipeline over the same 16-lane layout.
#[cfg(target_arch = "x86_64")]
struct Sse2Pipe;

#[cfg(target_arch = "x86_64")]
impl BytePipe for Sse2Pipe {
    type V = core::arch::x86_64::__m128i;
    const LANES: usize = 16;
    #[inline(always)]
    unsafe fn zero() -> Self::V {
        core::arch::x86_64::_mm_setzero_si128()
    }
    #[inline(always)]
    unsafe fn splat(x: u8) -> Self::V {
        core::arch::x86_64::_mm_set1_epi8(x as i8)
    }
    #[inline(always)]
    unsafe fn max(a: Self::V, b: Self::V) -> Self::V {
        core::arch::x86_64::_mm_max_epu8(a, b)
    }
    #[inline(always)]
    unsafe fn min(a: Self::V, b: Self::V) -> Self::V {
        core::arch::x86_64::_mm_min_epu8(a, b)
    }
    #[inline(always)]
    unsafe fn adds(a: Self::V, b: Self::V) -> Self::V {
        core::arch::x86_64::_mm_adds_epu8(a, b)
    }
    #[inline(always)]
    unsafe fn subs(a: Self::V, b: Self::V) -> Self::V {
        core::arch::x86_64::_mm_subs_epu8(a, b)
    }
    #[inline(always)]
    unsafe fn shl1(a: Self::V) -> Self::V {
        crate::x86::shl1_u8_128(a)
    }
    #[inline(always)]
    unsafe fn bcast_hmax(a: Self::V) -> Self::V {
        use core::arch::x86_64::*;
        // Funnel the max into lane 0 (shifted-in zeros never win an
        // unsigned max), then broadcast it with SSE2-only shuffles.
        let a = _mm_max_epu8(a, _mm_srli_si128::<8>(a));
        let a = _mm_max_epu8(a, _mm_srli_si128::<4>(a));
        let a = _mm_max_epu8(a, _mm_srli_si128::<2>(a));
        let a = _mm_max_epu8(a, _mm_srli_si128::<1>(a));
        let a = _mm_unpacklo_epi8(a, a);
        let a = _mm_unpacklo_epi16(a, a);
        _mm_shuffle_epi32::<0>(a)
    }
    #[inline(always)]
    unsafe fn extract0(a: Self::V) -> u8 {
        (core::arch::x86_64::_mm_cvtsi128_si32(a) & 0xff) as u8
    }
    #[inline(always)]
    unsafe fn any_ge(a: Self::V, limit: Self::V) -> bool {
        use core::arch::x86_64::*;
        // Unsigned `a ≥ limit` as `max(a, limit) == a` lane-wise.
        _mm_movemask_epi8(_mm_cmpeq_epi8(_mm_max_epu8(a, limit), a)) != 0
    }
    #[inline(always)]
    unsafe fn or(a: Self::V, b: Self::V) -> Self::V {
        core::arch::x86_64::_mm_or_si128(a, b)
    }
    #[inline(always)]
    unsafe fn any_set(a: Self::V) -> bool {
        use core::arch::x86_64::*;
        // Compare against zero: movemask alone only sees the high bit.
        _mm_movemask_epi8(_mm_cmpeq_epi8(a, _mm_setzero_si128())) != 0xffff
    }
    #[inline(always)]
    unsafe fn load(p: *const u8) -> Self::V {
        crate::x86::loadu128(p)
    }
    #[inline(always)]
    unsafe fn store(p: *mut u8, v: Self::V) {
        crate::x86::storeu128(p, v)
    }
}

/// 256-bit AVX2 pipeline over the re-striped 32-lane layout.
#[cfg(target_arch = "x86_64")]
struct Avx2Pipe;

#[cfg(target_arch = "x86_64")]
impl BytePipe for Avx2Pipe {
    type V = core::arch::x86_64::__m256i;
    const LANES: usize = 32;
    #[inline(always)]
    unsafe fn zero() -> Self::V {
        core::arch::x86_64::_mm256_setzero_si256()
    }
    #[inline(always)]
    unsafe fn splat(x: u8) -> Self::V {
        core::arch::x86_64::_mm256_set1_epi8(x as i8)
    }
    #[inline(always)]
    unsafe fn max(a: Self::V, b: Self::V) -> Self::V {
        core::arch::x86_64::_mm256_max_epu8(a, b)
    }
    #[inline(always)]
    unsafe fn min(a: Self::V, b: Self::V) -> Self::V {
        core::arch::x86_64::_mm256_min_epu8(a, b)
    }
    #[inline(always)]
    unsafe fn adds(a: Self::V, b: Self::V) -> Self::V {
        core::arch::x86_64::_mm256_adds_epu8(a, b)
    }
    #[inline(always)]
    unsafe fn subs(a: Self::V, b: Self::V) -> Self::V {
        core::arch::x86_64::_mm256_subs_epu8(a, b)
    }
    #[inline(always)]
    unsafe fn shl1(a: Self::V) -> Self::V {
        crate::x86::shl1_u8_256(a)
    }
    #[inline(always)]
    unsafe fn bcast_hmax(a: Self::V) -> Self::V {
        use core::arch::x86_64::*;
        // Swap 128-bit halves, then rotate within each half — every lane
        // ends up holding max(a) (same idiom as the single-sequence AVX2
        // kernel).
        let mut m = _mm256_max_epu8(a, _mm256_permute2x128_si256::<0x01>(a, a));
        m = _mm256_max_epu8(m, _mm256_alignr_epi8::<8>(m, m));
        m = _mm256_max_epu8(m, _mm256_alignr_epi8::<4>(m, m));
        m = _mm256_max_epu8(m, _mm256_alignr_epi8::<2>(m, m));
        _mm256_max_epu8(m, _mm256_alignr_epi8::<1>(m, m))
    }
    #[inline(always)]
    unsafe fn extract0(a: Self::V) -> u8 {
        core::arch::x86_64::_mm256_extract_epi8::<0>(a) as u8
    }
    #[inline(always)]
    unsafe fn any_ge(a: Self::V, limit: Self::V) -> bool {
        use core::arch::x86_64::*;
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(_mm256_max_epu8(a, limit), a)) != 0
    }
    #[inline(always)]
    unsafe fn or(a: Self::V, b: Self::V) -> Self::V {
        core::arch::x86_64::_mm256_or_si256(a, b)
    }
    #[inline(always)]
    unsafe fn any_set(a: Self::V) -> bool {
        // AVX2 implies AVX, so `vptest` is available (the SSE2 pipeline
        // can't assume SSE4.1 and pays a compare + movemask instead).
        core::arch::x86_64::_mm256_testz_si256(a, a) == 0
    }
    #[inline(always)]
    unsafe fn load(p: *const u8) -> Self::V {
        crate::x86::loadu256(p)
    }
    #[inline(always)]
    unsafe fn store(p: *mut u8, v: Self::V) {
        crate::x86::storeu256(p, v)
    }
}

/// One fused MSV chunk: advance `S` lockstep slots by up to `rows` rows,
/// returning how many rows completed. Stops early (after finishing the
/// row for every slot) as soon as any slot overflows, flagging it in
/// `ovf`. State arrays are `MAX_BATCH`-sized; only `0..S` is live.
///
/// `pf` is the software-pipelining prefetch distance in rows: before
/// computing row `r` the loop touches the striped emission row that row
/// `r + pf` will gather (`rbv[seq[r + pf] · stride]`), the
/// data-dependent load the hardware prefetcher cannot predict. `pf = 0`
/// disables the prefetch front entirely; no value of `pf` can change
/// any result.
///
/// Every slot carries its own striped table pointer and model constants
/// (`rbv`, `biasv`, `basev`, `overv`, …), so a batch may mix sequences
/// *and models* — the multi-profile fused scan packs several small HMMs
/// against one sequence block through this same loop. All slots must
/// share the stripe count `q`; the model-pack scheduler guarantees it.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
unsafe fn msv_chunk<P: BytePipe, const S: usize>(
    q: usize,
    pf: usize,
    rbv: &[*const u8; MAX_BATCH],
    rows: usize,
    r0: usize,
    seqs: &[&[Residue]; MAX_BATCH],
    dp: &[*mut u8; MAX_BATCH],
    biasv: &[P::V; MAX_BATCH],
    basev: &[P::V; MAX_BATCH],
    overv: &[P::V; MAX_BATCH],
    tecv: &[P::V; MAX_BATCH],
    tjbmv: &[P::V; MAX_BATCH],
    xjv: &mut [P::V; MAX_BATCH],
    xbv: &mut [P::V; MAX_BATCH],
    limm1: &mut [P::V; MAX_BATCH],
    ovf: &mut [bool; MAX_BATCH],
) -> usize {
    let stride = q * P::LANES;
    for i in 0..rows {
        let row = r0 + i;
        let mut rowp = [rbv[0]; S];
        let mut xev = [P::zero(); S];
        let mut mpv = [P::zero(); S];
        for s in 0..S {
            rowp[s] = rbv[s].add(*seqs[s].get_unchecked(row) as usize * stride);
            mpv[s] = P::shl1(P::load(dp[s].add(stride - P::LANES)));
        }
        if pf > 0 {
            for s in 0..S {
                if let Some(&x) = seqs[s].get(row + pf) {
                    prefetch_read(rbv[s].add(x as usize * stride));
                }
            }
        }
        // Stripe-outer, slot-inner: the interleave is in the source so
        // every stripe step issues S independent copies of the
        // max→adds→subs chain back to back — one chain's latency is
        // hidden behind the others' arithmetic even when the OoO window
        // is full of the (serial) row-to-row `shl1(dp[last])` feedback.
        for qi in 0..q {
            let off = qi * P::LANES;
            for s in 0..S {
                let rv = P::load(rowp[s].add(off));
                let cur = P::load(dp[s].add(off));
                let sv = P::subs(P::adds(P::max(mpv[s], xbv[s]), biasv[s]), rv);
                xev[s] = P::max(xev[s], sv);
                mpv[s] = cur;
                P::store(dp[s].add(off), sv);
            }
        }
        // Lazy-J, the MSV analog of the striped Viterbi's lazy-F:
        // `xJ` can only grow when some `xE` lane reaches
        // `lim = min(overflow_at, xJ + tec)` (saturating), and `xB` is a
        // pure function of `xJ` — so one lane-wise test against `lim`
        // skips both the overflow check and the whole hmax reduction on
        // the (vastly most common) rows where nothing can change. `xJ` is
        // a running maximum, so it updates only O(log L) times on
        // background sequences; the test threshold is cached per slot and
        // recomputed only then. The test itself is one saturating subtract
        // per slot against `limm1 = max(lim, 1) − 1` (a lane is nonzero
        // iff `xE ≥ max(lim, 1)`), OR-folded into a single movemask +
        // branch per row. Exactness of the `max(lim, 1)` clamp (the driver
        // guarantees `overflow_at ≥ 1`):
        //   * `lim ≥ 1`: the clamp is a no-op, and a skip means every
        //     lane `< lim ≤ xJ + tec`, i.e. `hmax − tec ≤ xJ` — with
        //     saturation safe too: `xJ + tec` pinned at 255 with all
        //     lanes `< 255` already implies `hmax − tec ≤ 255 − tec ≤ xJ`.
        //   * `lim = 0`: forces `xJ = 0 ∧ tec = 0`, so the clamp only
        //     skips all-zero `xE` rows, where the slow path is a no-op
        //     (`max(0, subs(0, 0)) = 0`, no overflow since
        //     `overflow_at ≥ 1`).
        let mut hot = P::zero();
        for s in 0..S {
            hot = P::or(hot, P::subs(xev[s], limm1[s]));
        }
        if P::any_set(hot) {
            let mut any_ovf = false;
            for s in 0..S {
                if P::any_set(P::subs(xev[s], limm1[s])) {
                    // `any_ge(xev, overv)` ≡ `hmax(xev) ≥ overflow_at`
                    // for unsigned bytes.
                    if P::any_ge(xev[s], overv[s]) {
                        ovf[s] = true;
                        any_ovf = true;
                    } else {
                        let e = P::bcast_hmax(xev[s]);
                        xjv[s] = P::max(xjv[s], P::subs(e, tecv[s]));
                        xbv[s] = P::subs(P::max(basev[s], xjv[s]), tjbmv[s]);
                        let lim = P::min(overv[s], P::adds(xjv[s], tecv[s]));
                        let onev = P::splat(1);
                        limm1[s] = P::subs(P::max(lim, onev), onev);
                    }
                }
            }
            if any_ovf {
                return i + 1;
            }
        }
    }
    rows
}

/// One fused SSV chunk — the best case for interleaving: no per-row
/// reduction at all, so the only cross-row dependency is the `dp` row
/// itself and `S` chains pipeline almost perfectly.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
unsafe fn ssv_chunk<P: BytePipe, const S: usize>(
    q: usize,
    pf: usize,
    rbv: &[*const u8; MAX_BATCH],
    rows: usize,
    r0: usize,
    seqs: &[&[Residue]; MAX_BATCH],
    dp: &[*mut u8; MAX_BATCH],
    biasv: &[P::V; MAX_BATCH],
    overv: &[P::V; MAX_BATCH],
    xbv: &[P::V; MAX_BATCH],
    xmaxv: &mut [P::V; MAX_BATCH],
    ovf: &mut [bool; MAX_BATCH],
) -> usize {
    let stride = q * P::LANES;
    for i in 0..rows {
        let row = r0 + i;
        let mut rowp = [rbv[0]; S];
        let mut mpv = [P::zero(); S];
        for s in 0..S {
            rowp[s] = rbv[s].add(*seqs[s].get_unchecked(row) as usize * stride);
            mpv[s] = P::shl1(P::load(dp[s].add(stride - P::LANES)));
        }
        if pf > 0 {
            for s in 0..S {
                if let Some(&x) = seqs[s].get(row + pf) {
                    prefetch_read(rbv[s].add(x as usize * stride));
                }
            }
        }
        for qi in 0..q {
            let off = qi * P::LANES;
            for s in 0..S {
                let rv = P::load(rowp[s].add(off));
                let cur = P::load(dp[s].add(off));
                let sv = P::subs(P::adds(P::max(mpv[s], xbv[s]), biasv[s]), rv);
                xmaxv[s] = P::max(xmaxv[s], sv);
                mpv[s] = cur;
                P::store(dp[s].add(off), sv);
            }
        }
        let mut any_ovf = false;
        for s in 0..S {
            if P::any_ge(xmaxv[s], overv[s]) {
                ovf[s] = true;
                any_ovf = true;
            }
        }
        if any_ovf {
            return i + 1;
        }
    }
    rows
}

/// Swap dense slot `a` and `b` across every struct-of-arrays column.
macro_rules! swap_slots {
    ($a:expr, $b:expr; $($col:expr),+ $(,)?) => {
        $( $col.swap($a, $b); )+
    };
}

/// One (model, sequence) pairing in backend-agnostic raw form: the striped
/// table pointer the slot walks plus the model constants its state vectors
/// are built from. The fused drivers are written against this, so the
/// single-model sequence batch and the multi-profile model pack share one
/// kernel. The `rbv` pointer must match the dispatched pipeline's lane
/// width and stay valid for the whole batch call.
#[derive(Clone, Copy)]
struct SlotSpec<'a> {
    rbv: *const u8,
    base: u8,
    bias: u8,
    overflow_at: u8,
    om: &'a MsvProfile,
    seq: &'a [Residue],
}

/// Generic batched MSV driver: dense struct-of-arrays slot state, a common
/// row cursor (the scheduler keeps batch members near-equal length, so
/// slots stay fused for most of the sweep), and dropout on early finish or
/// overflow. Each slot is an independent (model, sequence) pair; all slots
/// share the stripe count `q`.
#[inline(always)]
unsafe fn msv_batch<P: BytePipe>(
    q: usize,
    pf: usize,
    specs: &[SlotSpec],
    ws: &mut BatchWorkspace,
    out: &mut [MsvOutcome],
) {
    let row_bytes = q * P::LANES;
    let dp0 = ws.zeroed(specs.len() * row_bytes);

    let mut slot = [0usize; MAX_BATCH];
    let mut seqd: [&[Residue]; MAX_BATCH] = [&[]; MAX_BATCH];
    let mut rbv = [core::ptr::null::<u8>(); MAX_BATCH];
    let mut dp = [core::ptr::null_mut::<u8>(); MAX_BATCH];
    let mut xjv = [P::zero(); MAX_BATCH];
    let mut xbv = [P::zero(); MAX_BATCH];
    let mut biasv = [P::zero(); MAX_BATCH];
    let mut basev = [P::zero(); MAX_BATCH];
    let mut overv = [P::zero(); MAX_BATCH];
    let mut tecv = [P::zero(); MAX_BATCH];
    let mut tjbmv = [P::zero(); MAX_BATCH];
    let mut limm1 = [P::zero(); MAX_BATCH];
    let mut ovf = [false; MAX_BATCH];
    let onev = P::splat(1);
    let mut live = 0usize;
    for (d, sp) in specs.iter().enumerate() {
        if sp.overflow_at == 0 {
            // Degenerate threshold: the striped kernel overflows on the
            // first row of any non-empty sequence. Retiring the slot
            // before it enters the rotation lets the fused loop's lazy-J
            // test assume `overflow_at ≥ 1` for every live batchmate.
            out[d] = if sp.seq.is_empty() {
                MsvOutcome {
                    xj: 0,
                    overflow: false,
                    score: sp.om.score_to_nats(0, 0),
                }
            } else {
                MsvOutcome {
                    xj: 255,
                    overflow: true,
                    score: MsvProfile::overflow_score(),
                }
            };
            continue;
        }
        let lc = sp.om.len_costs(sp.seq.len());
        slot[live] = d;
        seqd[live] = sp.seq;
        rbv[live] = sp.rbv;
        dp[live] = dp0.add(live * row_bytes);
        xbv[live] = P::splat(sp.base.saturating_sub(lc.tjbm));
        biasv[live] = P::splat(sp.bias);
        basev[live] = P::splat(sp.base);
        overv[live] = P::splat(sp.overflow_at);
        tecv[live] = P::splat(lc.tec);
        tjbmv[live] = P::splat(lc.tjbm);
        // Cached lazy-J test threshold; `xJ` starts at 0.
        limm1[live] = P::subs(P::max(P::min(overv[live], tecv[live]), onev), onev);
        live += 1;
    }

    let mut r = 0usize; // common row cursor of all live slots
    while live > 0 {
        // Retire slots whose sequence is exhausted.
        let mut d = 0;
        while d < live {
            if seqd[d].len() == r {
                let xj = P::extract0(xjv[d]);
                out[slot[d]] = MsvOutcome {
                    xj,
                    overflow: false,
                    score: specs[slot[d]].om.score_to_nats(xj, seqd[d].len()),
                };
                live -= 1;
                swap_slots!(d, live; slot, seqd, rbv, dp, xjv, xbv, biasv, basev, overv,
                    tecv, tjbmv, limm1, ovf);
                continue;
            }
            d += 1;
        }
        if live == 0 {
            break;
        }
        let rows = (0..live).map(|d| seqd[d].len() - r).min().unwrap();
        let done = match live {
            1 => msv_chunk::<P, 1>(
                q, pf, &rbv, rows, r, &seqd, &dp, &biasv, &basev, &overv, &tecv, &tjbmv, &mut xjv,
                &mut xbv, &mut limm1, &mut ovf,
            ),
            2 => msv_chunk::<P, 2>(
                q, pf, &rbv, rows, r, &seqd, &dp, &biasv, &basev, &overv, &tecv, &tjbmv, &mut xjv,
                &mut xbv, &mut limm1, &mut ovf,
            ),
            3 => msv_chunk::<P, 3>(
                q, pf, &rbv, rows, r, &seqd, &dp, &biasv, &basev, &overv, &tecv, &tjbmv, &mut xjv,
                &mut xbv, &mut limm1, &mut ovf,
            ),
            _ => msv_chunk::<P, 4>(
                q, pf, &rbv, rows, r, &seqd, &dp, &biasv, &basev, &overv, &tecv, &tjbmv, &mut xjv,
                &mut xbv, &mut limm1, &mut ovf,
            ),
        };
        r += done;
        // Retire overflowed slots (checking the swapped-in tail as well).
        let mut d = 0;
        while d < live {
            if ovf[d] {
                out[slot[d]] = MsvOutcome {
                    xj: 255,
                    overflow: true,
                    score: MsvProfile::overflow_score(),
                };
                live -= 1;
                swap_slots!(d, live; slot, seqd, rbv, dp, xjv, xbv, biasv, basev, overv,
                    tecv, tjbmv, limm1, ovf);
                ovf[live] = false;
                continue;
            }
            d += 1;
        }
    }
}

/// Generic batched SSV driver — same dropout scheme as [`msv_batch`] with
/// the per-row feedback stripped (constant `xB`, global `xmax`). Slots are
/// independent (model, sequence) pairs sharing the stripe count `q`.
#[inline(always)]
unsafe fn ssv_batch<P: BytePipe>(
    q: usize,
    pf: usize,
    specs: &[SlotSpec],
    ws: &mut BatchWorkspace,
    out: &mut [MsvOutcome],
) {
    let n = specs.len();
    let row_bytes = q * P::LANES;
    let dp0 = ws.zeroed(n * row_bytes);

    let mut slot = [0usize; MAX_BATCH];
    let mut seqd: [&[Residue]; MAX_BATCH] = [&[]; MAX_BATCH];
    let mut rbv = [core::ptr::null::<u8>(); MAX_BATCH];
    let mut dp = [core::ptr::null_mut::<u8>(); MAX_BATCH];
    let mut xbv = [P::zero(); MAX_BATCH];
    let mut biasv = [P::zero(); MAX_BATCH];
    let mut overv = [P::zero(); MAX_BATCH];
    let mut xmaxv = [P::zero(); MAX_BATCH];
    let mut ovf = [false; MAX_BATCH];
    for (d, sp) in specs.iter().enumerate() {
        let lc = sp.om.len_costs(sp.seq.len());
        slot[d] = d;
        seqd[d] = sp.seq;
        rbv[d] = sp.rbv;
        dp[d] = dp0.add(d * row_bytes);
        xbv[d] = P::splat(sp.base.saturating_sub(lc.tjbm));
        biasv[d] = P::splat(sp.bias);
        overv[d] = P::splat(sp.overflow_at);
    }

    let mut r = 0usize;
    let mut live = n;
    while live > 0 {
        let mut d = 0;
        while d < live {
            if seqd[d].len() == r {
                let xmax = P::extract0(P::bcast_hmax(xmaxv[d]));
                out[slot[d]] = MsvOutcome {
                    xj: xmax,
                    overflow: false,
                    score: specs[slot[d]].om.ssv_score_to_nats(xmax, seqd[d].len()),
                };
                live -= 1;
                swap_slots!(d, live; slot, seqd, rbv, dp, xbv, biasv, overv, xmaxv, ovf);
                continue;
            }
            d += 1;
        }
        if live == 0 {
            break;
        }
        let rows = (0..live).map(|d| seqd[d].len() - r).min().unwrap();
        let done = match live {
            1 => ssv_chunk::<P, 1>(
                q, pf, &rbv, rows, r, &seqd, &dp, &biasv, &overv, &xbv, &mut xmaxv, &mut ovf,
            ),
            2 => ssv_chunk::<P, 2>(
                q, pf, &rbv, rows, r, &seqd, &dp, &biasv, &overv, &xbv, &mut xmaxv, &mut ovf,
            ),
            3 => ssv_chunk::<P, 3>(
                q, pf, &rbv, rows, r, &seqd, &dp, &biasv, &overv, &xbv, &mut xmaxv, &mut ovf,
            ),
            _ => ssv_chunk::<P, 4>(
                q, pf, &rbv, rows, r, &seqd, &dp, &biasv, &overv, &xbv, &mut xmaxv, &mut ovf,
            ),
        };
        r += done;
        let mut d = 0;
        while d < live {
            if ovf[d] {
                out[slot[d]] = MsvOutcome {
                    xj: 255,
                    overflow: true,
                    score: MsvProfile::overflow_score(),
                };
                live -= 1;
                swap_slots!(d, live; slot, seqd, rbv, dp, xbv, biasv, overv, xmaxv, ovf);
                ovf[live] = false;
                continue;
            }
            d += 1;
        }
    }
}

/// One (model, sequence) pairing for the fused multi-profile MSV entry
/// point [`msv_multi_batch_into`].
#[derive(Clone, Copy)]
pub struct MsvPair<'a> {
    /// Striped tables of the model scoring this slot.
    pub striped: &'a StripedMsv,
    /// That model's scoring profile (length costs, nat conversion).
    pub om: &'a MsvProfile,
    /// The digitized target sequence.
    pub seq: &'a [Residue],
}

/// One (model, sequence) pairing for the fused multi-profile SSV entry
/// point [`ssv_multi_batch_into`].
#[derive(Clone, Copy)]
pub struct SsvPair<'a> {
    /// Striped tables of the model scoring this slot.
    pub striped: &'a StripedSsv,
    /// That model's scoring profile.
    pub om: &'a MsvProfile,
    /// The digitized target sequence.
    pub seq: &'a [Residue],
}

/// AVX2 monomorphizations behind `#[target_feature]` so the fused loops
/// compile to 256-bit code (the `#[inline(always)]` generics fold into
/// this feature context).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn msv_batch_avx2(
    q: usize,
    pf: usize,
    specs: &[SlotSpec],
    ws: &mut BatchWorkspace,
    out: &mut [MsvOutcome],
) {
    msv_batch::<Avx2Pipe>(q, pf, specs, ws, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn ssv_batch_avx2(
    q: usize,
    pf: usize,
    specs: &[SlotSpec],
    ws: &mut BatchWorkspace,
    out: &mut [MsvOutcome],
) {
    ssv_batch::<Avx2Pipe>(q, pf, specs, ws, out)
}

/// Dispatch a spec array to the pipeline matching `backend`. `q` must be
/// the stripe count of the layout every `specs[i].rbv` points into
/// (16-lane for scalar/SSE2, 32-lane for AVX2).
unsafe fn dispatch_msv(
    backend: Backend,
    q: usize,
    pf: usize,
    specs: &[SlotSpec],
    ws: &mut BatchWorkspace,
    out: &mut [MsvOutcome],
) {
    match backend {
        Backend::Scalar => msv_batch::<ScalarPipe>(q, pf, specs, ws, out),
        // SAFETY: with_backend only selects Sse2/Avx2 when the CPU
        // reports the feature.
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => msv_batch::<Sse2Pipe>(q, pf, specs, ws, out),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => msv_batch_avx2(q, pf, specs, ws, out),
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("non-scalar backend on a non-x86_64 host"),
    }
}

unsafe fn dispatch_ssv(
    backend: Backend,
    q: usize,
    pf: usize,
    specs: &[SlotSpec],
    ws: &mut BatchWorkspace,
    out: &mut [MsvOutcome],
) {
    match backend {
        Backend::Scalar => ssv_batch::<ScalarPipe>(q, pf, specs, ws, out),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => ssv_batch::<Sse2Pipe>(q, pf, specs, ws, out),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => ssv_batch_avx2(q, pf, specs, ws, out),
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("non-scalar backend on a non-x86_64 host"),
    }
}

impl StripedMsv {
    /// The striped table pointer the dispatched backend actually walks.
    fn table_ptr(&self) -> *const u8 {
        #[cfg(target_arch = "x86_64")]
        if let Some(t) = self.avx.as_ref() {
            return t.rbv.as_ptr() as *const u8;
        }
        self.rbv.as_ptr() as *const u8
    }

    fn slot_spec<'a>(&'a self, om: &'a MsvProfile, seq: &'a [Residue]) -> SlotSpec<'a> {
        SlotSpec {
            rbv: self.table_ptr(),
            base: self.base,
            bias: self.bias,
            overflow_at: self.overflow_at,
            om,
            seq,
        }
    }

    /// Score up to [`MAX_BATCH`] sequences in one interleaved pass.
    /// `out[i]` receives `seqs[i]`'s outcome, bit-identical to
    /// [`StripedMsv::run_into`] on the same backend (and therefore to the
    /// scalar reference). Runs at the auto pipeline depth; see
    /// [`StripedMsv::run_batch_pipelined_into`] for the explicit knob.
    pub fn run_batch_into(
        &self,
        om: &MsvProfile,
        seqs: &[&[Residue]],
        ws: &mut BatchWorkspace,
        out: &mut [MsvOutcome],
    ) {
        self.run_batch_pipelined_into(om, seqs, ws, out, 0)
    }

    /// [`StripedMsv::run_batch_into`] with an explicit software-pipeline
    /// depth (`0` = auto): the resolved schedule's lookahead becomes the
    /// fused loop's prefetch distance. The *chain* half of the depth is a
    /// scheduling decision — callers cap the batch width they pass in
    /// (see [`crate::sweep`]). Outcomes are bit-identical at every depth.
    pub fn run_batch_pipelined_into(
        &self,
        om: &MsvProfile,
        seqs: &[&[Residue]],
        ws: &mut BatchWorkspace,
        out: &mut [MsvOutcome],
        depth: usize,
    ) {
        assert!(seqs.len() <= MAX_BATCH, "batch wider than MAX_BATCH");
        assert_eq!(seqs.len(), out.len());
        if seqs.is_empty() {
            return;
        }
        let pf = resolve_pipeline_depth(depth).lookahead;
        let mut specs = [self.slot_spec(om, &[]); MAX_BATCH];
        for (sp, &seq) in specs.iter_mut().zip(seqs) {
            sp.seq = seq;
        }
        unsafe {
            dispatch_msv(
                self.backend(),
                self.active_q(),
                pf,
                &specs[..seqs.len()],
                ws,
                out,
            )
        }
    }
}

impl StripedSsv {
    fn table_ptr(&self) -> *const u8 {
        #[cfg(target_arch = "x86_64")]
        if let Some(t) = self.avx.as_ref() {
            return t.rbv.as_ptr() as *const u8;
        }
        self.rbv.as_ptr() as *const u8
    }

    fn slot_spec<'a>(&'a self, om: &'a MsvProfile, seq: &'a [Residue]) -> SlotSpec<'a> {
        SlotSpec {
            rbv: self.table_ptr(),
            base: self.base,
            bias: self.bias,
            overflow_at: self.overflow_at,
            om,
            seq,
        }
    }

    /// Score up to [`MAX_BATCH`] sequences in one interleaved pass,
    /// bit-identical to [`ssv_filter_scalar`](crate::ssv::ssv_filter_scalar)
    /// per sequence. Runs at the auto pipeline depth.
    pub fn run_batch_into(
        &self,
        om: &MsvProfile,
        seqs: &[&[Residue]],
        ws: &mut BatchWorkspace,
        out: &mut [MsvOutcome],
    ) {
        self.run_batch_pipelined_into(om, seqs, ws, out, 0)
    }

    /// [`StripedSsv::run_batch_into`] with an explicit software-pipeline
    /// depth (`0` = auto); outcomes are bit-identical at every depth.
    pub fn run_batch_pipelined_into(
        &self,
        om: &MsvProfile,
        seqs: &[&[Residue]],
        ws: &mut BatchWorkspace,
        out: &mut [MsvOutcome],
        depth: usize,
    ) {
        assert!(seqs.len() <= MAX_BATCH, "batch wider than MAX_BATCH");
        assert_eq!(seqs.len(), out.len());
        if seqs.is_empty() {
            return;
        }
        let pf = resolve_pipeline_depth(depth).lookahead;
        let mut specs = [self.slot_spec(om, &[]); MAX_BATCH];
        for (sp, &seq) in specs.iter_mut().zip(seqs) {
            sp.seq = seq;
        }
        unsafe {
            dispatch_ssv(
                self.backend(),
                self.active_q(),
                pf,
                &specs[..seqs.len()],
                ws,
                out,
            )
        }
    }
}

/// Score up to [`MAX_BATCH`] (model, sequence) pairs in one fused
/// interleaved MSV pass — the *model* dimension of the batch. Pairs may
/// mix models and sequences arbitrarily as long as every model shares the
/// same backend and the same active stripe count
/// ([`StripedMsv::active_q`]): the fused row loop walks a single `q`, so
/// shape-unequal models cannot interleave (the pack scheduler
/// [`crate::sweep::model_packs`] bins models to guarantee this). `out[i]`
/// receives `pairs[i]`'s outcome, bit-identical to scoring that pair alone
/// with [`StripedMsv::run_into`].
pub fn msv_multi_batch_into(pairs: &[MsvPair], ws: &mut BatchWorkspace, out: &mut [MsvOutcome]) {
    msv_multi_batch_pipelined_into(pairs, ws, out, 0)
}

/// [`msv_multi_batch_into`] with an explicit software-pipeline depth
/// (`0` = auto); outcomes are bit-identical at every depth.
pub fn msv_multi_batch_pipelined_into(
    pairs: &[MsvPair],
    ws: &mut BatchWorkspace,
    out: &mut [MsvOutcome],
    depth: usize,
) {
    assert!(pairs.len() <= MAX_BATCH, "pack wider than MAX_BATCH");
    assert_eq!(pairs.len(), out.len());
    let Some(first) = pairs.first() else { return };
    let backend = first.striped.backend();
    let q = first.striped.active_q();
    let pf = resolve_pipeline_depth(depth).lookahead;
    let mut specs = [first.striped.slot_spec(first.om, &[]); MAX_BATCH];
    for (sp, pair) in specs.iter_mut().zip(pairs) {
        assert_eq!(
            pair.striped.backend(),
            backend,
            "fused pack members must share a backend"
        );
        assert_eq!(
            pair.striped.active_q(),
            q,
            "fused pack members must share the active stripe count"
        );
        *sp = pair.striped.slot_spec(pair.om, pair.seq);
    }
    unsafe { dispatch_msv(backend, q, pf, &specs[..pairs.len()], ws, out) }
}

/// Score up to [`MAX_BATCH`] (model, sequence) pairs in one fused
/// interleaved SSV pass — see [`msv_multi_batch_into`] for the pack
/// shape rules. Bit-identical per pair to
/// [`ssv_filter_scalar`](crate::ssv::ssv_filter_scalar).
pub fn ssv_multi_batch_into(pairs: &[SsvPair], ws: &mut BatchWorkspace, out: &mut [MsvOutcome]) {
    ssv_multi_batch_pipelined_into(pairs, ws, out, 0)
}

/// [`ssv_multi_batch_into`] with an explicit software-pipeline depth
/// (`0` = auto); outcomes are bit-identical at every depth.
pub fn ssv_multi_batch_pipelined_into(
    pairs: &[SsvPair],
    ws: &mut BatchWorkspace,
    out: &mut [MsvOutcome],
    depth: usize,
) {
    assert!(pairs.len() <= MAX_BATCH, "pack wider than MAX_BATCH");
    assert_eq!(pairs.len(), out.len());
    let Some(first) = pairs.first() else { return };
    let backend = first.striped.backend();
    let q = first.striped.active_q();
    let pf = resolve_pipeline_depth(depth).lookahead;
    let mut specs = [first.striped.slot_spec(first.om, &[]); MAX_BATCH];
    for (sp, pair) in specs.iter_mut().zip(pairs) {
        assert_eq!(
            pair.striped.backend(),
            backend,
            "fused pack members must share a backend"
        );
        assert_eq!(
            pair.striped.active_q(),
            q,
            "fused pack members must share the active stripe count"
        );
        *sp = pair.striped.slot_spec(pair.om, pair.seq);
    }
    unsafe { dispatch_ssv(backend, q, pf, &specs[..pairs.len()], ws, out) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantized::msv_filter_scalar;
    use crate::ssv::ssv_filter_scalar;
    use h3w_hmm::background::NullModel;
    use h3w_hmm::build::{synthetic_model, BuildParams};
    use h3w_hmm::calibrate::random_seq;
    use h3w_hmm::profile::Profile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn om(m: usize, seed: u64) -> MsvProfile {
        let bg = NullModel::new();
        let core = synthetic_model(m, seed, &BuildParams::default());
        MsvProfile::from_profile(&Profile::config(&core, &bg))
    }

    #[test]
    fn batched_msv_matches_single_all_backends_and_widths() {
        let mut rng = StdRng::seed_from_u64(3);
        for m in [1usize, 17, 33, 100, 257] {
            let om = om(m, m as u64);
            // Deliberately skewed lengths so slots finish at different rows.
            let seqs: Vec<Vec<u8>> = [0usize, 1, 7, 40, 160, 333, 40, 90]
                .iter()
                .map(|&l| random_seq(&mut rng, l))
                .collect();
            for backend in Backend::all_available() {
                let striped = StripedMsv::with_backend(&om, backend);
                let mut ws = BatchWorkspace::default();
                for width in 1..=MAX_BATCH {
                    for chunk in seqs.chunks(width) {
                        let refs: Vec<&[u8]> = chunk.iter().map(|s| s.as_slice()).collect();
                        let mut out = vec![
                            MsvOutcome {
                                xj: 0,
                                overflow: false,
                                score: 0.0
                            };
                            refs.len()
                        ];
                        striped.run_batch_into(&om, &refs, &mut ws, &mut out);
                        for (s, o) in chunk.iter().zip(&out) {
                            let want = msv_filter_scalar(&om, s);
                            assert_eq!(
                                (want.xj, want.overflow, want.score.to_bits()),
                                (o.xj, o.overflow, o.score.to_bits()),
                                "backend={backend} m={m} width={width} len={}",
                                s.len()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn batched_ssv_matches_single_all_backends_and_widths() {
        let mut rng = StdRng::seed_from_u64(5);
        for m in [1usize, 16, 31, 90] {
            let om = om(m, 7 + m as u64);
            let seqs: Vec<Vec<u8>> = [3usize, 0, 250, 65, 65, 128, 9]
                .iter()
                .map(|&l| random_seq(&mut rng, l))
                .collect();
            for backend in Backend::all_available() {
                let striped = StripedSsv::with_backend(&om, backend);
                let mut ws = BatchWorkspace::default();
                for width in 1..=MAX_BATCH {
                    for chunk in seqs.chunks(width) {
                        let refs: Vec<&[u8]> = chunk.iter().map(|s| s.as_slice()).collect();
                        let mut out = vec![
                            MsvOutcome {
                                xj: 0,
                                overflow: false,
                                score: 0.0
                            };
                            refs.len()
                        ];
                        striped.run_batch_into(&om, &refs, &mut ws, &mut out);
                        for (s, o) in chunk.iter().zip(&out) {
                            let want = ssv_filter_scalar(&om, s);
                            assert_eq!(
                                (want.xj, want.overflow, want.score.to_bits()),
                                (o.xj, o.overflow, o.score.to_bits()),
                                "backend={backend} m={m} width={width} len={}",
                                s.len()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn fused_multi_profile_msv_matches_single_models() {
        let mut rng = StdRng::seed_from_u64(17);
        // m = 33/40/48 share ⌈m/16⌉ = 3 and ⌈m/32⌉ = 2, so the three
        // models pack together on every backend's active stripe count.
        let oms: Vec<MsvProfile> = [33usize, 40, 48].iter().map(|&m| om(m, m as u64)).collect();
        let seqs: Vec<Vec<u8>> = [0usize, 9, 44, 130, 301]
            .iter()
            .map(|&l| random_seq(&mut rng, l))
            .collect();
        for backend in Backend::all_available() {
            let striped: Vec<StripedMsv> = oms
                .iter()
                .map(|om| StripedMsv::with_backend(om, backend))
                .collect();
            assert!(striped
                .windows(2)
                .all(|w| w[0].active_q() == w[1].active_q()));
            let mut ws = BatchWorkspace::default();
            // Model-major pack shapes: (3 models × 1 seq), (2 × 2), and a
            // full-width mixed pack.
            let shapes: [&[(usize, usize)]; 3] = [
                &[(0, 0), (1, 0), (2, 0)],
                &[(0, 1), (0, 2), (1, 1), (1, 2)],
                &[(2, 4), (1, 3), (0, 0), (2, 2)],
            ];
            for shape in shapes {
                let pairs: Vec<MsvPair> = shape
                    .iter()
                    .map(|&(mi, si)| MsvPair {
                        striped: &striped[mi],
                        om: &oms[mi],
                        seq: &seqs[si],
                    })
                    .collect();
                let mut out = vec![
                    MsvOutcome {
                        xj: 0,
                        overflow: false,
                        score: 0.0
                    };
                    pairs.len()
                ];
                msv_multi_batch_into(&pairs, &mut ws, &mut out);
                for (&(mi, si), o) in shape.iter().zip(&out) {
                    let want = msv_filter_scalar(&oms[mi], &seqs[si]);
                    assert_eq!(
                        (want.xj, want.overflow, want.score.to_bits()),
                        (o.xj, o.overflow, o.score.to_bits()),
                        "backend={backend} model={mi} seq={si}"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_multi_profile_ssv_matches_single_models() {
        let mut rng = StdRng::seed_from_u64(23);
        let oms: Vec<MsvProfile> = [33usize, 40, 48]
            .iter()
            .map(|&m| om(m, 100 + m as u64))
            .collect();
        let seqs: Vec<Vec<u8>> = [2usize, 0, 77, 210]
            .iter()
            .map(|&l| random_seq(&mut rng, l))
            .collect();
        for backend in Backend::all_available() {
            let striped: Vec<StripedSsv> = oms
                .iter()
                .map(|om| StripedSsv::with_backend(om, backend))
                .collect();
            let mut ws = BatchWorkspace::default();
            let shapes: [&[(usize, usize)]; 2] =
                [&[(0, 0), (1, 0), (2, 0), (1, 2)], &[(2, 3), (0, 1), (1, 2)]];
            for shape in shapes {
                let pairs: Vec<SsvPair> = shape
                    .iter()
                    .map(|&(mi, si)| SsvPair {
                        striped: &striped[mi],
                        om: &oms[mi],
                        seq: &seqs[si],
                    })
                    .collect();
                let mut out = vec![
                    MsvOutcome {
                        xj: 0,
                        overflow: false,
                        score: 0.0
                    };
                    pairs.len()
                ];
                ssv_multi_batch_into(&pairs, &mut ws, &mut out);
                for (&(mi, si), o) in shape.iter().zip(&out) {
                    let want = ssv_filter_scalar(&oms[mi], &seqs[si]);
                    assert_eq!(
                        (want.xj, want.overflow, want.score.to_bits()),
                        (o.xj, o.overflow, o.score.to_bits()),
                        "backend={backend} model={mi} seq={si}"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_multi_profile_overflow_drops_one_model_only() {
        // A homolog that overflows its own model's byte pipeline packed
        // next to a different model scoring background sequences: the
        // overflow dropout must not perturb the other model's slots.
        let bg = NullModel::new();
        let hot_core = synthetic_model(112, 3, &BuildParams::default());
        let hot_p = Profile::config(&hot_core, &bg);
        let hot_om = MsvProfile::from_profile(&hot_p);
        let cold_om = om(100, 41); // ⌈112/16⌉ = ⌈100/16⌉ = 7, ⌈·/32⌉ = 4
        let mut rng = StdRng::seed_from_u64(29);
        let mut hom = Vec::new();
        for _ in 0..4 {
            hom.extend(h3w_seqdb::gen::sample_homolog(&mut rng, &hot_core, 3));
        }
        assert!(
            msv_filter_scalar(&hot_om, &hom).overflow,
            "setup: must overflow"
        );
        let b1 = random_seq(&mut rng, hom.len() + 40);
        let b2 = random_seq(&mut rng, hom.len() / 2);
        for backend in Backend::all_available() {
            let hot = StripedMsv::with_backend(&hot_om, backend);
            let cold = StripedMsv::with_backend(&cold_om, backend);
            assert_eq!(hot.active_q(), cold.active_q());
            let mut ws = BatchWorkspace::default();
            let pairs = [
                MsvPair {
                    striped: &cold,
                    om: &cold_om,
                    seq: &b1,
                },
                MsvPair {
                    striped: &hot,
                    om: &hot_om,
                    seq: &hom,
                },
                MsvPair {
                    striped: &cold,
                    om: &cold_om,
                    seq: &b2,
                },
            ];
            let mut out = [MsvOutcome {
                xj: 0,
                overflow: false,
                score: 0.0,
            }; 3];
            msv_multi_batch_into(&pairs, &mut ws, &mut out);
            assert_eq!(
                msv_filter_scalar(&cold_om, &b1),
                out[0],
                "backend={backend}"
            );
            assert_eq!(
                msv_filter_scalar(&hot_om, &hom),
                out[1],
                "backend={backend}"
            );
            assert_eq!(
                msv_filter_scalar(&cold_om, &b2),
                out[2],
                "backend={backend}"
            );
            assert!(out[1].overflow);
        }
    }

    #[test]
    fn overflowing_slot_drops_out_without_corrupting_batchmates() {
        // One strongly matching homolog (which overflows the byte
        // pipeline) batched with background sequences: the survivors'
        // scores must be untouched by the dropout.
        let bg = NullModel::new();
        let core = synthetic_model(120, 3, &BuildParams::default());
        let p = Profile::config(&core, &bg);
        let om = MsvProfile::from_profile(&p);
        let mut rng = StdRng::seed_from_u64(11);
        let mut hom = Vec::new();
        for _ in 0..4 {
            hom.extend(h3w_seqdb::gen::sample_homolog(&mut rng, &core, 3));
        }
        assert!(
            msv_filter_scalar(&om, &hom).overflow,
            "setup: must overflow"
        );
        let b1 = random_seq(&mut rng, hom.len() + 50);
        let b2 = random_seq(&mut rng, hom.len());
        let b3 = random_seq(&mut rng, 30);
        for backend in Backend::all_available() {
            let striped = StripedMsv::with_backend(&om, backend);
            let mut ws = BatchWorkspace::default();
            let refs: Vec<&[u8]> = vec![&b1, &hom, &b2, &b3];
            let mut out = vec![
                MsvOutcome {
                    xj: 0,
                    overflow: false,
                    score: 0.0
                };
                4
            ];
            striped.run_batch_into(&om, &refs, &mut ws, &mut out);
            for (s, o) in refs.iter().zip(&out) {
                assert_eq!(msv_filter_scalar(&om, s), *o, "backend={backend}");
            }
            assert!(out[1].overflow);
        }
    }
}
