//! # h3w-cpu — the HMMER 3.0 CPU baseline
//!
//! A from-scratch reimplementation of HMMER 3.0's compute core, serving two
//! roles in the `hmmer3-warp` reproduction:
//!
//! 1. **Ground truth** — [`mod@reference`] holds exact float-space MSV,
//!    Viterbi, Forward and Backward; [`quantized`] holds the scalar 8-bit /
//!    16-bit filter pipelines every optimized implementation must match
//!    bit-exactly.
//! 2. **The baseline the paper speeds up against** — [`striped_msv`] and
//!    [`striped_vit`] are Farrar-striped SSE-style filters (emulated lanes
//!    in [`simd`]), swept multi-core via the `h3w-pool` work-stealing
//!    pool in [`sweep`], standing in for "HMMER 3.0 utilizing multi-core
//!    and SSE capabilities" (§IV).

pub mod backend;
pub mod batch;
pub mod null2;
pub mod pipe;
pub mod posterior;
pub mod quantized;
pub mod reference;
pub mod simd;
pub mod ssv;
pub mod striped_fwd;
pub mod striped_msv;
pub mod striped_vit;
pub mod sweep;
pub mod traceback;
pub mod x86;

pub use backend::Backend;
pub use batch::{
    msv_multi_batch_into, msv_multi_batch_pipelined_into, ssv_multi_batch_into,
    ssv_multi_batch_pipelined_into, BatchWorkspace, MsvPair, SsvPair, MAX_BATCH,
};
pub use null2::null2_correction;
pub use pipe::{
    prefetch_read, resolve_pipeline_depth, PipeSchedule, AUTO_PIPELINE_DEPTH, MAX_PIPELINE_DEPTH,
};
pub use posterior::{find_domains, posterior_decode, posterior_decode_with, Domain, Posterior};
pub use quantized::{msv_filter_scalar, vit_filter_scalar, MsvOutcome, VitOutcome};
pub use reference::{
    backward_generic, forward_generic, msv_filter_model, msv_generic, viterbi_filter_model,
};
pub use ssv::{ssv_filter_scalar, ssv_reference, StripedSsv};
pub use striped_fwd::{FwdBatchWorkspace, FwdMatrix, FwdWorkspace, StripedFwd};
pub use striped_msv::StripedMsv;
pub use striped_vit::{LazyFStats, StripedVit, VitWorkspace};
pub use sweep::{
    batch_schedule_stats, fused_pack_width, fwd_scores_batched, fwd_scores_batched_pipelined,
    fwd_sweep_batched, length_binned_batches, model_pack_stats, model_packs, msv_multi_outcomes,
    msv_multi_outcomes_pipelined, msv_outcomes_batched, msv_outcomes_batched_pipelined, msv_sweep,
    msv_sweep_batched, record_sweep, resolve_batch_width, resolve_pipelined_width,
    ssv_multi_outcomes, ssv_multi_outcomes_pipelined, ssv_outcomes_batched,
    ssv_outcomes_batched_pipelined, ssv_sweep_batched, vit_sweep, vit_sweep_masked,
    BatchScheduleStats, ModelPackStats, SweepTiming, FUSED_PACK_MIN_WORKERS,
};
pub use traceback::{viterbi_trace, AlignedSegment, Alignment, TraceState};

// The execution substrate the sweeps fan out on, re-exported so sweep
// callers don't need their own `h3w-pool` dependency line.
pub use h3w_pool;
pub use h3w_pool::{PoolHandle, PoolStats, ThreadPool};
