//! Viterbi traceback — the optimal alignment behind a hit, for
//! hmmsearch-style output.
//!
//! Runs the same float Viterbi as
//! [`viterbi_filter_model`](crate::reference::viterbi_filter_model) with
//! backpointers (O(L·M) memory — used only on reported hits), recovers the
//! state path, and renders the classic three-line alignment blocks
//! (consensus / match / target).

use h3w_hmm::alphabet::{symbol, Residue};
use h3w_hmm::plan7::CoreModel;
use h3w_hmm::profile::{Profile, NEG_INF};

/// One state of the recovered path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceState {
    /// Match state of node `k`, emitting target residue `i` (1-based).
    M { k: usize, i: usize },
    /// Insert state of node `k`, emitting target residue `i`.
    I { k: usize, i: usize },
    /// Delete state of node `k` (silent).
    D { k: usize },
}

/// One aligned hit segment (B→…→E span of the multihit path).
#[derive(Debug, Clone)]
pub struct AlignedSegment {
    /// First/last model node of the segment (1-based).
    pub k_start: usize,
    pub k_end: usize,
    /// First/last target residue of the segment (1-based).
    pub i_start: usize,
    pub i_end: usize,
    /// The state path of this segment.
    pub path: Vec<TraceState>,
}

/// The optimal alignment of a target against a profile.
#[derive(Debug, Clone)]
pub struct Alignment {
    /// Viterbi score in nats (equals `viterbi_filter_model`).
    pub score: f32,
    /// Hit segments in target order (≥ 1 unless the score is −∞).
    pub segments: Vec<AlignedSegment>,
}

// Backpointer codes for the M state.
const FROM_B: u8 = 0;
const FROM_M: u8 = 1;
const FROM_I: u8 = 2;
const FROM_D: u8 = 3;

/// Full Viterbi with traceback (filter conventions: E collects M states,
/// no I at the last node, multihit).
pub fn viterbi_trace(p: &Profile, seq: &[Residue]) -> Alignment {
    let m = p.m;
    let l = seq.len();
    if l == 0 || m == 0 {
        return Alignment {
            score: NEG_INF,
            segments: Vec::new(),
        };
    }
    let xs = p.specials_for(l);
    let idx = |i: usize, k: usize| i * (m + 1) + k;

    let mut vm = vec![NEG_INF; (l + 1) * (m + 1)];
    let mut vi = vec![NEG_INF; (l + 1) * (m + 1)];
    let mut vd = vec![NEG_INF; (l + 1) * (m + 1)];
    let mut bm = vec![FROM_B; (l + 1) * (m + 1)];
    let mut bi = vec![FROM_M; (l + 1) * (m + 1)]; // FROM_M or FROM_I
    let mut bd = vec![FROM_M; (l + 1) * (m + 1)]; // FROM_M or FROM_D

    // Specials per row, with enough provenance to trace.
    let mut xe = vec![NEG_INF; l + 1];
    let mut xe_argk = vec![0usize; l + 1];
    let mut xj = vec![NEG_INF; l + 1];
    let mut xj_from_e = vec![false; l + 1];
    let mut xc = vec![NEG_INF; l + 1];
    let mut xc_from_e = vec![false; l + 1];
    let mut xb = vec![NEG_INF; l + 1];
    let mut xb_from_j = vec![false; l + 1];
    xb[0] = xs.move_sc; // N(0) = 0 → B

    for i in 1..=l {
        let x = seq[i - 1] as usize;
        for k in 1..=m {
            // M.
            let cands = [
                xb[i - 1] + p.bmk[k],
                vm[idx(i - 1, k - 1)] + p.tmm[k - 1],
                vi[idx(i - 1, k - 1)] + p.tim[k - 1],
                vd[idx(i - 1, k - 1)] + p.tdm[k - 1],
            ];
            let (arg, best) = cands
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(a, &v)| (a as u8, v))
                .unwrap();
            vm[idx(i, k)] = best + p.msc[k][x];
            bm[idx(i, k)] = arg;
            // I (none at node m).
            if k < m {
                let from_m = vm[idx(i - 1, k)] + p.tmi[k];
                let from_i = vi[idx(i - 1, k)] + p.tii[k];
                if from_m >= from_i {
                    vi[idx(i, k)] = from_m;
                    bi[idx(i, k)] = FROM_M;
                } else {
                    vi[idx(i, k)] = from_i;
                    bi[idx(i, k)] = FROM_I;
                }
            }
            // D.
            let from_m = vm[idx(i, k - 1)] + p.tmd[k - 1];
            let from_d = vd[idx(i, k - 1)] + p.tdd[k - 1];
            if from_m >= from_d {
                vd[idx(i, k)] = from_m;
                bd[idx(i, k)] = FROM_M;
            } else {
                vd[idx(i, k)] = from_d;
                bd[idx(i, k)] = FROM_D;
            }
            if vm[idx(i, k)] > xe[i] {
                xe[i] = vm[idx(i, k)];
                xe_argk[i] = k;
            }
        }
        let j_loop = xj[i - 1] + xs.loop_sc;
        let j_new = xe[i] + xs.e_to_j;
        if j_new >= j_loop {
            xj[i] = j_new;
            xj_from_e[i] = true;
        } else {
            xj[i] = j_loop;
        }
        let c_loop = xc[i - 1] + xs.loop_sc;
        let c_new = xe[i] + xs.e_to_c;
        if c_new >= c_loop {
            xc[i] = c_new;
            xc_from_e[i] = true;
        } else {
            xc[i] = c_loop;
        }
        // N(i) = i·loop; B from N or J.
        let n_i = i as f32 * xs.loop_sc;
        if xj[i] >= n_i {
            xb[i] = xj[i] + xs.move_sc;
            xb_from_j[i] = true;
        } else {
            xb[i] = n_i + xs.move_sc;
        }
    }

    let score = xc[l] + xs.move_sc;
    if !score.is_finite() {
        return Alignment {
            score: NEG_INF,
            segments: Vec::new(),
        };
    }

    // Trace the specials backwards with a small state machine:
    // C(l) ←loop… C(i) ←E(i) ←M(i,k) … ←B(entry) ←{N: done | J(entry)
    // ←loop… J(i') ←E(i') ← …}.
    #[derive(Clone, Copy, PartialEq)]
    enum Sp {
        C,
        J,
        E,
        B,
    }
    let mut segments = Vec::new();
    let mut mode = Sp::C;
    let mut i = l;
    while i > 0 {
        match mode {
            Sp::C => {
                if xc_from_e[i] {
                    mode = Sp::E;
                } else {
                    i -= 1;
                }
            }
            Sp::J => {
                if xj_from_e[i] {
                    mode = Sp::E;
                } else {
                    i -= 1;
                }
            }
            Sp::E => {
                let traced = trace_segment(p, seq, &vm, &bm, &bi, &bd, i, xe_argk[i], m);
                i = traced.entry_row;
                segments.push(traced.segment);
                mode = Sp::B;
            }
            Sp::B => {
                if i == 0 || !xb_from_j[i] {
                    break; // entered from N: path start reached
                }
                mode = Sp::J;
            }
        }
    }
    segments.reverse();
    Alignment { score, segments }
}

struct Traced {
    segment: AlignedSegment,
    /// Row at which the segment's B was taken (residues consumed before).
    entry_row: usize,
}

#[allow(clippy::too_many_arguments)]
fn trace_segment(
    p: &Profile,
    seq: &[Residue],
    vm: &[f32],
    bm: &[u8],
    bi: &[u8],
    bd: &[u8],
    exit_row: usize,
    exit_k: usize,
    m: usize,
) -> Traced {
    let idx = |i: usize, k: usize| i * (m + 1) + k;
    let _ = (vm, p, seq);
    let mut path = Vec::new();
    let mut i = exit_row;
    let mut k = exit_k;
    let mut state = 'M';
    let (k_end, i_end) = (k, i);
    let entry_row;
    loop {
        match state {
            'M' => {
                path.push(TraceState::M { k, i });
                match bm[idx(i, k)] {
                    FROM_B => {
                        entry_row = i - 1;
                        break;
                    }
                    FROM_M => {
                        i -= 1;
                        k -= 1;
                    }
                    FROM_I => {
                        i -= 1;
                        k -= 1;
                        state = 'I';
                    }
                    _ => {
                        i -= 1;
                        k -= 1;
                        state = 'D';
                    }
                }
            }
            'I' => {
                path.push(TraceState::I { k, i });
                if bi[idx(i, k)] == FROM_M {
                    state = 'M';
                }
                i -= 1;
            }
            _ => {
                path.push(TraceState::D { k });
                if bd[idx(i, k)] == FROM_M {
                    state = 'M';
                }
                k -= 1;
            }
        }
    }
    path.reverse();
    let (k_start, i_start) = match path[0] {
        TraceState::M { k, i } => (k, i),
        TraceState::I { k, i } => (k, i),
        TraceState::D { k } => (k, entry_row + 1),
    };
    Traced {
        segment: AlignedSegment {
            k_start,
            k_end,
            i_start,
            i_end,
            path,
        },
        entry_row,
    }
}

impl AlignedSegment {
    /// Render the classic three-line block: consensus / match / target.
    /// `|` marks an exact consensus match, `+` a positive-scoring residue,
    /// lowercase target letters are inserts, `-` marks deletions.
    pub fn render(&self, p: &Profile, model: &CoreModel, seq: &[Residue]) -> String {
        let mut cons_line = String::new();
        let mut match_line = String::new();
        let mut tgt_line = String::new();
        for st in &self.path {
            match *st {
                TraceState::M { k, i } => {
                    let cons = model.consensus[k - 1];
                    let x = seq[i - 1];
                    cons_line.push(symbol(cons).unwrap().to_ascii_uppercase());
                    let sc = p.msc[k][x as usize];
                    match_line.push(if x == cons {
                        symbol(x).unwrap().to_ascii_lowercase()
                    } else if sc > 0.0 {
                        '+'
                    } else {
                        ' '
                    });
                    tgt_line.push(symbol(x).unwrap().to_ascii_uppercase());
                }
                TraceState::I { i, .. } => {
                    cons_line.push('.');
                    match_line.push(' ');
                    tgt_line.push(symbol(seq[i - 1]).unwrap().to_ascii_lowercase());
                }
                TraceState::D { k } => {
                    cons_line.push(symbol(model.consensus[k - 1]).unwrap().to_ascii_uppercase());
                    match_line.push(' ');
                    tgt_line.push('-');
                }
            }
        }
        format!(
            "  model {:>5} {} {}\n        {:>5} {} \n  target{:>5} {} {}\n",
            self.k_start, cons_line, self.k_end, "", match_line, self.i_start, tgt_line, self.i_end
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::viterbi_filter_model;
    use h3w_hmm::background::NullModel;
    use h3w_hmm::build::{synthetic_model, BuildParams};
    use h3w_hmm::calibrate::random_seq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(m: usize, seed: u64) -> (CoreModel, Profile) {
        let model = synthetic_model(m, seed, &BuildParams::default());
        let bg = NullModel::new();
        let p = Profile::config(&model, &bg);
        (model, p)
    }

    #[test]
    fn trace_score_equals_dp_score() {
        let mut rng = StdRng::seed_from_u64(4);
        for (m, len) in [(10usize, 30usize), (40, 120), (25, 400)] {
            let (_, p) = setup(m, m as u64);
            let seq = random_seq(&mut rng, len);
            let tr = viterbi_trace(&p, &seq);
            let dp = viterbi_filter_model(&p, &seq);
            assert!(
                (tr.score - dp).abs() < 1e-3,
                "m={m} len={len}: trace {} vs dp {dp}",
                tr.score
            );
        }
    }

    #[test]
    fn path_is_structurally_valid() {
        let mut rng = StdRng::seed_from_u64(5);
        let (_, p) = setup(30, 9);
        let seq = random_seq(&mut rng, 150);
        let tr = viterbi_trace(&p, &seq);
        assert!(!tr.segments.is_empty());
        for seg in &tr.segments {
            assert!(seg.k_start >= 1 && seg.k_end <= 30);
            assert!(seg.i_start >= 1 && seg.i_end <= 150);
            // Emitted residues strictly increase; model nodes never
            // decrease along the path.
            let mut last_i = 0usize;
            let mut last_k = 0usize;
            for st in &seg.path {
                match *st {
                    TraceState::M { k, i } => {
                        assert!(i > last_i && k > last_k);
                        last_i = i;
                        last_k = k;
                    }
                    TraceState::I { k, i } => {
                        assert!(i > last_i && k == last_k);
                        last_i = i;
                    }
                    TraceState::D { k } => {
                        assert!(k > last_k);
                        last_k = k;
                    }
                }
            }
        }
    }

    #[test]
    fn planted_motif_is_located() {
        let (model, p) = setup(25, 77);
        let mut rng = StdRng::seed_from_u64(6);
        let mut seq = random_seq(&mut rng, 200);
        seq[100..125].copy_from_slice(&model.consensus);
        let tr = viterbi_trace(&p, &seq);
        // The best segment must overlap the planted window.
        let best = tr
            .segments
            .iter()
            .max_by_key(|s| s.i_end - s.i_start)
            .unwrap();
        assert!(
            best.i_start <= 115 && best.i_end >= 110,
            "segment {}..{} misses plant 101..125",
            best.i_start,
            best.i_end
        );
    }

    #[test]
    fn render_shows_consensus_matches() {
        let (model, p) = setup(15, 3);
        let mut rng = StdRng::seed_from_u64(7);
        let mut seq = random_seq(&mut rng, 60);
        seq[20..35].copy_from_slice(&model.consensus);
        let tr = viterbi_trace(&p, &seq);
        let best = tr
            .segments
            .iter()
            .max_by_key(|s| s.i_end - s.i_start)
            .unwrap();
        let text = best.render(&p, &model, &seq);
        assert!(text.contains("model"));
        assert!(text.contains("target"));
        // An exact consensus stretch renders lowercase letters in the
        // match line.
        let match_line = text.lines().nth(1).unwrap();
        assert!(
            match_line
                .chars()
                .filter(|c| c.is_ascii_lowercase())
                .count()
                >= 10,
            "match line too weak: {match_line:?}"
        );
    }

    #[test]
    fn empty_inputs() {
        let (_, p) = setup(5, 1);
        let tr = viterbi_trace(&p, &[]);
        assert_eq!(tr.score, NEG_INF);
        assert!(tr.segments.is_empty());
    }
}
