//! Exact float-space reference implementations — the ground truth every
//! quantized/striped/warp implementation in this workspace is tested
//! against.
//!
//! All functions score one digital sequence in **nats** (log-odds against
//! null model 1, length-model terms included unless stated otherwise) and
//! never mutate the profile: per-target specials come from
//! [`Profile::specials_for`].

use h3w_hmm::alphabet::Residue;
use h3w_hmm::profile::{Profile, NEG_INF};

/// Generic MSV score (HMMER's `p7_GMSV`): the heuristic model of Fig. 2 —
/// match states only, flat entry `ln(2/(M(M+1)))`, multihit via `J`,
/// N/C/J length model *included*.
pub fn msv_generic(p: &Profile, seq: &[Residue]) -> f32 {
    msv_float(p, seq, true)
}

/// MSV score in the *filter model* — identical to [`msv_generic`] except
/// the N/C/J self-loops cost zero, exactly the approximation the 8-bit
/// MSVFilter hardware pipeline makes (HMMER's MSVFilter does the same).
/// Comparable to quantized filter scores within quantization error.
pub fn msv_filter_model(p: &Profile, seq: &[Residue]) -> f32 {
    msv_float(p, seq, false)
}

fn msv_float(p: &Profile, seq: &[Residue], with_loops: bool) -> f32 {
    let m = p.m;
    let xs = p.specials_for(seq.len());
    let tloop = if with_loops { xs.loop_sc } else { 0.0 };
    let tmove = xs.move_sc;
    let tec = xs.e_to_j; // == e_to_c in multihit
    let tbm = p.msv_entry();

    let mut mrow = vec![NEG_INF; m + 1];
    let mut xn = 0.0f32;
    let mut xj = NEG_INF;
    let mut xb = xn + tmove;
    for &x in seq {
        let msc = &p.msc;
        let mut xe = NEG_INF;
        let mut diag = mrow[0]; // always −∞ (no column 0)
        for k in 1..=m {
            let sv = msc[k][x as usize] + diag.max(xb + tbm);
            diag = mrow[k];
            mrow[k] = sv;
            xe = xe.max(sv);
        }
        xj = (xj + tloop).max(xe + tec);
        xn += tloop;
        xb = xn.max(xj) + tmove;
    }
    // Multihit: C mirrors J exactly (same feed, same loop), so C(L) = J(L).
    xj + tmove
}

/// P7Viterbi filter-convention score: full Plan-7 model of Fig. 3 with
/// the ViterbiFilter conventions — `E` collects Match states only, no
/// `I_M` state, occupancy-style local entry, length model included.
/// This is the float twin of the canonical i16 recurrence documented in
/// `h3w_hmm::vitprofile`.
pub fn viterbi_filter_model(p: &Profile, seq: &[Residue]) -> f32 {
    let m = p.m;
    let xs = p.specials_for(seq.len());
    let mut dpm = vec![NEG_INF; m + 1];
    let mut dpi = vec![NEG_INF; m + 1];
    let mut dpd = vec![NEG_INF; m + 1];
    let mut xn = 0.0f32;
    let mut xj = NEG_INF;
    let mut xc = NEG_INF;
    let mut xb = xn + xs.move_sc;

    for &x in seq {
        let mut xe = NEG_INF;
        let mut diag_m = NEG_INF;
        let mut diag_i = NEG_INF;
        let mut diag_d = NEG_INF;
        let mut cur_m = NEG_INF; // M(i, k-1) of the current row
        let mut cur_d = NEG_INF; // D(i, k-1) of the current row
        for k in 1..=m {
            let old_m = dpm[k];
            let old_i = dpi[k];
            let old_d = dpd[k];
            let mut mv = xb + p.bmk[k];
            mv = mv.max(diag_m + p.tmm[k - 1]);
            mv = mv.max(diag_i + p.tim[k - 1]);
            mv = mv.max(diag_d + p.tdm[k - 1]);
            mv += p.msc[k][x as usize];
            let iv = if k < m {
                (old_m + p.tmi[k]).max(old_i + p.tii[k])
            } else {
                NEG_INF
            };
            let dv = (cur_m + p.tmd[k - 1]).max(cur_d + p.tdd[k - 1]);
            xe = xe.max(mv);
            diag_m = old_m;
            diag_i = old_i;
            diag_d = old_d;
            dpm[k] = mv;
            dpi[k] = iv;
            dpd[k] = dv;
            cur_m = mv;
            cur_d = dv;
        }
        xj = (xj + xs.loop_sc).max(xe + xs.e_to_j);
        xc = (xc + xs.loop_sc).max(xe + xs.e_to_c);
        xn += xs.loop_sc;
        xb = xn.max(xj) + xs.move_sc;
    }
    xc + xs.move_sc
}

/// Numerically stable `ln(e^a + e^b)` (re-exported from
/// [`h3w_hmm::logspace`]; the table-driven [`flogsum`] is what the
/// Forward sweep uses, as HMMER does).
pub use h3w_hmm::logspace::{flogsum, logsum_exact as logsum};

/// Forward score (total log-likelihood ratio summed over all alignments) —
/// the scoring system HMMER 3.0's final stage uses (§I of the paper).
/// Same state conventions as [`viterbi_filter_model`], with max replaced
/// by log-sum-exp (table-driven, as in HMMER).
pub fn forward_generic(p: &Profile, seq: &[Residue]) -> f32 {
    let m = p.m;
    let xs = p.specials_for(seq.len());
    let mut dpm = vec![NEG_INF; m + 1];
    let mut dpi = vec![NEG_INF; m + 1];
    let mut dpd = vec![NEG_INF; m + 1];
    let mut xn = 0.0f32;
    let mut xj = NEG_INF;
    let mut xc = NEG_INF;
    let mut xb = xn + xs.move_sc;

    for &x in seq {
        let mut xe = NEG_INF;
        let mut diag_m = NEG_INF;
        let mut diag_i = NEG_INF;
        let mut diag_d = NEG_INF;
        let mut cur_m = NEG_INF;
        let mut cur_d = NEG_INF;
        for k in 1..=m {
            let old_m = dpm[k];
            let old_i = dpi[k];
            let old_d = dpd[k];
            let mut mv = xb + p.bmk[k];
            mv = flogsum(mv, diag_m + p.tmm[k - 1]);
            mv = flogsum(mv, diag_i + p.tim[k - 1]);
            mv = flogsum(mv, diag_d + p.tdm[k - 1]);
            mv += p.msc[k][x as usize];
            let iv = if k < m {
                flogsum(old_m + p.tmi[k], old_i + p.tii[k])
            } else {
                NEG_INF
            };
            let dv = flogsum(cur_m + p.tmd[k - 1], cur_d + p.tdd[k - 1]);
            xe = flogsum(xe, mv);
            diag_m = old_m;
            diag_i = old_i;
            diag_d = old_d;
            dpm[k] = mv;
            dpi[k] = iv;
            dpd[k] = dv;
            cur_m = mv;
            cur_d = dv;
        }
        xj = flogsum(xj + xs.loop_sc, xe + xs.e_to_j);
        xc = flogsum(xc + xs.loop_sc, xe + xs.e_to_c);
        xn += xs.loop_sc;
        xb = flogsum(xn, xj) + xs.move_sc;
    }
    xc + xs.move_sc
}

/// Backward score under the identical model — must equal
/// [`forward_generic`] up to float error; exists as an independent check
/// of the Forward recurrence (and of this module's state conventions).
#[allow(clippy::needless_range_loop)]
pub fn backward_generic(p: &Profile, seq: &[Residue]) -> f32 {
    let m = p.m;
    let l = seq.len();
    let xs = p.specials_for(l);

    // b*[k] hold row i+1 values while computing row i.
    let mut bm = vec![NEG_INF; m + 2];
    let mut bi = vec![NEG_INF; m + 2];
    let mut bd = vec![NEG_INF; m + 2];
    let mut bm_next = vec![NEG_INF; m + 2];
    let mut bi_next = vec![NEG_INF; m + 2];
    let mut bd_next = vec![NEG_INF; m + 2];

    // Row L terminals.
    let mut bc = xs.move_sc; // C(L) → T
    let mut bj = NEG_INF;
    let mut bn;
    let be = flogsum(bj + xs.e_to_j, bc + xs.e_to_c);
    for k in (1..=m).rev() {
        bm[k] = be;
        bi[k] = NEG_INF;
        bd[k] = if k < m { bd[k + 1] + p.tdd[k] } else { NEG_INF };
        // D_k can also reach E? Filter conventions: E collects M only,
        // so D's only continuation is D→D / D→M (and there is no next row).
        bm[k] = flogsum(bm[k], bd[k + 1] + p.tmd[k]);
    }
    bn = NEG_INF; // B(L) leads nowhere (no residue left to emit)

    for i in (0..l).rev() {
        // We are computing row i; `b*` currently hold row i+1? No: after the
        // terminal setup they hold row L = row (l). In the loop body we
        // compute row i from row i+1 stored in b*.
        let x_next = seq[i] as usize; // residue emitted on transitions from row i to i+1 is x_{i+1} = seq[i]
                                      // bB(i) = lse_k bM(i+1, k) + bmk[k] + msc[k][x_{i+1}]
        let mut bb = NEG_INF;
        for k in 1..=m {
            bb = flogsum(bb, bm[k] + p.bmk[k] + p.msc[k][x_next]);
        }
        // Specials at row i (bj/bc/bn on the right are row i+1 values).
        let bj_i = flogsum(bj + xs.loop_sc, bb + xs.move_sc);
        let bc_i = bc + xs.loop_sc;
        let bn_i = flogsum(bn + xs.loop_sc, bb + xs.move_sc);
        let be_i = flogsum(bj_i + xs.e_to_j, bc_i + xs.e_to_c);
        // Main states, descending k so bd_next[k+1] (same row) is ready.
        for k in (1..=m).rev() {
            // Transitions into node k+1 exist only for k < m.
            let to_m_next = if k < m { p.msc[k + 1][x_next] } else { NEG_INF };
            let mut v = be_i; // M_k → E (exit after emitting row i)
            v = flogsum(v, bm[k + 1] + p.tmm[k] + to_m_next);
            if k < m {
                v = flogsum(v, bi[k] + p.tmi[k]);
                v = flogsum(v, bd_next[k + 1] + p.tmd[k]);
            }
            bm_next[k] = v;

            bi_next[k] = if k < m {
                flogsum(bm[k + 1] + p.tim[k] + to_m_next, bi[k] + p.tii[k])
            } else {
                NEG_INF
            };

            bd_next[k] = if k < m {
                flogsum(bm[k + 1] + p.tdm[k] + to_m_next, bd_next[k + 1] + p.tdd[k])
            } else {
                NEG_INF
            };
        }
        std::mem::swap(&mut bm, &mut bm_next);
        std::mem::swap(&mut bi, &mut bi_next);
        std::mem::swap(&mut bd, &mut bd_next);
        bj = bj_i;
        bc = bc_i;
        bn = bn_i;
        // Clear the scratch rows' sentinel columns.
        bm[m + 1] = NEG_INF;
        bi[m + 1] = NEG_INF;
        bd[m + 1] = NEG_INF;
        bm_next[m + 1] = NEG_INF;
        bd_next[m + 1] = NEG_INF;
    }
    bn // N(0) = start
}

#[cfg(test)]
mod tests {
    use super::*;
    use h3w_hmm::background::NullModel;
    use h3w_hmm::build::{synthetic_model, BuildParams};
    use h3w_hmm::calibrate::random_seq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn profile(m: usize, seed: u64) -> Profile {
        let bg = NullModel::new();
        Profile::config(&synthetic_model(m, seed, &BuildParams::default()), &bg)
    }

    #[test]
    fn msv_loops_lower_the_score() {
        let p = profile(30, 1);
        let mut rng = StdRng::seed_from_u64(4);
        let seq = random_seq(&mut rng, 120);
        let full = msv_generic(&p, &seq);
        let free = msv_filter_model(&p, &seq);
        // Free loops only remove penalties, so the filter model scores higher,
        // by roughly L·ln(L/(L+3)) ≈ 3 nats for L ≫ 3.
        assert!(free > full);
        let gap = free - full;
        assert!(gap > 1.5 && gap < 4.0, "loop gap {gap}");
    }

    #[test]
    fn viterbi_below_forward() {
        let p = profile(25, 2);
        let mut rng = StdRng::seed_from_u64(5);
        for len in [10usize, 60, 200] {
            let seq = random_seq(&mut rng, len);
            let v = viterbi_filter_model(&p, &seq);
            let f = forward_generic(&p, &seq);
            assert!(
                v <= f + 1e-4,
                "len {len}: viterbi {v} must be ≤ forward {f}"
            );
        }
    }

    #[test]
    fn forward_equals_backward() {
        for (m, seed, len) in [(8usize, 3u64, 25usize), (17, 4, 40), (33, 5, 77)] {
            let p = profile(m, seed);
            let mut rng = StdRng::seed_from_u64(seed + 100);
            let seq = random_seq(&mut rng, len);
            let f = forward_generic(&p, &seq);
            let b = backward_generic(&p, &seq);
            assert!(
                (f - b).abs() < 1e-2,
                "m={m} len={len}: forward {f} vs backward {b}"
            );
        }
    }

    #[test]
    #[allow(clippy::type_complexity)]
    fn homolog_scores_far_above_background() {
        let bg = NullModel::new();
        let core = synthetic_model(60, 9, &BuildParams::default());
        let p = Profile::config(&core, &bg);
        let mut rng = StdRng::seed_from_u64(8);
        let hom = h3w_seqdb::gen::sample_homolog(&mut rng, &core, 20);
        let bgseq = random_seq(&mut rng, hom.len().max(30));
        let scorers: [(&str, fn(&Profile, &[u8]) -> f32); 3] = [
            ("msv", msv_generic),
            ("vit", viterbi_filter_model),
            ("fwd", forward_generic),
        ];
        for (name, f) in scorers {
            let sh = f(&p, &hom);
            let sb = f(&p, &bgseq);
            assert!(
                sh > sb + 10.0,
                "{name}: homolog {sh} should dominate background {sb}"
            );
        }
    }

    #[test]
    fn logsum_properties() {
        assert_eq!(logsum(NEG_INF, NEG_INF), NEG_INF);
        assert_eq!(logsum(NEG_INF, 1.5), 1.5);
        assert!((logsum(0.0, 0.0) - std::f32::consts::LN_2).abs() < 1e-6);
        assert!((logsum(10.0, 0.0) - 10.000045).abs() < 1e-4);
        // Commutative.
        assert_eq!(logsum(3.0, 7.0), logsum(7.0, 3.0));
        // The table variant tracks the exact one everywhere.
        for (a, b) in [(0.0f32, 0.0f32), (3.3, -2.1), (-8.0, -8.5), (12.0, 0.0)] {
            assert!((flogsum(a, b) - logsum(a, b)).abs() < 4e-3, "{a} {b}");
        }
        assert_eq!(flogsum(NEG_INF, 2.0), 2.0);
    }

    #[test]
    fn empty_sequence_scores_neg_inf() {
        let p = profile(10, 6);
        assert_eq!(msv_generic(&p, &[]), NEG_INF);
        assert_eq!(viterbi_filter_model(&p, &[]), NEG_INF);
        assert_eq!(forward_generic(&p, &[]), NEG_INF);
    }

    #[test]
    fn single_residue_consensus_hits() {
        // M=1 edge case: one consensus column; a matching single residue
        // must outscore a mismatching one.
        let bg = NullModel::new();
        let core = synthetic_model(1, 7, &BuildParams::default());
        let cons = core.consensus[0];
        let p = Profile::config(&core, &bg);
        let hit = viterbi_filter_model(&p, &[cons]);
        let miss_res = (0..20u8).find(|&r| r != cons).unwrap();
        let miss = viterbi_filter_model(&p, &[miss_res]);
        assert!(hit > miss);
        assert!(hit.is_finite());
    }

    #[test]
    fn multihit_beats_unihit_on_tandem_repeat() {
        use h3w_hmm::profile::SearchMode;
        let bg = NullModel::new();
        let core = synthetic_model(20, 12, &BuildParams::default());
        let mut rng = StdRng::seed_from_u64(13);
        let mut tandem = h3w_seqdb::gen::sample_homolog(&mut rng, &core, 5);
        let second = h3w_seqdb::gen::sample_homolog(&mut rng, &core, 5);
        tandem.extend(second);
        let multi = Profile::config_mode(&core, &bg, SearchMode::MultihitLocal);
        let uni = Profile::config_mode(&core, &bg, SearchMode::UnihitLocal);
        let sm = viterbi_filter_model(&multi, &tandem);
        let su = viterbi_filter_model(&uni, &tandem);
        assert!(
            sm > su + 5.0,
            "two motif copies: multihit {sm} vs unihit {su}"
        );
    }
}
