//! x86_64 intrinsic helpers shared by the SSE2 and AVX2 filter kernels.
//!
//! The striped filter buffers are plain `[u8; 16]` / `[i16; 8]` arrays
//! (alignment 1), so every load/store here is unaligned. The AVX2
//! cross-lane shifts use the `vperm2i128` + `valignr` idiom: build
//! `t = [fill_lane, a.low]`, then `alignr(a, t, 16 - step)` yields the
//! whole 256-bit register shifted up by one element with `fill` injected
//! into element 0 — the AVX2 equivalent of `_mm_slli_si128` for Farrar's
//! diagonal move.
//!
//! # Safety contract (all functions)
//!
//! Pointer arguments must be valid for reads/writes of the full vector
//! width (16 or 32 bytes, any alignment unless stated otherwise), and
//! the `_256` variants must only be called when the `avx2` CPU feature
//! is present (the backend dispatcher guarantees this). The per-function
//! `# Safety` sections would all restate exactly this, hence the blanket
//! lint allow.

#![cfg(target_arch = "x86_64")]
#![allow(clippy::missing_safety_doc)]

use core::arch::x86_64::*;

/// A 32-byte-aligned byte vector for AVX2 emission tables. `Vec<[u8; 32]>`
/// has alignment 1, which makes half of all 32-byte loads straddle a
/// cache line; pinning rows to their natural alignment removes the split.
#[repr(C, align(32))]
#[derive(Debug, Clone, Copy)]
pub struct ByteRow32(pub [u8; 32]);

/// A 32-byte-aligned word vector for AVX2 transition/emission tables.
#[repr(C, align(32))]
#[derive(Debug, Clone, Copy)]
pub struct WordRow16(pub [i16; 16]);

/// Align a raw byte cursor up to a 32-byte boundary (for DP workspaces
/// whose `Vec<[u8; 16]>` backing store is only byte-aligned). The caller
/// must have over-allocated by at least 31 bytes.
#[inline(always)]
pub unsafe fn align32(p: *mut u8) -> *mut u8 {
    p.add(p.align_offset(32))
}

/// Unaligned 128-bit load from a lane-array slice element.
#[inline(always)]
pub unsafe fn loadu128<T>(p: *const T) -> __m128i {
    _mm_loadu_si128(p as *const __m128i)
}

/// Unaligned 128-bit store to a lane-array slice element.
#[inline(always)]
pub unsafe fn storeu128<T>(p: *mut T, v: __m128i) {
    _mm_storeu_si128(p as *mut __m128i, v)
}

/// Unaligned 256-bit load.
#[inline(always)]
pub unsafe fn loadu256<T>(p: *const T) -> __m256i {
    _mm256_loadu_si256(p as *const __m256i)
}

/// Unaligned 256-bit store.
#[inline(always)]
pub unsafe fn storeu256<T>(p: *mut T, v: __m256i) {
    _mm256_storeu_si256(p as *mut __m256i, v)
}

/// Unaligned 128-bit float load from a lane-array slice element.
#[inline(always)]
pub unsafe fn loadu_ps<T>(p: *const T) -> __m128 {
    _mm_loadu_ps(p as *const f32)
}

/// Unaligned 128-bit float store to a lane-array slice element.
#[inline(always)]
pub unsafe fn storeu_ps<T>(p: *mut T, v: __m128) {
    _mm_storeu_ps(p as *mut f32, v)
}

/// Unaligned 256-bit float load (caller must be in an AVX context).
#[inline(always)]
pub unsafe fn loadu_ps256<T>(p: *const T) -> __m256 {
    _mm256_loadu_ps(p as *const f32)
}

/// Unaligned 256-bit float store (caller must be in an AVX context).
#[inline(always)]
pub unsafe fn storeu_ps256<T>(p: *mut T, v: __m256) {
    _mm256_storeu_ps(p as *mut f32, v)
}

/// Shift floats up one lane, injecting exact `0.0` into lane 0
/// (`_mm_slli_si128(v, 4)` on the float bits; zero is the odds-space −∞).
#[inline(always)]
pub unsafe fn shl1_ps_128(a: __m128) -> __m128 {
    _mm_castsi128_ps(_mm_slli_si128::<4>(_mm_castps_si128(a)))
}

/// Horizontal sum with the canonical `(v0 + v2) + (v1 + v3)` tree —
/// bit-identical to [`crate::simd::hsum_f32`].
#[inline(always)]
pub unsafe fn hsum_ps(v: __m128) -> f32 {
    // movehl: lanes become (v0+v2, v1+v3, _, _).
    let pair = _mm_add_ps(v, _mm_movehl_ps(v, v));
    let s = _mm_add_ss(pair, _mm_shuffle_ps::<0b01>(pair, pair));
    _mm_cvtss_f32(s)
}

/// Are all four float lanes exactly `0.0`?
#[inline(always)]
pub unsafe fn all_zero_ps(v: __m128) -> bool {
    _mm_movemask_ps(_mm_cmpneq_ps(v, _mm_setzero_ps())) == 0
}

/// Horizontal max of 16 unsigned bytes.
#[inline(always)]
pub unsafe fn hmax_epu8(v: __m128i) -> u8 {
    let v = _mm_max_epu8(v, _mm_srli_si128::<8>(v));
    let v = _mm_max_epu8(v, _mm_srli_si128::<4>(v));
    let v = _mm_max_epu8(v, _mm_srli_si128::<2>(v));
    let v = _mm_max_epu8(v, _mm_srli_si128::<1>(v));
    (_mm_cvtsi128_si32(v) & 0xff) as u8
}

/// Horizontal max of 8 signed words.
#[inline(always)]
pub unsafe fn hmax_epi16(v: __m128i) -> i16 {
    let v = _mm_max_epi16(v, _mm_srli_si128::<8>(v));
    let v = _mm_max_epi16(v, _mm_srli_si128::<4>(v));
    let v = _mm_max_epi16(v, _mm_srli_si128::<2>(v));
    _mm_cvtsi128_si32(v) as i16
}

/// Shift bytes up one lane, injecting 0 into lane 0
/// (`_mm_slli_si128(v, 1)`).
#[inline(always)]
pub unsafe fn shl1_u8_128(a: __m128i) -> __m128i {
    _mm_slli_si128::<1>(a)
}

/// Shift words up one lane, injecting `fill` into lane 0.
#[inline(always)]
pub unsafe fn shl1_i16_128(a: __m128i, fill: i16) -> __m128i {
    _mm_insert_epi16::<0>(_mm_slli_si128::<2>(a), fill as i32)
}

/// Any lane of `a` strictly greater (signed words) than in `b`?
#[inline(always)]
pub unsafe fn any_gt_epi16_128(a: __m128i, b: __m128i) -> bool {
    _mm_movemask_epi8(_mm_cmpgt_epi16(a, b)) != 0
}

/// Horizontal max of 32 unsigned bytes.
#[inline]
#[target_feature(enable = "avx2")]
pub unsafe fn hmax_epu8_256(v: __m256i) -> u8 {
    let m = _mm_max_epu8(_mm256_castsi256_si128(v), _mm256_extracti128_si256::<1>(v));
    hmax_epu8(m)
}

/// Horizontal max of 16 signed words.
#[inline]
#[target_feature(enable = "avx2")]
pub unsafe fn hmax_epi16_256(v: __m256i) -> i16 {
    let m = _mm_max_epi16(_mm256_castsi256_si128(v), _mm256_extracti128_si256::<1>(v));
    hmax_epi16(m)
}

/// Shift bytes up one lane across the full 256-bit register, injecting 0
/// into lane 0.
#[inline]
#[target_feature(enable = "avx2")]
pub unsafe fn shl1_u8_256(a: __m256i) -> __m256i {
    // t = [0, a.low]; per-128-lane alignr by 15 then stitches
    // [0, a[0..15), a[15], a[16..31)] = whole-register shift.
    let t = _mm256_permute2x128_si256::<0x08>(a, a);
    _mm256_alignr_epi8::<15>(a, t)
}

/// Shift words up one lane across the full 256-bit register, injecting
/// `fill` into lane 0.
#[inline]
#[target_feature(enable = "avx2")]
pub unsafe fn shl1_i16_256(a: __m256i, fill: i16) -> __m256i {
    let fillv = _mm256_set1_epi16(fill);
    // t = [fillv.low, a.low].
    let t = _mm256_permute2x128_si256::<0x02>(a, fillv);
    _mm256_alignr_epi8::<14>(a, t)
}

/// Any lane of `a` strictly greater (signed words) than in `b`?
#[inline]
#[target_feature(enable = "avx2")]
pub unsafe fn any_gt_epi16_256(a: __m256i, b: __m256i) -> bool {
    _mm256_movemask_epi8(_mm256_cmpgt_epi16(a, b)) != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sse2_helpers_match_lane_semantics() {
        // SSE2 is baseline on x86_64.
        unsafe {
            let bytes: [u8; 16] = core::array::from_fn(|i| (i * 13 + 7) as u8);
            let v = loadu128(bytes.as_ptr());
            assert_eq!(hmax_epu8(v), *bytes.iter().max().unwrap());

            let mut out = [0u8; 16];
            storeu128(out.as_mut_ptr(), shl1_u8_128(v));
            assert_eq!(out[0], 0);
            assert_eq!(&out[1..], &bytes[..15]);

            let words: [i16; 8] = [3, -5, 30000, 7, -32768, 0, 99, -1];
            let w = loadu128(words.as_ptr());
            assert_eq!(hmax_epi16(w), 30000);
            let mut wout = [0i16; 8];
            storeu128(wout.as_mut_ptr(), shl1_i16_128(w, i16::MIN));
            assert_eq!(wout[0], i16::MIN);
            assert_eq!(&wout[1..], &words[..7]);

            assert!(any_gt_epi16_128(w, _mm_set1_epi16(29999)));
            assert!(!any_gt_epi16_128(w, _mm_set1_epi16(30000)));
        }
    }

    #[test]
    fn ps_helpers_match_lane_semantics() {
        unsafe {
            let vals: [f32; 4] = [1.5, -2.0, 3.25, 0.0];
            let v = loadu_ps(vals.as_ptr());
            let mut out = [9.0f32; 4];
            storeu_ps(out.as_mut_ptr(), shl1_ps_128(v));
            assert_eq!(out, [0.0, 1.5, -2.0, 3.25]);
            assert_eq!(hsum_ps(v), crate::simd::hsum_f32(vals));
            assert!(all_zero_ps(_mm_setzero_ps()));
            assert!(!all_zero_ps(_mm_set_ps(0.0, 0.0, 0.0, 1.0e-30)));
        }
    }

    #[test]
    fn avx2_helpers_match_lane_semantics() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        unsafe { avx2_helper_check() }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn avx2_helper_check() {
        let bytes: [u8; 32] = core::array::from_fn(|i| (i * 11 + 3) as u8);
        let v = loadu256(bytes.as_ptr());
        assert_eq!(hmax_epu8_256(v), *bytes.iter().max().unwrap());

        let mut out = [0u8; 32];
        storeu256(out.as_mut_ptr(), shl1_u8_256(v));
        assert_eq!(out[0], 0);
        assert_eq!(&out[1..], &bytes[..31]);

        let words: [i16; 16] = core::array::from_fn(|i| (i as i16) * -1001 + 500);
        let w = loadu256(words.as_ptr());
        assert_eq!(hmax_epi16_256(w), *words.iter().max().unwrap());
        let mut wout = [0i16; 16];
        storeu256(wout.as_mut_ptr(), shl1_i16_256(w, -32768));
        assert_eq!(wout[0], -32768);
        assert_eq!(&wout[1..], &words[..15]);

        assert!(any_gt_epi16_256(w, _mm256_set1_epi16(499)));
        assert!(!any_gt_epi16_256(w, _mm256_set1_epi16(500)));
    }
}
