//! Software-pipelining schedule for the batched CPU filter loops.
//!
//! The GPU tier hides memory latency by splitting each warp pair into a
//! loader and a compute role around a shared-memory ring
//! (`h3w_core::feed`). The CPU analog in this module is necessarily
//! different machinery — an out-of-order core *is* the ring — but the
//! same two levers exist and [`PipeSchedule`] names them:
//!
//! * **chains** — how many independent (model, sequence) dependency
//!   chains the fused row loop keeps in flight. Each chain is one batch
//!   slot; the interleaved kernels in [`crate::batch`] round-robin them
//!   so one chain's `xE → xJ/xB` feedback latency is hidden behind the
//!   others' arithmetic (capped at [`MAX_BATCH`](crate::batch::MAX_BATCH):
//!   past four chains the interleaved loop's working set spills out of a
//!   16-register vector file and measured throughput drops, so depths
//!   5–8 buy prefetch lookahead only).
//! * **lookahead** — how many rows ahead of the compute front the loop
//!   issues software prefetches for the residue-indexed striped table
//!   row. The table row chosen by row `r` depends on `seq[r]`, a
//!   data-dependent gather the hardware stride prefetcher cannot
//!   predict; touching `rbv[seq[r + lookahead] · stride]` a few rows
//!   early is exactly the loader warp's job done with `prefetcht0`.
//!
//! A requested depth `d` maps to `min(d, MAX_BATCH)` chains and `d − 1`
//! rows of lookahead, so `depth = 1` is the honest un-pipelined baseline
//! (single chain, no prefetch) and every deeper setting only reorders
//! *when* independent work executes — never *what* is computed. Results
//! are therefore bit-identical at every depth on every backend; the
//! depth-equivalence proptests in `tests/pipeline_depth.rs` hold that
//! line.

use crate::batch::MAX_BATCH;

/// Deepest supported software pipeline: chains saturate at
/// [`MAX_BATCH`], and beyond 8 rows of lookahead the prefetched lines
/// start getting evicted before use on the L1 sizes we target.
pub const MAX_PIPELINE_DEPTH: usize = 8;

/// Depth `0` (auto) resolves here: `MAX_BATCH` chains plus three rows of
/// prefetch lookahead — enough to cover an L2 hit without outrunning L1.
pub const AUTO_PIPELINE_DEPTH: usize = 4;

/// A resolved software-pipelining schedule: the requested depth split
/// into its two mechanical levers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipeSchedule {
    /// The resolved depth (`1..=MAX_PIPELINE_DEPTH`).
    pub depth: usize,
    /// Independent sequence chains kept in flight per fused loop
    /// (`min(depth, MAX_BATCH)`).
    pub chains: usize,
    /// Rows of prefetch lookahead ahead of the compute front
    /// (`depth − 1`).
    pub lookahead: usize,
}

/// Resolve a requested pipeline depth: `0` means auto
/// ([`AUTO_PIPELINE_DEPTH`]), anything else is clamped to
/// `1..=`[`MAX_PIPELINE_DEPTH`].
pub fn resolve_pipeline_depth(requested: usize) -> PipeSchedule {
    let depth = if requested == 0 {
        AUTO_PIPELINE_DEPTH
    } else {
        requested.clamp(1, MAX_PIPELINE_DEPTH)
    };
    PipeSchedule {
        depth,
        chains: depth.min(MAX_BATCH),
        lookahead: depth - 1,
    }
}

/// Hint the cache hierarchy to pull the line holding `p` toward L1
/// (`prefetcht0`). A pure scheduling hint: no fault, no side effect on
/// architectural state, a no-op off x86_64 — which is what keeps every
/// pipeline depth bit-identical.
#[inline(always)]
pub fn prefetch_read(p: *const u8) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch never faults, even on invalid addresses; SSE is
    // part of the x86_64 baseline.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_resolution_covers_the_knob_range() {
        let auto = resolve_pipeline_depth(0);
        assert_eq!(auto.depth, AUTO_PIPELINE_DEPTH);
        assert_eq!(auto.chains, MAX_BATCH.min(AUTO_PIPELINE_DEPTH));
        assert_eq!(auto.lookahead, AUTO_PIPELINE_DEPTH - 1);
        let one = resolve_pipeline_depth(1);
        assert_eq!(
            (one.depth, one.chains, one.lookahead),
            (1, 1, 0),
            "depth 1 must be the un-pipelined baseline"
        );
        let deep = resolve_pipeline_depth(100);
        assert_eq!(deep.depth, MAX_PIPELINE_DEPTH);
        assert_eq!(deep.chains, MAX_BATCH);
        assert_eq!(deep.lookahead, MAX_PIPELINE_DEPTH - 1);
        for d in 1..=MAX_PIPELINE_DEPTH {
            let s = resolve_pipeline_depth(d);
            assert_eq!(s.depth, d);
            assert_eq!(s.chains, d.min(MAX_BATCH));
            assert_eq!(s.lookahead, d - 1);
        }
    }

    #[test]
    fn prefetch_is_inert() {
        // Any address is legal to prefetch, including one we'd never
        // dereference.
        prefetch_read(core::ptr::null());
        let x = [0u8; 64];
        prefetch_read(x.as_ptr());
    }
}
