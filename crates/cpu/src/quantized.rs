//! Scalar implementations of the quantized filter pipelines — the
//! executable specification.
//!
//! These walk the canonical recurrences documented in
//! [`h3w_hmm::msvprofile`] and [`h3w_hmm::vitprofile`] cell by cell, in
//! order, with no striping and no laziness. The striped CPU filters and the
//! warp-synchronous GPU kernels must reproduce their `xJ`/`xC` outputs
//! **bit-exactly** — that equality is what "preserving the sensitivity and
//! accuracy of HMMER 3.0" (paper abstract) means operationally.

use h3w_hmm::alphabet::Residue;
use h3w_hmm::msvprofile::MsvProfile;
use h3w_hmm::vitprofile::{wadd, VitProfile, W_NEG_INF};

/// Outcome of an 8-bit MSV filter pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsvOutcome {
    /// Final `xJ` byte (meaningless when `overflow` is set).
    pub xj: u8,
    /// The biased byte pipeline saturated: the true score is off-scale
    /// high and the sequence unconditionally passes the filter.
    pub overflow: bool,
    /// Score in nats (+∞ on overflow).
    pub score: f32,
}

/// Outcome of a 16-bit Viterbi filter pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VitOutcome {
    /// Final `xC` word.
    pub xc: i16,
    /// Score in nats (−∞ if no path reached `C`).
    pub score: f32,
}

/// Scalar 8-bit MSV filter (reference for the striped and warp versions).
pub fn msv_filter_scalar(om: &MsvProfile, seq: &[Residue]) -> MsvOutcome {
    let m = om.m;
    let lc = om.len_costs(seq.len());
    let overflow_at = om.overflow_limit();

    let mut dp = vec![0u8; m + 1]; // dp[0] stays 0 (= −∞)
    let mut xj = 0u8;
    let mut xb = om.base.saturating_sub(lc.tjbm);
    for &x in seq {
        let row = om.cost_row(x);
        let mut xe = 0u8;
        let mut diag = dp[0];
        for k in 1..=m {
            let sv = diag
                .max(xb)
                .saturating_add(om.bias)
                .saturating_sub(row[k - 1]);
            diag = dp[k];
            dp[k] = sv;
            xe = xe.max(sv);
        }
        if xe >= overflow_at {
            return MsvOutcome {
                xj: 255,
                overflow: true,
                score: MsvProfile::overflow_score(),
            };
        }
        xj = xj.max(xe.saturating_sub(lc.tec));
        xb = om.base.max(xj).saturating_sub(lc.tjbm);
    }
    MsvOutcome {
        xj,
        overflow: false,
        score: om.score_to_nats(xj, seq.len()),
    }
}

/// Scalar 16-bit Viterbi filter with exact in-order D→D propagation
/// (reference for the Lazy-F implementations). A saturated row maximum
/// means the score is off-scale high: the filter returns +∞ immediately
/// (HMMER's `eslERANGE` convention), `xc = i16::MAX`.
pub fn vit_filter_scalar(om: &VitProfile, seq: &[Residue]) -> VitOutcome {
    let m = om.m;
    let ls = om.len_scores(seq.len());

    let mut dpm = vec![W_NEG_INF; m + 1];
    let mut dpi = vec![W_NEG_INF; m + 1];
    let mut dpd = vec![W_NEG_INF; m + 1];
    let mut xn = om.base;
    let mut xj = W_NEG_INF;
    let mut xc = W_NEG_INF;
    let mut xb = wadd(xn, ls.move_w);

    for &x in seq {
        let row = om.emis_row(x);
        let mut xe = W_NEG_INF;
        let mut diag_m = W_NEG_INF;
        let mut diag_i = W_NEG_INF;
        let mut diag_d = W_NEG_INF;
        let mut cur_m = W_NEG_INF;
        let mut cur_d = W_NEG_INF;
        for k in 1..=m {
            let k0 = k - 1;
            let old_m = dpm[k];
            let old_i = dpi[k];
            let old_d = dpd[k];
            let mut mv = wadd(xb, om.bmk_in[k0]);
            mv = mv.max(wadd(diag_m, om.tmm_in[k0]));
            mv = mv.max(wadd(diag_i, om.tim_in[k0]));
            mv = mv.max(wadd(diag_d, om.tdm_in[k0]));
            mv = wadd(mv, row[k0]);
            let iv = wadd(old_m, om.tmi_self[k0]).max(wadd(old_i, om.tii_self[k0]));
            let dv = wadd(cur_m, om.tmd_in[k0]).max(wadd(cur_d, om.tdd_in[k0]));
            xe = xe.max(mv);
            diag_m = old_m;
            diag_i = old_i;
            diag_d = old_d;
            dpm[k] = mv;
            dpi[k] = iv;
            dpd[k] = dv;
            cur_m = mv;
            cur_d = dv;
        }
        if xe == i16::MAX {
            return VitOutcome {
                xc: i16::MAX,
                score: f32::INFINITY,
            };
        }
        xj = wadd(xj, ls.loop_w).max(wadd(xe, ls.e_to_j));
        xc = wadd(xc, ls.loop_w).max(wadd(xe, ls.e_to_c));
        xn = wadd(xn, ls.loop_w);
        xb = wadd(xn.max(xj), ls.move_w);
    }
    VitOutcome {
        xc,
        score: om.score_to_nats(xc, seq.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{msv_filter_model, viterbi_filter_model};
    use h3w_hmm::background::NullModel;
    use h3w_hmm::build::{synthetic_model, BuildParams};
    use h3w_hmm::calibrate::random_seq;
    use h3w_hmm::profile::Profile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(m: usize, seed: u64) -> (Profile, MsvProfile, VitProfile) {
        let bg = NullModel::new();
        let core = synthetic_model(m, seed, &BuildParams::default());
        let p = Profile::config(&core, &bg);
        let msv = MsvProfile::from_profile(&p);
        let vit = VitProfile::from_profile(&p);
        (p, msv, vit)
    }

    #[test]
    fn msv_quantized_tracks_float_reference() {
        let (p, om, _) = setup(50, 31);
        let mut rng = StdRng::seed_from_u64(77);
        for len in [40usize, 120, 400] {
            let seq = random_seq(&mut rng, len);
            let q = msv_filter_scalar(&om, &seq);
            assert!(!q.overflow);
            let f = msv_filter_model(&p, &seq);
            // Third-bit quantization over a random-walk of roundings;
            // generous but meaningful bound.
            assert!(
                (q.score - f).abs() < 2.0,
                "len {len}: quantized {} vs float {f}",
                q.score
            );
        }
    }

    #[test]
    fn msv_homolog_scores_high_or_overflows() {
        let bg = NullModel::new();
        let core = synthetic_model(80, 5, &BuildParams::default());
        let p = Profile::config(&core, &bg);
        let om = MsvProfile::from_profile(&p);
        let mut rng = StdRng::seed_from_u64(6);
        let hom = h3w_seqdb::gen::sample_homolog(&mut rng, &core, 15);
        let q = msv_filter_scalar(&om, &hom);
        let bgq = msv_filter_scalar(&om, &random_seq(&mut rng, hom.len()));
        assert!(!bgq.overflow);
        assert!(
            q.overflow || q.score > bgq.score + 5.0,
            "homolog {:?} vs background {:?}",
            q,
            bgq
        );
    }

    #[test]
    fn vit_quantized_tracks_float_reference() {
        let (p, _, om) = setup(50, 31);
        let mut rng = StdRng::seed_from_u64(78);
        for len in [40usize, 120, 400] {
            let seq = random_seq(&mut rng, len);
            let q = vit_filter_scalar(&om, &seq);
            let f = viterbi_filter_model(&p, &seq);
            // 1/500-bit quantization: tight tolerance scaled to path length.
            let tol = 0.02 + 2.0 * (len + 50) as f32 / om.scale;
            assert!(
                (q.score - f).abs() < tol,
                "len {len}: quantized {} vs float {f} (tol {tol})",
                q.score
            );
        }
    }

    #[test]
    fn vit_empty_sequence_is_neg_inf() {
        let (_, _, om) = setup(10, 2);
        let out = vit_filter_scalar(&om, &[]);
        assert_eq!(out.xc, W_NEG_INF);
        assert_eq!(out.score, f32::NEG_INFINITY);
    }

    #[test]
    fn msv_empty_sequence_is_floor() {
        let (_, om, _) = setup(10, 2);
        let out = msv_filter_scalar(&om, &[]);
        assert_eq!(out.xj, 0);
        assert!(!out.overflow);
    }

    #[test]
    fn msv_embedded_motif_beats_background_at_same_length() {
        // Same sequence length ⇒ same length model, so xJ is comparable:
        // planting the consensus in the middle can only raise the score.
        let bg = NullModel::new();
        let core = synthetic_model(30, 3, &BuildParams::default());
        let p = Profile::config(&core, &bg);
        let om = MsvProfile::from_profile(&p);
        let mut rng = StdRng::seed_from_u64(9);
        let plain = random_seq(&mut rng, 200);
        let mut planted = plain.clone();
        planted[80..80 + core.consensus.len()].copy_from_slice(&core.consensus);
        let a = msv_filter_scalar(&om, &plain);
        let b = msv_filter_scalar(&om, &planted);
        assert!(!a.overflow);
        assert!(
            b.overflow || b.xj > a.xj,
            "planted consensus {b:?} should beat background {a:?}"
        );
    }

    #[test]
    fn deterministic() {
        let (_, msv, vit) = setup(25, 4);
        let mut rng = StdRng::seed_from_u64(10);
        let seq = random_seq(&mut rng, 100);
        assert_eq!(msv_filter_scalar(&msv, &seq), msv_filter_scalar(&msv, &seq));
        assert_eq!(vit_filter_scalar(&vit, &seq), vit_filter_scalar(&vit, &seq));
    }
}
