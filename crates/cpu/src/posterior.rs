//! Posterior decoding and domain identification — HMMER's post-Forward
//! stage.
//!
//! After a target survives the filters, HMMER runs Forward + Backward and
//! decodes per-row posterior probabilities to delimit *domains* (regions
//! of the target aligned to the model). This module implements the same
//! idea on the workspace's state conventions: `P(row i is emitted by a
//! homologous state)` from the Forward/Backward lattices, and a
//! threshold-based segmenter that returns domain intervals.
//!
//! The Forward half of the lattice comes from the striped odds-space
//! filter ([`StripedFwd::run_recording`]) — the same kernel the
//! pipeline's stage 3 runs, so a survivor's recorded matrix can be
//! decoded directly instead of re-running a generic DP. The Backward
//! lattice stays in log space with the table-driven `flogsum`, and the
//! per-row posterior combines the two in linear space:
//! `P(i) = Σ_k fwd_odds(i,k) · exp(bwd(i,k) + scale(i) − total)`.
//! Striped Forward values are bit-identical on every backend, so
//! posteriors (and the null2 corrections built on them) are too.

use crate::reference::flogsum;
use crate::striped_fwd::{FwdWorkspace, StripedFwd};
use h3w_hmm::alphabet::Residue;
use h3w_hmm::profile::{Profile, NEG_INF};

/// Per-row posterior decoding of one target.
#[derive(Debug, Clone, PartialEq)]
pub struct Posterior {
    /// Total Forward score (nats).
    pub total: f32,
    /// `P(residue i emitted by a match/insert state)`, length `L`
    /// (index 0 = residue 1).
    pub homology: Vec<f32>,
}

/// One decoded domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Domain {
    /// First residue of the domain (1-based, inclusive).
    pub i_start: usize,
    /// Last residue (inclusive).
    pub i_end: usize,
    /// Mean homology posterior across the domain.
    pub mean_posterior: f32,
}

/// Forward/Backward posterior decoding (O(L·M) time, O(L·M) memory —
/// reported-hit scale, like [`viterbi_trace`](crate::traceback::viterbi_trace)).
/// Stripes the profile's Forward tables on the fly; when a
/// [`StripedFwd`] already exists (the pipeline holds one), use
/// [`posterior_decode_with`] — the results are identical.
pub fn posterior_decode(p: &Profile, seq: &[Residue]) -> Posterior {
    posterior_decode_with(p, &StripedFwd::new(p), seq)
}

/// [`posterior_decode`] reusing an existing striped-Forward table set.
pub fn posterior_decode_with(p: &Profile, fwd: &StripedFwd, seq: &[Residue]) -> Posterior {
    let m = p.m;
    let l = seq.len();
    if l == 0 || m == 0 {
        return Posterior {
            total: NEG_INF,
            homology: Vec::new(),
        };
    }
    let xs = p.specials_for(l);

    // Forward lattice: the striped odds-space filter, recorded.
    let mut fwd_ws = FwdWorkspace::default();
    let mat = fwd.run_recording(p, seq, &mut fwd_ws);
    let total = mat.total;
    if !total.is_finite() {
        return Posterior {
            total: NEG_INF,
            homology: vec![0.0; l],
        };
    }

    // Backward lattice.
    let mut bm = vec![NEG_INF; (l + 2) * (m + 2)];
    let mut bi = vec![NEG_INF; (l + 2) * (m + 2)];
    let mut bd = vec![NEG_INF; (l + 2) * (m + 2)];
    let bidx = |i: usize, k: usize| i * (m + 2) + k;
    let mut b_xc = vec![NEG_INF; l + 1];
    let mut b_xj = vec![NEG_INF; l + 1];
    let mut b_xe = vec![NEG_INF; l + 1];
    let mut b_xb = vec![NEG_INF; l + 1];
    b_xc[l] = xs.move_sc;
    // Row l terminals.
    b_xe[l] = b_xc[l] + xs.e_to_c;
    for k in (1..=m).rev() {
        bm[bidx(l, k)] = b_xe[l];
        bd[bidx(l, k)] = if k < m {
            bd[bidx(l, k + 1)] + p.tdd[k]
        } else {
            NEG_INF
        };
        if k < m {
            bm[bidx(l, k)] = flogsum(bm[bidx(l, k)], bd[bidx(l, k + 1)] + p.tmd[k]);
        }
    }
    for i in (0..l).rev() {
        let x_next = seq[i] as usize;
        // bB(i) = Σ_k bM(i+1,k)·bmk·emis.
        let mut bb = NEG_INF;
        for k in 1..=m {
            bb = flogsum(bb, bm[bidx(i + 1, k)] + p.bmk[k] + p.msc[k][x_next]);
        }
        b_xb[i] = bb;
        b_xj[i] = flogsum(b_xj[i + 1] + xs.loop_sc, bb + xs.move_sc);
        b_xc[i] = b_xc[i + 1] + xs.loop_sc;
        b_xe[i] = flogsum(b_xj[i] + xs.e_to_j, b_xc[i] + xs.e_to_c);
        for k in (1..=m).rev() {
            let to_next = if k < m { p.msc[k + 1][x_next] } else { NEG_INF };
            let mut v = b_xe[i];
            v = flogsum(v, bm[bidx(i + 1, k + 1)] + p.tmm[k] + to_next);
            if k < m {
                v = flogsum(v, bi[bidx(i + 1, k)] + p.tmi[k]);
                v = flogsum(v, bd[bidx(i, k + 1)] + p.tmd[k]);
            }
            bm[bidx(i, k)] = v;
            bi[bidx(i, k)] = if k < m {
                flogsum(
                    bm[bidx(i + 1, k + 1)] + p.tim[k] + to_next,
                    bi[bidx(i + 1, k)] + p.tii[k],
                )
            } else {
                NEG_INF
            };
            bd[bidx(i, k)] = if k < m {
                flogsum(
                    bm[bidx(i + 1, k + 1)] + p.tdm[k] + to_next,
                    bd[bidx(i, k + 1)] + p.tdd[k],
                )
            } else {
                NEG_INF
            };
        }
    }

    // Posterior per row: mass of M/I states at row i over the total,
    // combined in linear space. The recorded Forward cell is
    // `odds · exp(scale(i))`, so each term is
    // `odds · exp(bwd + scale(i) − total)`; the shared exponent shift
    // is hoisted per row.
    let mut homology = Vec::with_capacity(l);
    for i in 1..=l {
        let adj = mat.scale(i) - total;
        let mut num = 0.0f32;
        for k in 1..=m {
            let fm_o = mat.m_odds(i, k);
            if fm_o > 0.0 {
                num += fm_o * (bm[bidx(i, k)] + adj).exp();
            }
            if k < m {
                let fi_o = mat.i_odds(i, k);
                if fi_o > 0.0 {
                    num += fi_o * (bi[bidx(i, k)] + adj).exp();
                }
            }
        }
        homology.push(num.clamp(0.0, 1.0));
    }
    Posterior { total, homology }
}

/// Segment the homology posterior into domains: maximal runs where the
/// posterior stays at or above `threshold` (HMMER's region-definition
/// idea, simplified), dropping runs shorter than `min_len`.
pub fn find_domains(post: &Posterior, threshold: f32, min_len: usize) -> Vec<Domain> {
    let mut out = Vec::new();
    let mut start: Option<usize> = None;
    for (i0, &p) in post.homology.iter().enumerate() {
        if p >= threshold {
            start.get_or_insert(i0);
        } else if let Some(s) = start.take() {
            push_domain(&mut out, post, s, i0 - 1, min_len);
        }
    }
    if let Some(s) = start {
        push_domain(&mut out, post, s, post.homology.len() - 1, min_len);
    }
    out
}

fn push_domain(out: &mut Vec<Domain>, post: &Posterior, s0: usize, e0: usize, min_len: usize) {
    if e0 + 1 - s0 < min_len {
        return;
    }
    let mean = post.homology[s0..=e0].iter().sum::<f32>() / (e0 + 1 - s0) as f32;
    out.push(Domain {
        i_start: s0 + 1,
        i_end: e0 + 1,
        mean_posterior: mean,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::forward_generic;
    use h3w_hmm::background::NullModel;
    use h3w_hmm::build::{synthetic_model, BuildParams};
    use h3w_hmm::calibrate::random_seq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(m: usize, seed: u64) -> Profile {
        let bg = NullModel::new();
        Profile::config(&synthetic_model(m, seed, &BuildParams::default()), &bg)
    }

    #[test]
    fn total_matches_forward() {
        let p = setup(25, 1);
        let mut rng = StdRng::seed_from_u64(8);
        for len in [15usize, 60, 150] {
            let seq = random_seq(&mut rng, len);
            let post = posterior_decode(&p, &seq);
            let fwd = forward_generic(&p, &seq);
            assert!(
                (post.total - fwd).abs() < 0.05 + 0.002 * len as f32,
                "len {len}: {} vs {fwd}",
                post.total
            );
        }
    }

    #[test]
    fn posteriors_are_probabilities() {
        let p = setup(20, 3);
        let mut rng = StdRng::seed_from_u64(8);
        let seq = random_seq(&mut rng, 120);
        let post = posterior_decode(&p, &seq);
        assert_eq!(post.homology.len(), 120);
        assert!(post.homology.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn planted_motif_region_lights_up() {
        let model = synthetic_model(30, 9, &BuildParams::default());
        let bg = NullModel::new();
        let p = Profile::config(&model, &bg);
        let mut rng = StdRng::seed_from_u64(8);
        let mut seq = random_seq(&mut rng, 220);
        seq[90..120].copy_from_slice(&model.consensus);
        let post = posterior_decode(&p, &seq);
        let inside: f32 = post.homology[92..118].iter().sum::<f32>() / 26.0;
        let outside: f32 = post.homology[..60].iter().sum::<f32>() / 60.0;
        assert!(
            inside > 0.9 && outside < 0.2,
            "inside {inside:.3} vs outside {outside:.3}"
        );
        let domains = find_domains(&post, 0.5, 5);
        assert_eq!(domains.len(), 1, "{domains:?}");
        let d = domains[0];
        assert!(d.i_start >= 85 && d.i_start <= 95, "{d:?}");
        assert!(d.i_end >= 115 && d.i_end <= 125, "{d:?}");
        assert!(d.mean_posterior > 0.8);
    }

    #[test]
    fn two_planted_motifs_give_two_domains() {
        let model = synthetic_model(25, 11, &BuildParams::default());
        let bg = NullModel::new();
        let p = Profile::config(&model, &bg);
        let mut rng = StdRng::seed_from_u64(8);
        let mut seq = random_seq(&mut rng, 300);
        seq[50..75].copy_from_slice(&model.consensus);
        seq[200..225].copy_from_slice(&model.consensus);
        let post = posterior_decode(&p, &seq);
        let domains = find_domains(&post, 0.5, 5);
        assert_eq!(domains.len(), 2, "{domains:?}");
        assert!(domains[0].i_end < domains[1].i_start);
    }

    #[test]
    fn background_sequence_has_no_domains() {
        let p = setup(40, 13);
        let mut rng = StdRng::seed_from_u64(8);
        let seq = random_seq(&mut rng, 200);
        let post = posterior_decode(&p, &seq);
        let domains = find_domains(&post, 0.5, 5);
        assert!(domains.is_empty(), "{domains:?}");
    }

    #[test]
    fn empty_sequence() {
        let p = setup(10, 1);
        let post = posterior_decode(&p, &[]);
        assert_eq!(post.total, NEG_INF);
        assert!(find_domains(&post, 0.5, 1).is_empty());
    }
}
