//! Biased-composition ("null2") score correction — HMMER's guard against
//! low-complexity false positives.
//!
//! A target whose aligned region is compositionally biased (poly-L,
//! coiled-coil-ish, etc.) can score well against any model that shares the
//! bias, without being a homolog. HMMER re-scores the aligned region
//! against an alternative null built from the region's own
//! posterior-weighted composition and subtracts the advantage that null
//! would have had. This module implements that idea on the
//! [`Posterior`] decoding:
//!
//! `null2(x) ∝ Σ_i γ_i·[x_i = x] + α·f(x)` over the homologous region,
//! and the correction is `max(0, Σ_i γ_i·ln(null2(x_i)/f(x_i)))` — never
//! negative, so unbiased hits are untouched.

use crate::posterior::Posterior;
use h3w_hmm::alphabet::{Residue, N_STANDARD};
use h3w_hmm::background::NullModel;

/// Pseudocount mass mixed into the region composition (keeps the
/// correction stable on short domains).
pub const NULL2_ALPHA: f32 = 5.0;

/// Compute the null2 log correction (nats, ≥ 0) for one target given its
/// posterior decoding. Subtract it from the Forward score before
/// computing the P-value.
pub fn null2_correction(bg: &NullModel, seq: &[Residue], post: &Posterior) -> f32 {
    if seq.is_empty() || post.homology.is_empty() {
        return 0.0;
    }
    // Posterior-weighted composition of the homologous region.
    let mut comp = [0f32; N_STANDARD];
    let mut mass = 0f32;
    for (&x, &g) in seq.iter().zip(&post.homology) {
        if (x as usize) < N_STANDARD {
            comp[x as usize] += g;
            mass += g;
        }
    }
    if mass < 1.0 {
        return 0.0; // nothing homologous to correct
    }
    let total = mass + NULL2_ALPHA;
    for (x, c) in comp.iter_mut().enumerate() {
        *c = (*c + NULL2_ALPHA * bg.f[x]) / total;
    }
    // Advantage of the composition null over the background, weighted by
    // how homologous each residue is.
    let mut corr = 0f32;
    for (&x, &g) in seq.iter().zip(&post.homology) {
        if (x as usize) < N_STANDARD {
            let f1 = bg.f[x as usize].max(1e-9);
            corr += g * (comp[x as usize] / f1).ln();
        }
    }
    corr.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posterior::posterior_decode;
    use h3w_hmm::build::{synthetic_model, BuildParams};
    use h3w_hmm::calibrate::random_seq;
    use h3w_hmm::plan7::{CoreModel, Node, NodeTrans};
    use h3w_hmm::profile::Profile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn background_region_needs_no_correction() {
        let bg = NullModel::new();
        let model = synthetic_model(40, 3, &BuildParams::default());
        let p = Profile::config(&model, &bg);
        let mut rng = StdRng::seed_from_u64(4);
        let mut seq = random_seq(&mut rng, 200);
        // A real (composition-typical) homolog.
        seq[80..120].copy_from_slice(&model.consensus);
        let post = posterior_decode(&p, &seq);
        let corr = null2_correction(&bg, &seq, &post);
        // Any specific 40-residue region has *some* composition advantage
        // (a few nats); what matters is that it stays an order of
        // magnitude below the domain's ~60-nat score and far below the
        // poly-L case tested next.
        assert!(corr < 10.0, "correction {corr} too aggressive");
        assert!(
            post.total > corr + 20.0,
            "correction would erase a true hit"
        );
    }

    /// A deliberately low-complexity model: every column prefers L.
    fn poly_l_model() -> CoreModel {
        let mut mat = [0.004f32; N_STANDARD];
        mat[9] = 1.0 - 0.004 * 19.0; // L
        let node = Node {
            mat,
            ins: h3w_hmm::alphabet::BACKGROUND_F,
            t: NodeTrans::conserved(),
        };
        CoreModel {
            name: "polyL".into(),
            nodes: vec![node; 30],
            consensus: vec![9; 30],
        }
    }

    #[test]
    fn low_complexity_match_is_penalized() {
        let bg = NullModel::new();
        let model = poly_l_model();
        let p = Profile::config(&model, &bg);
        let mut rng = StdRng::seed_from_u64(5);
        let mut seq = random_seq(&mut rng, 150);
        for r in seq[50..90].iter_mut() {
            *r = 9; // a poly-L stretch: matches the model by bias alone
        }
        let post = posterior_decode(&p, &seq);
        let corr = null2_correction(&bg, &seq, &post);
        // The poly-L region's composition null eats most of its score:
        // each L is ~ln(1/0.096) ≈ 2.3 nats of apparent signal.
        assert!(corr > 30.0, "correction {corr} too small for poly-L");
        // And the corrected score drops dramatically.
        assert!(post.total - corr < post.total - 30.0);
    }

    #[test]
    fn correction_is_never_negative_and_zero_on_empty() {
        let bg = NullModel::new();
        let model = synthetic_model(10, 1, &BuildParams::default());
        let p = Profile::config(&model, &bg);
        assert_eq!(null2_correction(&bg, &[], &posterior_decode(&p, &[])), 0.0);
        let mut rng = StdRng::seed_from_u64(6);
        let seq = random_seq(&mut rng, 60);
        let post = posterior_decode(&p, &seq);
        assert!(null2_correction(&bg, &seq, &post) >= 0.0);
    }
}
