//! Striped odds-space Forward filter — the float sibling of HMMER 3.0's
//! `p7_ForwardFilter` (fwdfilter.c), replacing the scalar log-space
//! [`forward_generic`](crate::reference::forward_generic) on the
//! pipeline's stage-3 hot path.
//!
//! # Odds space + renormalization
//!
//! `forward_generic` works in nats and spends a table-driven `flogsum`
//! per cell edge — a dozen dependent scalar ops. This filter works in
//! *odds space* (`exp` of the log-odds), where log-sum-exp collapses to
//! `a*b + c`: four multiply-adds per M cell, all vectorizable. The price
//! is dynamic range: a strong homolog's odds overflow `f32` after a few
//! hundred residues. Per HMMER's fwdfilter, each row's Σ-over-M (`xE`)
//! is checked against [`RESCALE_THRESHOLD`]; when it trips, the current
//! DP row and the special states are multiplied by `1/xE` and `ln(xE)`
//! accumulates into a running `totscale`. The final score is
//! `totscale + ln(xC) + move_sc` — exact in nats, no underflow (the
//! filter's score floor ≈ −45 nats sits far above the `f32` denormal
//! range) and no overflow (rescaling caps row magnitudes).
//!
//! # One stripe, three backends, bit-identical
//!
//! Unlike the MSV/Viterbi filters (whose AVX2 backends re-stripe to
//! wider lanes — safe there because saturated max is striping-agnostic),
//! float *addition* is not associative, so a wider stripe would change
//! scores between backends and break the pipeline's cross-backend
//! bit-identity guarantee. Instead **all** backends share the canonical
//! 4-lane Farrar stripe (`Q = ⌈M/4⌉`, position `qi` lane `z` holds node
//! `k = z·Q + qi + 1`) and the exact same per-row operation order:
//!
//! * `xE` accumulates into an even-`qi` and an odd-`qi` register,
//!   reduced at the end by the fixed tree `(v0+v2)+(v1+v3)` — precisely
//!   what AVX2 gets for free from its low/high 128-bit halves.
//! * The serial D→D chain runs at 128-bit width in every backend: one
//!   full in-lane pass, then ≤ 3 cross-lane carry-only correction
//!   passes (exact, since each pass propagates the previous pass's
//!   increment — see `dd_passes`), with a deterministic `== 0.0` early
//!   exit.
//!
//! The AVX2 backend therefore speeds up the *same* arithmetic by
//! processing two adjacent stripe vectors per 256-bit op (the element
//! set and rounding of each op is unchanged), and scalar/SSE2/AVX2 all
//! return bit-identical scores — so hits, calibration, and posterior
//! values do not depend on `H3W_SIMD_BACKEND`.
//!
//! Tables are destination-aligned exactly like
//! [`h3w_hmm::vitprofile`]: index `k0 = k−1` holds everything entering
//! node `k`, so the row loop indexes every table with the same `qi`.

use crate::backend::Backend;
use crate::batch::MAX_BATCH;
use crate::pipe::{prefetch_read, resolve_pipeline_depth};
use crate::simd::{add_f32, all_zero_f32, hsum_f32, mul_f32, shift_f32, splat_f32, V4f32};
use h3w_hmm::alphabet::{Residue, N_CODES};
use h3w_hmm::profile::{Profile, SpecialScores, NEG_INF};

/// Float lanes in the canonical stripe (every backend).
pub const FWD_LANES: usize = 4;

/// Rescale when a row's odds-space `xE` exceeds this. Low enough that a
/// further row of growth cannot approach `f32::MAX`, high enough that
/// background sequences (whose `xE` stays O(1)) never pay the `ln`.
const RESCALE_THRESHOLD: f32 = 1.0e10;

const ZERO4: V4f32 = [0.0; 4];

/// Per-target special transitions in odds space (`exp` of
/// [`SpecialScores`]); `exp(−∞) = 0` keeps unihit `E→J` exact.
#[derive(Debug, Clone, Copy)]
struct OddsSpecials {
    loop_o: f32,
    move_o: f32,
    e2j_o: f32,
    e2c_o: f32,
    /// Kept in nats for the final score recovery.
    move_sc: f32,
}

impl OddsSpecials {
    fn from_scores(xs: &SpecialScores) -> OddsSpecials {
        OddsSpecials {
            loop_o: xs.loop_sc.exp(),
            move_o: xs.move_sc.exp(),
            e2j_o: xs.e_to_j.exp(),
            e2c_o: xs.e_to_c.exp(),
            move_sc: xs.move_sc,
        }
    }
}

/// Special-state values for one in-flight sequence, in odds space, plus
/// the accumulated log of all scale factors applied so far.
#[derive(Debug, Clone, Copy)]
struct RowState {
    xn: f32,
    xj: f32,
    xc: f32,
    xb: f32,
    totscale: f32,
}

impl RowState {
    fn start(sp: &OddsSpecials) -> RowState {
        // Row 0: N = 1 (zero nats), J = C = 0 (−∞), B = N·move.
        RowState {
            xn: 1.0,
            xj: 0.0,
            xc: 0.0,
            xb: sp.move_o,
            totscale: 0.0,
        }
    }

    /// Recover the score in nats; `xC == 0` (e.g. the empty sequence)
    /// is −∞ exactly, matching the generic reference.
    fn finish(&self, sp: &OddsSpecials) -> f32 {
        if self.xc > 0.0 {
            self.totscale + self.xc.ln() + sp.move_sc
        } else {
            NEG_INF
        }
    }
}

/// Reusable double-buffered DP rows (previous + current M/I/D) for one
/// in-flight sequence. Double-buffering — rather than the in-place row
/// update the integer filters use — lets the AVX2 backend load the
/// shifted diagonal of a vector *pair* as one unaligned 256-bit load.
#[derive(Debug, Default)]
pub struct FwdWorkspace {
    pm: Vec<V4f32>,
    pi: Vec<V4f32>,
    pd: Vec<V4f32>,
    cm: Vec<V4f32>,
    ci: Vec<V4f32>,
    cd: Vec<V4f32>,
}

impl FwdWorkspace {
    fn reset(&mut self, q: usize) {
        for buf in [
            &mut self.pm,
            &mut self.pi,
            &mut self.pd,
            &mut self.cm,
            &mut self.ci,
            &mut self.cd,
        ] {
            buf.clear();
            buf.resize(q, ZERO4);
        }
    }

    fn swap(&mut self) {
        std::mem::swap(&mut self.pm, &mut self.cm);
        std::mem::swap(&mut self.pi, &mut self.ci);
        std::mem::swap(&mut self.pd, &mut self.cd);
    }
}

/// Per-worker state for [`StripedFwd::run_batch_into`]: one DP arena per
/// interleaved slot, grown once and reused across every batch the worker
/// scores (the sweep's scratch-buffer-reuse contract).
#[derive(Debug, Default)]
pub struct FwdBatchWorkspace {
    slots: Vec<FwdWorkspace>,
}

/// Recorded striped Forward lattice for posterior decoding: the
/// odds-space M/I rows (D never enters the posterior numerator under
/// filter conventions — E collects M only and D emits nothing), the
/// cumulative ln-scale per row, and the final score.
#[derive(Debug, Clone)]
pub struct FwdMatrix {
    /// Model length.
    pub m: usize,
    /// Stripe vectors per row.
    pub q: usize,
    /// Sequence length (rows `1..=l` are recorded).
    pub l: usize,
    rows_m: Vec<V4f32>,
    rows_i: Vec<V4f32>,
    scales: Vec<f32>,
    /// Forward score in nats (length model included).
    pub total: f32,
}

impl FwdMatrix {
    #[inline]
    fn at(&self, rows: &[V4f32], i: usize, k: usize) -> f32 {
        debug_assert!(i >= 1 && i <= self.l && k >= 1 && k <= self.m);
        let k0 = k - 1;
        rows[(i - 1) * self.q + (k0 % self.q)][k0 / self.q]
    }

    /// Raw odds-space `M(i,k)` (pre-scale; multiply by `exp(scale(i))`
    /// for the true odds). `i ∈ 1..=l`, `k ∈ 1..=m`.
    #[inline]
    pub fn m_odds(&self, i: usize, k: usize) -> f32 {
        self.at(&self.rows_m, i, k)
    }

    /// Raw odds-space `I(i,k)`.
    #[inline]
    pub fn i_odds(&self, i: usize, k: usize) -> f32 {
        self.at(&self.rows_i, i, k)
    }

    /// Cumulative ln of the scale factors applied up to and including
    /// row `i` — `ln M(i,k) = ln(m_odds) + scale(i)` in nats.
    #[inline]
    pub fn scale(&self, i: usize) -> f32 {
        self.scales[i - 1]
    }

    /// `M(i,k)` in nats (−∞ where the odds are zero).
    #[inline]
    pub fn m_log(&self, i: usize, k: usize) -> f32 {
        self.m_odds(i, k).ln() + self.scale(i)
    }

    /// `I(i,k)` in nats.
    #[inline]
    pub fn i_log(&self, i: usize, k: usize) -> f32 {
        self.i_odds(i, k).ln() + self.scale(i)
    }
}

/// A profile's Forward tables in odds space, rearranged into the
/// canonical 4-lane stripe. Phantom positions hold odds `0.0` (= −∞),
/// so they can never contribute probability mass.
#[derive(Debug, Clone)]
pub struct StripedFwd {
    /// Model length.
    pub m: usize,
    /// Vectors per row: `⌈M/4⌉`.
    pub q: usize,
    backend: Backend,
    /// Striped odds emissions, code-major: `rfv[code * q + qi]`.
    rfv: Vec<V4f32>,
    tmm: Vec<V4f32>,
    tim: Vec<V4f32>,
    tdm: Vec<V4f32>,
    tmd: Vec<V4f32>,
    tdd: Vec<V4f32>,
    tmi: Vec<V4f32>,
    tii: Vec<V4f32>,
    bmk: Vec<V4f32>,
}

impl StripedFwd {
    /// Stripe a [`Profile`] for the auto-detected backend.
    pub fn new(p: &Profile) -> StripedFwd {
        StripedFwd::with_backend(p, Backend::detect())
    }

    /// Stripe for a specific backend (downgrades to scalar if the
    /// requested backend cannot run on this CPU). The stripe layout is
    /// the same for every backend; only the row-loop dispatch differs.
    pub fn with_backend(p: &Profile, backend: Backend) -> StripedFwd {
        let backend = if backend.available() {
            backend
        } else {
            Backend::Scalar
        };
        let m = p.m;
        let q = m.div_ceil(FWD_LANES).max(1);
        let stripe = |table: &dyn Fn(usize) -> f32| -> Vec<V4f32> {
            (0..q)
                .map(|qi| {
                    core::array::from_fn(|z| {
                        let k0 = z * q + qi;
                        if k0 < m {
                            table(k0).exp()
                        } else {
                            0.0
                        }
                    })
                })
                .collect()
        };
        let mut rfv = Vec::with_capacity(N_CODES * q);
        for code in 0..N_CODES {
            rfv.extend(stripe(&|k0| p.msc[k0 + 1][code]));
        }
        StripedFwd {
            m,
            q,
            backend,
            rfv,
            // Destination-aligned: Profile stores the transition into
            // node k at index k-1 = k0 already.
            tmm: stripe(&|k0| p.tmm[k0]),
            tim: stripe(&|k0| p.tim[k0]),
            tdm: stripe(&|k0| p.tdm[k0]),
            tmd: stripe(&|k0| p.tmd[k0]),
            tdd: stripe(&|k0| p.tdd[k0]),
            // I_k self transitions live at node k = k0+1; no I_M state.
            tmi: stripe(&|k0| if k0 + 1 < m { p.tmi[k0 + 1] } else { NEG_INF }),
            tii: stripe(&|k0| if k0 + 1 < m { p.tii[k0 + 1] } else { NEG_INF }),
            bmk: stripe(&|k0| p.bmk[k0 + 1]),
        }
    }

    /// The backend this instance dispatches to.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// True DP cells per residue row (3 states × M nodes).
    pub fn real_cells_per_row(&self) -> u64 {
        3 * self.m as u64
    }

    /// Cells the striped kernel actually computes per row (phantoms
    /// included).
    pub fn padded_cells_per_row(&self) -> u64 {
        (3 * FWD_LANES * self.q) as u64
    }

    /// Estimated bytes the kernel moves per residue row: nine striped
    /// odds-table rows (emissions + eight transitions) plus the 3-state
    /// DP row read and written, at four bytes per f32 cell. Feeds the
    /// `bytes_moved` bandwidth counters in pipeline telemetry (an
    /// analytic lower bound).
    pub fn bytes_per_row(&self) -> u64 {
        let state_row = (FWD_LANES * self.q) as u64; // cells per striped state row
        4 * state_row * (9 + 3 + 3)
    }

    /// Score one sequence in nats, reusing `ws` buffers. Bit-identical
    /// on every backend.
    pub fn run_into(&self, p: &Profile, seq: &[Residue], ws: &mut FwdWorkspace) -> f32 {
        debug_assert_eq!(p.m, self.m);
        let sp = OddsSpecials::from_scores(&p.specials_for(seq.len()));
        ws.reset(self.q);
        let mut st = RowState::start(&sp);
        for &x in seq {
            self.advance_row(x, ws, &mut st, &sp);
        }
        st.finish(&sp)
    }

    /// Convenience wrapper allocating a fresh workspace.
    pub fn run(&self, p: &Profile, seq: &[Residue]) -> f32 {
        let mut ws = FwdWorkspace::default();
        self.run_into(p, seq, &mut ws)
    }

    /// Score up to [`MAX_BATCH`] sequences with row-level interleaving:
    /// each residue row advances every live slot before the next row,
    /// giving the out-of-order core [`MAX_BATCH`] independent dependency
    /// chains to overlap (the same win the batched MSV kernel gets).
    /// Slots are fully independent, so results are bit-identical to
    /// [`StripedFwd::run_into`] at every width.
    pub fn run_batch_into(
        &self,
        p: &Profile,
        seqs: &[&[Residue]],
        ws: &mut FwdBatchWorkspace,
        out: &mut [f32],
    ) {
        self.run_batch_pipelined_into(p, seqs, ws, out, 0)
    }

    /// [`StripedFwd::run_batch_into`] with an explicit software-pipeline
    /// depth (`0` = auto). The resolved lookahead prefetches the leading
    /// cache line of the striped emission row that row `r + lookahead`
    /// will gather (`rfv[seq[r+la] · q]` — the data-dependent load the
    /// hardware prefetcher cannot predict; once the line is touched the
    /// streamer follows the rest of the row). Prefetching cannot change
    /// arithmetic, so scores stay bit-identical at every depth.
    pub fn run_batch_pipelined_into(
        &self,
        p: &Profile,
        seqs: &[&[Residue]],
        ws: &mut FwdBatchWorkspace,
        out: &mut [f32],
        depth: usize,
    ) {
        let n = seqs.len();
        assert!(n <= MAX_BATCH, "batch of {n} exceeds MAX_BATCH");
        assert_eq!(out.len(), n);
        let la = resolve_pipeline_depth(depth).lookahead;
        while ws.slots.len() < n {
            ws.slots.push(FwdWorkspace::default());
        }
        let sps: [OddsSpecials; MAX_BATCH] = core::array::from_fn(|i| {
            let len = seqs.get(i).map_or(0, |s| s.len());
            OddsSpecials::from_scores(&p.specials_for(len))
        });
        let mut sts: [RowState; MAX_BATCH] = core::array::from_fn(|i| RowState::start(&sps[i]));
        for slot in ws.slots.iter_mut().take(n) {
            slot.reset(self.q);
        }
        let max_len = seqs.iter().map(|s| s.len()).max().unwrap_or(0);
        for r in 0..max_len {
            if la > 0 {
                for seq in seqs.iter() {
                    if let Some(&x) = seq.get(r + la) {
                        prefetch_read(self.rfv[x as usize * self.q].as_ptr() as *const u8);
                    }
                }
            }
            for (i, seq) in seqs.iter().enumerate() {
                if let Some(&x) = seq.get(r) {
                    self.advance_row(x, &mut ws.slots[i], &mut sts[i], &sps[i]);
                }
            }
        }
        for i in 0..n {
            out[i] = sts[i].finish(&sps[i]);
        }
    }

    /// Score one sequence and record the odds-space M/I lattice plus the
    /// per-row cumulative scales for posterior decoding. The recorded
    /// values (and `total`) are bit-identical to [`StripedFwd::run_into`].
    pub fn run_recording(&self, p: &Profile, seq: &[Residue], ws: &mut FwdWorkspace) -> FwdMatrix {
        debug_assert_eq!(p.m, self.m);
        let l = seq.len();
        let sp = OddsSpecials::from_scores(&p.specials_for(l));
        ws.reset(self.q);
        let mut st = RowState::start(&sp);
        let mut rows_m = Vec::with_capacity(l * self.q);
        let mut rows_i = Vec::with_capacity(l * self.q);
        let mut scales = Vec::with_capacity(l);
        for &x in seq {
            self.advance_row(x, ws, &mut st, &sp);
            rows_m.extend_from_slice(&ws.cm);
            rows_i.extend_from_slice(&ws.ci);
            scales.push(st.totscale);
        }
        FwdMatrix {
            m: self.m,
            q: self.q,
            l,
            rows_m,
            rows_i,
            scales,
            total: st.finish(&sp),
        }
    }

    /// One residue row: swap buffers, run the backend row loop, update
    /// the specials, rescale if `xE` tripped the threshold. The specials
    /// update and rescale are scalar and elementwise — identical on
    /// every backend by construction.
    #[inline]
    fn advance_row(&self, x: Residue, ws: &mut FwdWorkspace, st: &mut RowState, sp: &OddsSpecials) {
        ws.swap();
        let xe = match self.backend {
            Backend::Scalar => self.row_scalar(x as usize, ws, st.xb),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: with_backend only selects Sse2/Avx2 when the CPU
            // reports the feature (SSE2 is the x86_64 baseline).
            Backend::Sse2 => unsafe { self.row_sse2(x as usize, ws, st.xb) },
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => unsafe { self.row_avx2(x as usize, ws, st.xb) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => self.row_scalar(x as usize, ws, st.xb),
        };
        st.xj = st.xj * sp.loop_o + xe * sp.e2j_o;
        st.xc = st.xc * sp.loop_o + xe * sp.e2c_o;
        st.xn *= sp.loop_o;
        st.xb = (st.xn + st.xj) * sp.move_o;
        if xe > RESCALE_THRESHOLD {
            st.totscale += xe.ln();
            let inv = 1.0 / xe;
            st.xj *= inv;
            st.xc *= inv;
            st.xn *= inv;
            st.xb *= inv;
            for buf in [&mut ws.cm, &mut ws.ci, &mut ws.cd] {
                for v in buf.iter_mut() {
                    for lane in v.iter_mut() {
                        *lane *= inv;
                    }
                }
            }
        }
    }

    /// Portable reference row loop (emulated 4-lane vectors). This is
    /// the canonical operation order the intrinsic backends replicate.
    #[allow(clippy::needless_range_loop)]
    fn row_scalar(&self, x: usize, ws: &mut FwdWorkspace, xb: f32) -> f32 {
        let q = self.q;
        let row = &self.rfv[x * q..(x + 1) * q];
        let FwdWorkspace {
            pm,
            pi,
            pd,
            cm,
            ci,
            cd,
        } = ws;
        let xbv = splat_f32(xb);
        let mut acc_e = ZERO4;
        let mut acc_o = ZERO4;
        let mut mpv = shift_f32(pm[q - 1], 0.0);
        let mut ipv = shift_f32(pi[q - 1], 0.0);
        let mut dpv = shift_f32(pd[q - 1], 0.0);
        let mut mcur_prev = ZERO4; // M of position qi-1, current row
        for qi in 0..q {
            let mut sv = mul_f32(xbv, self.bmk[qi]);
            sv = add_f32(sv, mul_f32(mpv, self.tmm[qi]));
            sv = add_f32(sv, mul_f32(ipv, self.tim[qi]));
            sv = add_f32(sv, mul_f32(dpv, self.tdm[qi]));
            sv = mul_f32(sv, row[qi]);
            if qi % 2 == 0 {
                acc_e = add_f32(acc_e, sv);
            } else {
                acc_o = add_f32(acc_o, sv);
            }
            ci[qi] = add_f32(mul_f32(pm[qi], self.tmi[qi]), mul_f32(pi[qi], self.tii[qi]));
            // M→D seed; the qi=0 wrap and all D→D arrive below.
            cd[qi] = mul_f32(mcur_prev, self.tmd[qi]);
            mpv = pm[qi];
            ipv = pi[qi];
            dpv = pd[qi];
            cm[qi] = sv;
            mcur_prev = sv;
        }
        // Cross-lane M→D seed into qi = 0.
        cd[0] = add_f32(cd[0], mul_f32(shift_f32(mcur_prev, 0.0), self.tmd[0]));
        // D→D pass 1: full in-lane propagation (cross-lane input zero).
        let mut dprev = ZERO4;
        for qi in 0..q {
            cd[qi] = add_f32(cd[qi], mul_f32(dprev, self.tdd[qi]));
            dprev = cd[qi];
        }
        // Cross-lane carry-only correction passes: pass p hands each
        // lane the *increment* pass p-1 added at qi = q-1 of the lane
        // below; D is linear in its inputs, so propagating increments
        // (never re-reading the D row) is exact and cannot double
        // count. Lane 0's chain head is exact after pass 1, so ≤ 3
        // passes close the fixed point; a pass whose carry multiplies
        // to exact zero everywhere ends the loop early (deterministic,
        // hence backend-identical).
        let mut carry = shift_f32(dprev, 0.0);
        for _ in 1..FWD_LANES {
            let mut corr = mul_f32(carry, self.tdd[0]);
            if all_zero_f32(corr) {
                break;
            }
            cd[0] = add_f32(cd[0], corr);
            for qi in 1..q {
                corr = mul_f32(corr, self.tdd[qi]);
                cd[qi] = add_f32(cd[qi], corr);
            }
            carry = shift_f32(corr, 0.0);
        }
        hsum_f32(add_f32(acc_e, acc_o))
    }

    /// SSE2 row loop — the same 4-lane stripe and operation order as
    /// [`StripedFwd::row_scalar`], with real 128-bit intrinsics.
    #[cfg(target_arch = "x86_64")]
    unsafe fn row_sse2(&self, x: usize, ws: &mut FwdWorkspace, xb: f32) -> f32 {
        use crate::x86::{hsum_ps, loadu_ps, shl1_ps_128, storeu_ps};
        use core::arch::x86_64::*;
        let q = self.q;
        let row = self.rfv.as_ptr().add(x * q) as *const f32;
        let FwdWorkspace {
            pm,
            pi,
            pd,
            cm,
            ci,
            cd,
        } = ws;
        let pm = pm.as_ptr() as *const f32;
        let pi = pi.as_ptr() as *const f32;
        let pd = pd.as_ptr() as *const f32;
        let cm = cm.as_mut_ptr() as *mut f32;
        let ci = ci.as_mut_ptr() as *mut f32;
        let cd = cd.as_mut_ptr() as *mut f32;
        let tmm = self.tmm.as_ptr() as *const f32;
        let tim = self.tim.as_ptr() as *const f32;
        let tdm = self.tdm.as_ptr() as *const f32;
        let tmd = self.tmd.as_ptr() as *const f32;
        let tmi = self.tmi.as_ptr() as *const f32;
        let tii = self.tii.as_ptr() as *const f32;
        let bmk = self.bmk.as_ptr() as *const f32;

        let xbv = _mm_set1_ps(xb);
        let mut acc_e = _mm_setzero_ps();
        let mut acc_o = _mm_setzero_ps();
        let mut mpv = shl1_ps_128(loadu_ps(pm.add(4 * (q - 1))));
        let mut ipv = shl1_ps_128(loadu_ps(pi.add(4 * (q - 1))));
        let mut dpv = shl1_ps_128(loadu_ps(pd.add(4 * (q - 1))));
        let mut mcur_prev = _mm_setzero_ps();
        for qi in 0..q {
            let o = 4 * qi;
            let mut sv = _mm_mul_ps(xbv, loadu_ps(bmk.add(o)));
            sv = _mm_add_ps(sv, _mm_mul_ps(mpv, loadu_ps(tmm.add(o))));
            sv = _mm_add_ps(sv, _mm_mul_ps(ipv, loadu_ps(tim.add(o))));
            sv = _mm_add_ps(sv, _mm_mul_ps(dpv, loadu_ps(tdm.add(o))));
            sv = _mm_mul_ps(sv, loadu_ps(row.add(o)));
            if qi % 2 == 0 {
                acc_e = _mm_add_ps(acc_e, sv);
            } else {
                acc_o = _mm_add_ps(acc_o, sv);
            }
            let iv = _mm_add_ps(
                _mm_mul_ps(loadu_ps(pm.add(o)), loadu_ps(tmi.add(o))),
                _mm_mul_ps(loadu_ps(pi.add(o)), loadu_ps(tii.add(o))),
            );
            storeu_ps(ci.add(o), iv);
            storeu_ps(cd.add(o), _mm_mul_ps(mcur_prev, loadu_ps(tmd.add(o))));
            mpv = loadu_ps(pm.add(o));
            ipv = loadu_ps(pi.add(o));
            dpv = loadu_ps(pd.add(o));
            storeu_ps(cm.add(o), sv);
            mcur_prev = sv;
        }
        let wrap = _mm_mul_ps(shl1_ps_128(mcur_prev), loadu_ps(tmd));
        storeu_ps(cd, _mm_add_ps(loadu_ps(cd), wrap));
        self.dd_passes_x86(cd);
        hsum_ps(_mm_add_ps(acc_e, acc_o))
    }

    /// AVX2 row loop: identical stripe and arithmetic, but two adjacent
    /// stripe vectors (`qi`, `qi+1`) per 256-bit op. The low half maps
    /// to even `qi` and the high half to odd `qi`, so the single 256-bit
    /// `xE` accumulator *is* the scalar backend's even/odd accumulator
    /// pair, and the double-buffered rows make each diagonal pair one
    /// unaligned load at `prev + (qi-1)`.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn row_avx2(&self, x: usize, ws: &mut FwdWorkspace, xb: f32) -> f32 {
        use crate::x86::{hsum_ps, loadu_ps, loadu_ps256, shl1_ps_128, storeu_ps, storeu_ps256};
        use core::arch::x86_64::*;
        let q = self.q;
        if q < 2 {
            return self.row_sse2(x, ws, xb);
        }
        let row = self.rfv.as_ptr().add(x * q) as *const f32;
        let FwdWorkspace {
            pm,
            pi,
            pd,
            cm,
            ci,
            cd,
        } = ws;
        let pm = pm.as_ptr() as *const f32;
        let pi = pi.as_ptr() as *const f32;
        let pd = pd.as_ptr() as *const f32;
        let cm = cm.as_mut_ptr() as *mut f32;
        let ci = ci.as_mut_ptr() as *mut f32;
        let cd = cd.as_mut_ptr() as *mut f32;
        let tmm = self.tmm.as_ptr() as *const f32;
        let tim = self.tim.as_ptr() as *const f32;
        let tdm = self.tdm.as_ptr() as *const f32;
        let tmd = self.tmd.as_ptr() as *const f32;
        let tmi = self.tmi.as_ptr() as *const f32;
        let tii = self.tii.as_ptr() as *const f32;
        let bmk = self.bmk.as_ptr() as *const f32;

        let xbv = _mm256_set1_ps(xb);
        let mut acc = _mm256_setzero_ps();
        let mut acc_tail = _mm_setzero_ps();
        // Diagonal pair for (qi=0, qi=1): low = cross-lane wrap of
        // prev[q-1], high = prev[0].
        let pair0 = |p: *const f32| -> __m256 {
            _mm256_insertf128_ps::<1>(
                _mm256_castps128_ps256(shl1_ps_128(loadu_ps(p.add(4 * (q - 1))))),
                loadu_ps(p),
            )
        };
        let mut sv_carry = _mm_setzero_ps(); // M at the pair's qi-1
        for pair in 0..q / 2 {
            let qi = 2 * pair;
            let o = 4 * qi;
            let (mpv, ipv, dpv) = if qi == 0 {
                (pair0(pm), pair0(pi), pair0(pd))
            } else {
                (
                    loadu_ps256(pm.add(o - 4)),
                    loadu_ps256(pi.add(o - 4)),
                    loadu_ps256(pd.add(o - 4)),
                )
            };
            let mut sv = _mm256_mul_ps(xbv, loadu_ps256(bmk.add(o)));
            sv = _mm256_add_ps(sv, _mm256_mul_ps(mpv, loadu_ps256(tmm.add(o))));
            sv = _mm256_add_ps(sv, _mm256_mul_ps(ipv, loadu_ps256(tim.add(o))));
            sv = _mm256_add_ps(sv, _mm256_mul_ps(dpv, loadu_ps256(tdm.add(o))));
            sv = _mm256_mul_ps(sv, loadu_ps256(row.add(o)));
            acc = _mm256_add_ps(acc, sv);
            let iv = _mm256_add_ps(
                _mm256_mul_ps(loadu_ps256(pm.add(o)), loadu_ps256(tmi.add(o))),
                _mm256_mul_ps(loadu_ps256(pi.add(o)), loadu_ps256(tii.add(o))),
            );
            storeu_ps256(ci.add(o), iv);
            // M→D seed pair: [M(qi-1), M(qi)] = [carry, sv.low].
            let dseed = _mm256_insertf128_ps::<1>(
                _mm256_castps128_ps256(sv_carry),
                _mm256_castps256_ps128(sv),
            );
            storeu_ps256(cd.add(o), _mm256_mul_ps(dseed, loadu_ps256(tmd.add(o))));
            storeu_ps256(cm.add(o), sv);
            sv_carry = _mm256_extractf128_ps::<1>(sv);
        }
        if q % 2 == 1 {
            // Odd trailing vector at 128-bit; its qi = q-1 is even, so
            // it accumulates on the even (low-half) side.
            let qi = q - 1;
            let o = 4 * qi;
            let xbv1 = _mm256_castps256_ps128(xbv);
            let mut sv = _mm_mul_ps(xbv1, loadu_ps(bmk.add(o)));
            sv = _mm_add_ps(
                sv,
                _mm_mul_ps(loadu_ps(pm.add(o - 4)), loadu_ps(tmm.add(o))),
            );
            sv = _mm_add_ps(
                sv,
                _mm_mul_ps(loadu_ps(pi.add(o - 4)), loadu_ps(tim.add(o))),
            );
            sv = _mm_add_ps(
                sv,
                _mm_mul_ps(loadu_ps(pd.add(o - 4)), loadu_ps(tdm.add(o))),
            );
            sv = _mm_mul_ps(sv, loadu_ps(row.add(o)));
            acc_tail = sv;
            let iv = _mm_add_ps(
                _mm_mul_ps(loadu_ps(pm.add(o)), loadu_ps(tmi.add(o))),
                _mm_mul_ps(loadu_ps(pi.add(o)), loadu_ps(tii.add(o))),
            );
            storeu_ps(ci.add(o), iv);
            storeu_ps(cd.add(o), _mm_mul_ps(sv_carry, loadu_ps(tmd.add(o))));
            storeu_ps(cm.add(o), sv);
            sv_carry = sv;
        }
        let wrap = _mm_mul_ps(shl1_ps_128(sv_carry), loadu_ps(tmd));
        storeu_ps(cd, _mm_add_ps(loadu_ps(cd), wrap));
        self.dd_passes_x86(cd);
        // (low + tail) rebuilds the scalar even accumulator exactly
        // (same addition sequence), then the canonical reduction.
        let lo = _mm256_castps256_ps128(acc);
        let hi = _mm256_extractf128_ps::<1>(acc);
        hsum_ps(_mm_add_ps(_mm_add_ps(lo, acc_tail), hi))
    }

    /// The serial D→D resolution at 128-bit width — shared by the SSE2
    /// and AVX2 backends (and mirrored op-for-op by the scalar one) so
    /// the order-sensitive part of the row is identical everywhere.
    #[cfg(target_arch = "x86_64")]
    unsafe fn dd_passes_x86(&self, cd: *mut f32) {
        use crate::x86::{all_zero_ps, loadu_ps, shl1_ps_128, storeu_ps};
        use core::arch::x86_64::*;
        let q = self.q;
        let tdd = self.tdd.as_ptr() as *const f32;
        let mut dprev = _mm_setzero_ps();
        for qi in 0..q {
            let o = 4 * qi;
            let v = _mm_add_ps(loadu_ps(cd.add(o)), _mm_mul_ps(dprev, loadu_ps(tdd.add(o))));
            storeu_ps(cd.add(o), v);
            dprev = v;
        }
        let mut carry = shl1_ps_128(dprev);
        for _ in 1..FWD_LANES {
            let mut corr = _mm_mul_ps(carry, loadu_ps(tdd));
            if all_zero_ps(corr) {
                break;
            }
            storeu_ps(cd, _mm_add_ps(loadu_ps(cd), corr));
            for qi in 1..q {
                let o = 4 * qi;
                corr = _mm_mul_ps(corr, loadu_ps(tdd.add(o)));
                storeu_ps(cd.add(o), _mm_add_ps(loadu_ps(cd.add(o)), corr));
            }
            carry = shl1_ps_128(corr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::forward_generic;
    use h3w_hmm::background::NullModel;
    use h3w_hmm::build::{synthetic_model, BuildParams};
    use h3w_hmm::calibrate::random_seq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn profile(m: usize, seed: u64) -> Profile {
        let bg = NullModel::new();
        Profile::config(&synthetic_model(m, seed, &BuildParams::default()), &bg)
    }

    #[test]
    fn stripe_geometry() {
        for (m, q) in [(1usize, 1usize), (4, 1), (5, 2), (8, 2), (9, 3), (130, 33)] {
            let p = profile(m, 3);
            let f = StripedFwd::new(&p);
            assert_eq!(f.q, q, "m={m}");
            assert_eq!(f.real_cells_per_row(), 3 * m as u64);
            assert_eq!(f.padded_cells_per_row(), (3 * 4 * q) as u64);
        }
    }

    #[test]
    fn matches_generic_forward_over_sizes() {
        let mut rng = StdRng::seed_from_u64(11);
        for m in [1usize, 5, 7, 8, 9, 15, 16, 17, 33, 64, 130] {
            let p = profile(m, m as u64);
            let f = StripedFwd::new(&p);
            for len in [1usize, 3, 40, 300] {
                let seq = random_seq(&mut rng, len);
                let exact = forward_generic(&p, &seq);
                let striped = f.run(&p, &seq);
                // The gap here is the *generic* side's flogsum table
                // bias (measured envelope ≈ 0.01 + 0.012·ln(1+L) nats,
                // growing with every row's specials updates); the
                // striped path itself tracks an exact log-sum-exp
                // Forward to < 1e-3 nats — see tests/fwd_equivalence.rs.
                let budget = 0.012 + 0.014 * (1.0 + len as f32).ln();
                assert!(
                    (exact - striped).abs() < budget,
                    "m={m} len={len}: generic {exact} vs striped {striped}"
                );
            }
        }
    }

    #[test]
    fn bit_identical_across_backends() {
        let mut rng = StdRng::seed_from_u64(12);
        for m in [1usize, 7, 9, 33, 130] {
            let p = profile(m, 100 + m as u64);
            let base = StripedFwd::with_backend(&p, Backend::Scalar);
            for len in [0usize, 1, 9, 250] {
                let seq = random_seq(&mut rng, len);
                let want = base.run(&p, &seq);
                for backend in Backend::all_available() {
                    let f = StripedFwd::with_backend(&p, backend);
                    let got = f.run(&p, &seq);
                    assert_eq!(
                        want.to_bits(),
                        got.to_bits(),
                        "m={m} len={len} backend={backend}: {want} vs {got}"
                    );
                }
            }
        }
    }

    #[test]
    fn rescaling_regime_is_bit_identical_and_finite() {
        // A long tandem homolog drives odds through many rescales.
        let bg = NullModel::new();
        let core = synthetic_model(40, 21, &BuildParams::default());
        let p = Profile::config(&core, &bg);
        let mut rng = StdRng::seed_from_u64(22);
        let mut seq = Vec::new();
        for _ in 0..40 {
            seq.extend(h3w_seqdb::gen::sample_homolog(&mut rng, &core, 3));
        }
        let base = StripedFwd::with_backend(&p, Backend::Scalar);
        let want = base.run(&p, &seq);
        assert!(want.is_finite() && want > 100.0, "tandem score {want}");
        let exact = forward_generic(&p, &seq);
        assert!(
            (exact - want).abs() < 0.05 + 2e-4 * seq.len() as f32,
            "generic {exact} vs striped {want} over {} residues",
            seq.len()
        );
        for backend in Backend::all_available() {
            let f = StripedFwd::with_backend(&p, backend);
            assert_eq!(f.run(&p, &seq).to_bits(), want.to_bits(), "{backend}");
        }
    }

    #[test]
    fn empty_sequence_is_neg_inf() {
        let p = profile(12, 5);
        let f = StripedFwd::new(&p);
        assert_eq!(f.run(&p, &[]), NEG_INF);
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let p = profile(19, 6);
        let f = StripedFwd::new(&p);
        let mut rng = StdRng::seed_from_u64(7);
        let seqs: Vec<Vec<u8>> = (0..6).map(|i| random_seq(&mut rng, 17 + i * 31)).collect();
        let mut ws = FwdWorkspace::default();
        let fresh: Vec<f32> = seqs.iter().map(|s| f.run(&p, s)).collect();
        // Long → short → long reuse must not leak state between runs.
        for (i, s) in seqs.iter().enumerate().rev() {
            assert_eq!(f.run_into(&p, s, &mut ws).to_bits(), fresh[i].to_bits());
        }
    }

    #[test]
    fn batch_widths_are_bit_identical() {
        let p = profile(27, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let seqs: Vec<Vec<u8>> = (0..8)
            .map(|i| random_seq(&mut rng, [0usize, 5, 60, 61, 200, 10, 33, 100][i]))
            .collect();
        for backend in Backend::all_available() {
            let f = StripedFwd::with_backend(&p, backend);
            let single: Vec<f32> = seqs.iter().map(|s| f.run(&p, s)).collect();
            let mut ws = FwdBatchWorkspace::default();
            for width in 1..=MAX_BATCH {
                for chunk in seqs.chunks(width) {
                    let refs: Vec<&[u8]> = chunk.iter().map(|s| s.as_slice()).collect();
                    let mut out = vec![0f32; refs.len()];
                    f.run_batch_into(&p, &refs, &mut ws, &mut out);
                    for (s, got) in chunk.iter().zip(&out) {
                        let want =
                            single[seqs.iter().position(|t| t.as_ptr() == s.as_ptr()).unwrap()];
                        assert_eq!(want.to_bits(), got.to_bits(), "{backend} width {width}");
                    }
                }
            }
        }
    }

    #[test]
    fn recording_matches_run_and_indexes_correctly() {
        let p = profile(21, 10);
        let f = StripedFwd::new(&p);
        let mut rng = StdRng::seed_from_u64(13);
        let seq = random_seq(&mut rng, 75);
        let mut ws = FwdWorkspace::default();
        let mat = f.run_recording(&p, &seq, &mut ws);
        assert_eq!(mat.total.to_bits(), f.run(&p, &seq).to_bits());
        assert_eq!((mat.l, mat.m, mat.q), (75, 21, f.q));
        // Row 1 M values must equal the first-row recurrence directly:
        // M(1,k) = xB(0)·bmk[k]·emis, everything else zero.
        let xs = p.specials_for(seq.len());
        let xb0 = xs.move_sc;
        for k in 1..=p.m {
            let want = xb0 + p.bmk[k] + p.msc[k][seq[0] as usize];
            let got = mat.m_log(1, k);
            assert!(
                (want - got).abs() < 1e-4 || (want == NEG_INF && got == NEG_INF),
                "k={k}: {want} vs {got}"
            );
            // I on row 1 needs an M on row 0: impossible.
            if k < p.m {
                assert_eq!(mat.i_odds(1, k), 0.0);
            }
        }
    }
}
