//! Runtime SIMD backend selection for the striped filters.
//!
//! The striped MSV and Viterbi filters have three interchangeable
//! implementations of their inner row loop:
//!
//! * **Scalar** — the portable emulated-lane reference in [`crate::simd`]
//!   (fixed-size-array loops the compiler may auto-vectorize).
//! * **SSE2** — real `core::arch` 128-bit intrinsics over the *same*
//!   16 × u8 / 8 × i16 striped layout.
//! * **AVX2** — 256-bit intrinsics over a *re-striped* layout with
//!   32 × u8 / 16 × i16 lanes (`Q = ⌈M/32⌉` byte vectors, `⌈M/16⌉` word
//!   vectors).
//!
//! All three produce bit-identical scores: the per-cell recurrence uses
//! only saturating adds and maxes whose results do not depend on the
//! striping geometry, and the Lazy-F loop converges to the same fixed
//! point regardless of lane count. The best available backend is chosen
//! once (at `Pipeline::prepare` via [`Backend::detect`]) and cached.

use std::sync::OnceLock;

/// Which vector implementation drives the striped filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Portable emulated lanes (reference semantics, any architecture).
    Scalar,
    /// 128-bit `core::arch` intrinsics, 16 u8 / 8 i16 lanes.
    Sse2,
    /// 256-bit `core::arch` intrinsics, 32 u8 / 16 i16 lanes.
    Avx2,
}

impl Backend {
    /// Stable lowercase name (used in bench artifacts and the
    /// `H3W_SIMD_BACKEND` override).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
        }
    }

    /// Parse an override name.
    pub fn from_name(name: &str) -> Option<Backend> {
        match name.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Backend::Scalar),
            "sse2" => Some(Backend::Sse2),
            "avx2" => Some(Backend::Avx2),
            _ => None,
        }
    }

    /// Whether this backend can run on the current CPU.
    pub fn available(self) -> bool {
        match self {
            Backend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Sse2 => true, // baseline of the x86_64 ABI
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// Every backend the current CPU can run, scalar first.
    pub fn all_available() -> Vec<Backend> {
        [Backend::Scalar, Backend::Sse2, Backend::Avx2]
            .into_iter()
            .filter(|b| b.available())
            .collect()
    }

    /// The backend the striped filters should use: the
    /// `H3W_SIMD_BACKEND=scalar|sse2|avx2` override when set *and*
    /// runnable, otherwise the widest available. Detection runs once per
    /// process and is cached.
    pub fn detect() -> Backend {
        static CHOSEN: OnceLock<Backend> = OnceLock::new();
        *CHOSEN.get_or_init(|| {
            if let Ok(v) = std::env::var("H3W_SIMD_BACKEND") {
                match Backend::from_name(&v) {
                    Some(b) if b.available() => return b,
                    Some(b) => eprintln!(
                        "H3W_SIMD_BACKEND={} requested but {} is unavailable on this CPU; \
                         falling back to auto-detection",
                        v,
                        b.name()
                    ),
                    None => {
                        eprintln!("H3W_SIMD_BACKEND={v} is not one of scalar|sse2|avx2; ignoring")
                    }
                }
            }
            Backend::best_available()
        })
    }

    /// The widest backend the CPU supports (ignores the env override).
    pub fn best_available() -> Backend {
        *Backend::all_available().last().unwrap_or(&Backend::Scalar)
    }

    /// How many sequences the batched filter kernels should interleave on
    /// this backend (see [`crate::batch`]). The real SIMD backends want
    /// four independent dependency chains to cover the per-row broadcast
    /// latency; the emulated scalar backend spills past two (each emulated
    /// vector is itself 16 registers wide), so it stops there.
    pub fn preferred_batch_width(self) -> usize {
        match self {
            Backend::Scalar => 2,
            Backend::Sse2 | Backend::Avx2 => 4,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_available() {
        assert!(Backend::Scalar.available());
        assert!(Backend::all_available().contains(&Backend::Scalar));
    }

    #[test]
    fn names_round_trip() {
        for b in [Backend::Scalar, Backend::Sse2, Backend::Avx2] {
            assert_eq!(Backend::from_name(b.name()), Some(b));
        }
        assert_eq!(Backend::from_name("AVX2"), Some(Backend::Avx2));
        assert_eq!(Backend::from_name("neon"), None);
    }

    #[test]
    fn detect_is_stable_and_available() {
        let a = Backend::detect();
        let b = Backend::detect();
        assert_eq!(a, b);
        assert!(a.available());
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse2_is_baseline_on_x86_64() {
        assert!(Backend::Sse2.available());
    }
}
