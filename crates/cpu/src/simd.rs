//! Emulated 128-bit SIMD lane operations.
//!
//! HMMER 3.0's production filters use SSE2 intrinsics (`_mm_max_epu8`,
//! `_mm_adds_epi16`, `_mm_slli_si128`, …). Stable Rust has no portable
//! SIMD, so these fixed-size-array kernels reproduce the exact lane
//! semantics; the loops are trivially auto-vectorizable (all `#[inline]`,
//! no branches), which is what the quoted "16-fold speedup on a commodity
//! processor" (§I) rests on.

/// 16 × u8 vector (one SSE register of byte scores).
pub type V16u8 = [u8; 16];
/// 8 × i16 vector (one SSE register of word scores).
pub type V8i16 = [i16; 8];
/// 4 × f32 vector (one SSE register of odds-space Forward values).
pub type V4f32 = [f32; 4];

/// A 16-byte-aligned byte vector for 128-bit emission tables and DP rows.
///
/// `Vec<[u8; 16]>` has alignment 1, so a 16-byte SSE2 row load from it can
/// straddle a cache line (a split load costs an extra cycle and a second
/// fill buffer on every row of every sequence). Pinning rows to their
/// natural alignment removes the split — the 128-bit sibling of
/// [`ByteRow32`](crate::x86::ByteRow32).
#[repr(C, align(16))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteRow16(pub [u8; 16]);

impl ByteRow16 {
    /// The all-zero row (the DP floor).
    pub const ZERO: ByteRow16 = ByteRow16([0u8; 16]);
}

/// Broadcast a byte to all lanes (`_mm_set1_epi8`).
#[inline(always)]
pub fn splat_u8(v: u8) -> V16u8 {
    [v; 16]
}

/// Broadcast a word to all lanes (`_mm_set1_epi16`).
#[inline(always)]
pub fn splat_i16(v: i16) -> V8i16 {
    [v; 8]
}

/// Lane-wise unsigned max (`_mm_max_epu8`).
#[inline(always)]
pub fn max_u8(a: V16u8, b: V16u8) -> V16u8 {
    let mut r = [0u8; 16];
    for i in 0..16 {
        r[i] = a[i].max(b[i]);
    }
    r
}

/// Lane-wise unsigned minimum (`_mm_min_epu8`).
#[inline(always)]
pub fn min_u8(a: V16u8, b: V16u8) -> V16u8 {
    let mut r = [0u8; 16];
    for i in 0..16 {
        r[i] = a[i].min(b[i]);
    }
    r
}

/// Lane-wise saturating add (`_mm_adds_epu8`).
#[inline(always)]
pub fn adds_u8(a: V16u8, b: V16u8) -> V16u8 {
    let mut r = [0u8; 16];
    for i in 0..16 {
        r[i] = a[i].saturating_add(b[i]);
    }
    r
}

/// Lane-wise saturating subtract (`_mm_subs_epu8`).
#[inline(always)]
pub fn subs_u8(a: V16u8, b: V16u8) -> V16u8 {
    let mut r = [0u8; 16];
    for i in 0..16 {
        r[i] = a[i].saturating_sub(b[i]);
    }
    r
}

/// Horizontal max over all 16 lanes (HMMER's `esl_sse_hmax_epu8`).
#[inline(always)]
pub fn hmax_u8(a: V16u8) -> u8 {
    let mut m = a[0];
    for &v in &a[1..] {
        m = m.max(v);
    }
    m
}

/// Shift lanes up by one, injecting `fill` into lane 0
/// (`_mm_slli_si128(v, 1)` for the striped diagonal move).
#[inline(always)]
pub fn shift_u8(a: V16u8, fill: u8) -> V16u8 {
    let mut r = [fill; 16];
    r[1..16].copy_from_slice(&a[0..15]);
    r
}

/// Lane-wise signed max (`_mm_max_epi16`).
#[inline(always)]
pub fn max_i16(a: V8i16, b: V8i16) -> V8i16 {
    let mut r = [0i16; 8];
    for i in 0..8 {
        r[i] = a[i].max(b[i]);
    }
    r
}

/// Lane-wise saturating signed add (`_mm_adds_epi16`).
#[inline(always)]
pub fn adds_i16(a: V8i16, b: V8i16) -> V8i16 {
    let mut r = [0i16; 8];
    for i in 0..8 {
        r[i] = a[i].saturating_add(b[i]);
    }
    r
}

/// Horizontal max over all 8 lanes (`esl_sse_hmax_epi16`).
#[inline(always)]
pub fn hmax_i16(a: V8i16) -> i16 {
    let mut m = a[0];
    for &v in &a[1..] {
        m = m.max(v);
    }
    m
}

/// Shift lanes up by one, injecting `fill` into lane 0
/// (`_mm_slli_si128(v, 2)` for word vectors).
#[inline(always)]
pub fn shift_i16(a: V8i16, fill: i16) -> V8i16 {
    let mut r = [fill; 8];
    r[1..8].copy_from_slice(&a[0..7]);
    r
}

/// Broadcast a float to all lanes (`_mm_set1_ps`).
#[inline(always)]
pub fn splat_f32(v: f32) -> V4f32 {
    [v; 4]
}

/// Lane-wise float add (`_mm_add_ps`).
#[inline(always)]
pub fn add_f32(a: V4f32, b: V4f32) -> V4f32 {
    let mut r = [0.0f32; 4];
    for i in 0..4 {
        r[i] = a[i] + b[i];
    }
    r
}

/// Lane-wise float multiply (`_mm_mul_ps`).
#[inline(always)]
pub fn mul_f32(a: V4f32, b: V4f32) -> V4f32 {
    let mut r = [0.0f32; 4];
    for i in 0..4 {
        r[i] = a[i] * b[i];
    }
    r
}

/// Shift float lanes up by one, injecting `fill` into lane 0
/// (`_mm_slli_si128(v, 4)` on the float bits; `fill = 0.0` is the
/// odds-space −∞ for the striped Forward diagonal move).
#[inline(always)]
pub fn shift_f32(a: V4f32, fill: f32) -> V4f32 {
    [fill, a[0], a[1], a[2]]
}

/// Horizontal sum with the canonical tree `(v0 + v2) + (v1 + v3)` — the
/// order a `movehl`/`shufps` SSE reduction produces, so the scalar and
/// intrinsic backends reduce bit-identically.
#[inline(always)]
pub fn hsum_f32(a: V4f32) -> f32 {
    (a[0] + a[2]) + (a[1] + a[3])
}

/// Are all four float lanes exactly `0.0`? (`_mm_movemask_ps` of a
/// `cmpneq` against zero) — the striped Forward D→D carry-pass early exit.
#[inline(always)]
pub fn all_zero_f32(a: V4f32) -> bool {
    a[0] == 0.0 && a[1] == 0.0 && a[2] == 0.0 && a[3] == 0.0
}

/// Lane-wise "any greater than" test (`_mm_movemask` of a compare) —
/// the Lazy-F loop's continuation condition.
#[inline(always)]
pub fn any_gt_i16(a: V8i16, b: V8i16) -> bool {
    for i in 0..8 {
        if a[i] > b[i] {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u8_ops_lanewise() {
        let a: V16u8 = core::array::from_fn(|i| i as u8 * 10);
        let b = splat_u8(100);
        let m = max_u8(a, b);
        assert_eq!(m[0], 100);
        assert_eq!(m[15], 150);
        let s = adds_u8(a, b);
        assert_eq!(s[15], 250);
        assert_eq!(adds_u8(splat_u8(200), splat_u8(200))[3], 255);
        assert_eq!(subs_u8(splat_u8(10), splat_u8(30))[0], 0);
    }

    #[test]
    fn u8_hmax_and_shift() {
        let a: V16u8 = core::array::from_fn(|i| (i * 7 % 13) as u8);
        assert_eq!(hmax_u8(a), *a.iter().max().unwrap());
        let sh = shift_u8(a, 9);
        assert_eq!(sh[0], 9);
        for i in 1..16 {
            assert_eq!(sh[i], a[i - 1]);
        }
    }

    #[test]
    fn i16_ops_lanewise() {
        let a: V8i16 = core::array::from_fn(|i| i as i16 * 1000 - 3000);
        let b = splat_i16(-500);
        assert_eq!(max_i16(a, b)[0], -500);
        assert_eq!(max_i16(a, b)[7], 4000);
        assert_eq!(adds_i16(splat_i16(i16::MIN), splat_i16(-10))[0], i16::MIN);
        assert_eq!(adds_i16(splat_i16(30000), splat_i16(10000))[0], i16::MAX);
    }

    #[test]
    fn f32_ops_lanewise() {
        let a: V4f32 = [1.0, 2.0, 3.0, 4.0];
        let b = splat_f32(0.5);
        assert_eq!(add_f32(a, b), [1.5, 2.5, 3.5, 4.5]);
        assert_eq!(mul_f32(a, b), [0.5, 1.0, 1.5, 2.0]);
        assert_eq!(shift_f32(a, 0.0), [0.0, 1.0, 2.0, 3.0]);
        assert_eq!(hsum_f32(a), (1.0 + 3.0) + (2.0 + 4.0));
        assert!(all_zero_f32([0.0; 4]));
        assert!(!all_zero_f32([0.0, 0.0, 1.0e-30, 0.0]));
    }

    #[test]
    fn i16_hmax_shift_any_gt() {
        let a: V8i16 = [3, -5, 100, 7, 7, -32768, 0, 99];
        assert_eq!(hmax_i16(a), 100);
        let sh = shift_i16(a, i16::MIN);
        assert_eq!(sh[0], i16::MIN);
        assert_eq!(sh[1], 3);
        assert_eq!(sh[7], 0);
        assert!(any_gt_i16(a, splat_i16(99)));
        assert!(!any_gt_i16(a, splat_i16(100)));
    }
}
