//! Parallel database sweeps — the multi-core CPU baseline.
//!
//! The paper's speedups are measured against "HMMER 3.0 utilizing
//! multi-core and SSE capabilities on Intel Core i5 quad core" (§IV).
//! This module is that baseline: the striped filters fanned across a Rayon
//! pool (one task per sequence, work-stealing handles the length skew),
//! with measured cell throughput for the analytic speedup model.

use crate::quantized::{MsvOutcome, VitOutcome};
use crate::striped_msv::StripedMsv;
use crate::striped_vit::{LazyFStats, StripedVit, VitWorkspace};
use h3w_hmm::msvprofile::MsvProfile;
use h3w_hmm::vitprofile::VitProfile;
use h3w_seqdb::SeqDb;
use rayon::prelude::*;
use std::time::Instant;

/// Measured throughput of one sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepTiming {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// DP cells processed (model length × total residues; real cells, not
    /// counting striping phantoms).
    pub cells: u64,
    /// Cells per second.
    pub cells_per_sec: f64,
}

fn timing(seconds: f64, cells: u64) -> SweepTiming {
    SweepTiming {
        seconds,
        cells,
        cells_per_sec: if seconds > 0.0 {
            cells as f64 / seconds
        } else {
            0.0
        },
    }
}

/// MSV-filter every sequence of a database in parallel.
pub fn msv_sweep(om: &MsvProfile, db: &SeqDb) -> (Vec<MsvOutcome>, SweepTiming) {
    let striped = StripedMsv::new(om);
    let start = Instant::now();
    let outcomes: Vec<MsvOutcome> = db
        .seqs
        .par_iter()
        .map_init(Vec::new, |dp, seq| striped.run_into(om, &seq.residues, dp))
        .collect();
    let secs = start.elapsed().as_secs_f64();
    (outcomes, timing(secs, om.m as u64 * db.total_residues()))
}

/// Viterbi-filter every sequence of a database in parallel.
pub fn vit_sweep(om: &VitProfile, db: &SeqDb) -> (Vec<VitOutcome>, SweepTiming, LazyFStats) {
    let striped = StripedVit::new(om);
    let start = Instant::now();
    let results: Vec<(VitOutcome, LazyFStats)> = db
        .seqs
        .par_iter()
        .map_init(VitWorkspace::default, |ws, seq| {
            striped.run_into(om, &seq.residues, ws)
        })
        .collect();
    let secs = start.elapsed().as_secs_f64();
    let mut agg = LazyFStats::default();
    let mut outcomes = Vec::with_capacity(results.len());
    for (out, st) in results {
        outcomes.push(out);
        agg.rows += st.rows;
        agg.total_passes += st.total_passes;
        agg.rows_extra += st.rows_extra;
        agg.max_passes = agg.max_passes.max(st.max_passes);
    }
    // 3 states per cell.
    (
        outcomes,
        timing(secs, 3 * om.m as u64 * db.total_residues()),
        agg,
    )
}

/// Viterbi-filter only the subset of sequences selected by `mask`
/// (the post-MSV survivors in the pipeline).
pub fn vit_sweep_masked(
    om: &VitProfile,
    db: &SeqDb,
    mask: &[bool],
) -> (Vec<Option<VitOutcome>>, SweepTiming) {
    assert_eq!(mask.len(), db.len());
    let striped = StripedVit::new(om);
    let start = Instant::now();
    let outcomes: Vec<Option<VitOutcome>> = db
        .seqs
        .par_iter()
        .zip(mask.par_iter())
        .map_init(VitWorkspace::default, |ws, (seq, &keep)| {
            keep.then(|| striped.run_into(om, &seq.residues, ws).0)
        })
        .collect();
    let secs = start.elapsed().as_secs_f64();
    let cells: u64 = db
        .seqs
        .iter()
        .zip(mask)
        .filter(|&(_, &keep)| keep)
        .map(|(s, _)| 3 * om.m as u64 * s.len() as u64)
        .sum();
    (outcomes, timing(secs, cells))
}

/// Measure single-thread striped-MSV throughput (cells/s) on a sample —
/// the calibration input for the analytic CPU-side time model.
pub fn measure_msv_throughput(om: &MsvProfile, db: &SeqDb, max_seqs: usize) -> SweepTiming {
    let striped = StripedMsv::new(om);
    let mut dp = Vec::new();
    let take = db.seqs.iter().take(max_seqs);
    let mut cells = 0u64;
    let start = Instant::now();
    for seq in take {
        std::hint::black_box(striped.run_into(om, &seq.residues, &mut dp));
        cells += om.m as u64 * seq.len() as u64;
    }
    timing(start.elapsed().as_secs_f64(), cells)
}

/// Measure single-thread striped-Viterbi throughput (cells/s) on a sample.
pub fn measure_vit_throughput(om: &VitProfile, db: &SeqDb, max_seqs: usize) -> SweepTiming {
    let striped = StripedVit::new(om);
    let mut ws = VitWorkspace::default();
    let mut cells = 0u64;
    let start = Instant::now();
    for seq in db.seqs.iter().take(max_seqs) {
        std::hint::black_box(striped.run_into(om, &seq.residues, &mut ws));
        cells += 3 * om.m as u64 * seq.len() as u64;
    }
    timing(start.elapsed().as_secs_f64(), cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantized::{msv_filter_scalar, vit_filter_scalar};
    use h3w_hmm::background::NullModel;
    use h3w_hmm::build::{synthetic_model, BuildParams};
    use h3w_hmm::profile::Profile;
    use h3w_seqdb::gen::{generate, DbGenSpec};

    fn setup() -> (MsvProfile, VitProfile, SeqDb) {
        let bg = NullModel::new();
        let core = synthetic_model(40, 17, &BuildParams::default());
        let p = Profile::config(&core, &bg);
        let mut spec = DbGenSpec::swissprot_like().scaled(0.0002); // ~92 seqs
        spec.homolog_fraction = 0.1;
        let db = generate(&spec, Some(&core), 5);
        (
            MsvProfile::from_profile(&p),
            VitProfile::from_profile(&p),
            db,
        )
    }

    #[test]
    fn parallel_sweep_matches_serial_scalar() {
        let (msv, vit, db) = setup();
        let (m_out, m_t) = msv_sweep(&msv, &db);
        let (v_out, _, _) = vit_sweep(&vit, &db);
        assert_eq!(m_out.len(), db.len());
        assert_eq!(v_out.len(), db.len());
        for (i, seq) in db.seqs.iter().enumerate() {
            assert_eq!(m_out[i], msv_filter_scalar(&msv, &seq.residues), "seq {i}");
            assert_eq!(v_out[i], vit_filter_scalar(&vit, &seq.residues), "seq {i}");
        }
        assert_eq!(m_t.cells, 40 * db.total_residues());
        assert!(m_t.cells_per_sec > 0.0);
    }

    #[test]
    fn masked_sweep_skips_unselected() {
        let (_, vit, db) = setup();
        let mut mask = vec![false; db.len()];
        mask[0] = true;
        mask[db.len() - 1] = true;
        let (out, t) = vit_sweep_masked(&vit, &db, &mask);
        assert!(out[0].is_some());
        assert!(out[1].is_none());
        assert!(out[db.len() - 1].is_some());
        let expect_cells = 3 * 40 * (db.seqs[0].len() as u64 + db.seqs[db.len() - 1].len() as u64);
        assert_eq!(t.cells, expect_cells);
    }

    #[test]
    fn throughput_measurement_sane() {
        let (msv, vit, db) = setup();
        let tm = measure_msv_throughput(&msv, &db, 50);
        let tv = measure_vit_throughput(&vit, &db, 50);
        assert!(
            tm.cells_per_sec > 1e6,
            "MSV throughput {}",
            tm.cells_per_sec
        );
        assert!(
            tv.cells_per_sec > 1e6,
            "Vit throughput {}",
            tv.cells_per_sec
        );
        // Per-cell, Viterbi does ≫ more work than MSV; with the 3× cell
        // accounting they land within an order of magnitude.
        assert!(tm.cells_per_sec > tv.cells_per_sec / 10.0);
    }
}
