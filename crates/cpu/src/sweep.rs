//! Parallel database sweeps — the multi-core CPU baseline.
//!
//! The paper's speedups are measured against "HMMER 3.0 utilizing
//! multi-core and SSE capabilities on Intel Core i5 quad core" (§IV).
//! This module is that baseline: the striped filters fanned across the
//! [`h3w_pool`] work-stealing pool, with measured cell throughput for the
//! analytic speedup model.
//!
//! Two sweep shapes exist for the byte filters:
//!
//! * **one task per sequence** ([`msv_sweep`]) — work-stealing handles the
//!   length skew;
//! * **one task per batch** ([`msv_sweep_batched`], [`ssv_sweep_batched`])
//!   — the [length-binned scheduler](length_binned_batches) groups
//!   near-equal-length sequences into batches of `S` and the interleaved
//!   kernels in [`crate::batch`] score each batch in one fused loop,
//!   hiding the per-row reduction latency behind `S` independent chains.
//!
//! Both produce bit-identical outcomes; the batched shape is faster
//! because the single-sequence row loop is latency-bound (see
//! [`crate::batch`]).
//!
//! Every sweep takes the [`ThreadPool`] to fan out on. Each parallel item
//! (a batch, or a sequence) writes its result into the slot indexed by
//! its original position, so outcomes are **bit-identical at every thread
//! count**; per-worker workspace arenas are created lazily once per
//! worker (the `map_collect_init` scratch pattern), so the steady-state
//! hot loop still performs no allocation.

use crate::backend::Backend;
use crate::batch::{BatchWorkspace, MAX_BATCH};
use crate::quantized::{MsvOutcome, VitOutcome};
use crate::ssv::StripedSsv;
use crate::striped_fwd::{FwdBatchWorkspace, StripedFwd};
use crate::striped_msv::StripedMsv;
use crate::striped_vit::{LazyFStats, StripedVit, VitWorkspace};
use h3w_hmm::alphabet::Residue;
use h3w_hmm::msvprofile::MsvProfile;
use h3w_hmm::profile::Profile;
use h3w_hmm::vitprofile::VitProfile;
use h3w_pool::ThreadPool;
use h3w_seqdb::{DigitalSeq, SeqDb};
use std::time::Instant;

/// Measured throughput of one sweep, with **both** cell denominators kept
/// explicit so calibration and bench numbers can never silently mix them:
///
/// * `real_cells` — meaningful DP cells (model length × residues swept,
///   ×3 states for Viterbi), the denominator database-level numbers are
///   reported in;
/// * `padded_cells` — cells the hardware actually computed
///   (`lanes · Q` per row, including striping phantoms), the denominator
///   for calibrating an analytic kernel-time model.
#[derive(Debug, Clone, Copy)]
pub struct SweepTiming {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Meaningful DP cells processed (no striping phantoms).
    pub real_cells: u64,
    /// DP cells computed including striping phantoms.
    pub padded_cells: u64,
    /// `real_cells / seconds` — the headline throughput number.
    pub cells_per_sec: f64,
}

impl SweepTiming {
    /// `padded_cells / seconds` — hardware-work throughput, for kernel
    /// calibration only.
    pub fn padded_cells_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.padded_cells as f64 / self.seconds
        } else {
            0.0
        }
    }
}

fn timing(seconds: f64, real_cells: u64, padded_cells: u64) -> SweepTiming {
    SweepTiming {
        seconds,
        real_cells,
        padded_cells,
        cells_per_sec: if seconds > 0.0 {
            real_cells as f64 / seconds
        } else {
            0.0
        },
    }
}

/// Batch-schedule accounting derived *after* a sweep from the same
/// length-binned schedule the sweep used — an O(n) pass over the
/// sequence lengths, so nothing is ever counted inside the fused row
/// loop (the telemetry overhead budget lives and dies on that).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchScheduleStats {
    /// Interleave width the schedule was built for.
    pub width: usize,
    /// Batches scheduled.
    pub batches: u64,
    /// Sequences scheduled into slots.
    pub seqs: u64,
    /// Real slot rows: the sum of member lengths (each slot retires after
    /// its own sequence ends).
    pub slot_rows: u64,
    /// Fused-loop trips: the sum of per-batch maximum lengths.
    pub loop_rows: u64,
    /// Slots that retire early (their sequence is shorter than the
    /// batch's longest) — the length-binning dropout the scheduler
    /// minimizes.
    pub early_finish: u64,
}

impl BatchScheduleStats {
    /// Fraction of slot-rows the fused loop spends on real sequence data:
    /// `slot_rows / (loop_rows × width)`. 1.0 means every slot is busy on
    /// every trip.
    pub fn occupancy(&self) -> f64 {
        let capacity = self.loop_rows.saturating_mul(self.width as u64);
        if capacity == 0 {
            0.0
        } else {
            self.slot_rows as f64 / capacity as f64
        }
    }
}

/// Compute [`BatchScheduleStats`] for the schedule
/// [`length_binned_batches`] builds over the same `(lens, mask, width)`.
pub fn batch_schedule_stats(
    lens: &[usize],
    mask: Option<&[bool]>,
    width: usize,
) -> BatchScheduleStats {
    let width = width.clamp(1, MAX_BATCH);
    let batches = length_binned_batches(lens, mask, width);
    let mut stats = BatchScheduleStats {
        width,
        batches: batches.len() as u64,
        ..BatchScheduleStats::default()
    };
    for batch in &batches {
        let longest = batch.iter().map(|&i| lens[i]).max().unwrap_or(0);
        stats.loop_rows += longest as u64;
        for &i in batch {
            stats.seqs += 1;
            stats.slot_rows += lens[i] as u64;
            if lens[i] < longest {
                stats.early_finish += 1;
            }
        }
    }
    stats
}

/// Record a measured sweep into a telemetry trace at `path`: both cell
/// denominators as counters, the wall time as span seconds. This is how
/// the bench throughput bins emit from telemetry instead of carrying
/// ad-hoc stopwatch structs around.
pub fn record_sweep(trace: &h3w_trace::Trace, path: &str, timing: &SweepTiming) {
    if !trace.is_on() {
        return;
    }
    trace.add(path, "real_cells", timing.real_cells);
    trace.add(path, "padded_cells", timing.padded_cells);
    trace.add_secs(path, timing.seconds);
}

/// Resolve a requested batch width: `0` means "auto" (the backend's
/// preferred interleave), anything else is clamped to
/// `1..=`[`MAX_BATCH`].
pub fn resolve_batch_width(backend: Backend, requested: usize) -> usize {
    if requested == 0 {
        backend.preferred_batch_width()
    } else {
        requested.clamp(1, MAX_BATCH)
    }
}

/// The length-binned batch schedule: indices of the selected sequences
/// (all of them, or `mask`-selected survivors), sorted by descending
/// length and chunked into batches of `width`.
///
/// Sorting is what makes interleaving pay: batch members enter the fused
/// loop near-lockstep, so almost no rows run below full width. Descending
/// order also hands the thread pool the long batches first, shrinking the
/// work-stealing tail. Callers scatter outcomes back through the returned
/// indices, so output order is unaffected.
pub fn length_binned_batches(
    lens: &[usize],
    mask: Option<&[bool]>,
    width: usize,
) -> Vec<Vec<usize>> {
    let width = width.clamp(1, MAX_BATCH);
    let mut idx: Vec<usize> = match mask {
        Some(m) => {
            assert_eq!(m.len(), lens.len());
            (0..lens.len()).filter(|&i| m[i]).collect()
        }
        None => (0..lens.len()).collect(),
    };
    idx.sort_by_key(|&i| std::cmp::Reverse(lens[i]));
    idx.chunks(width).map(|c| c.to_vec()).collect()
}

const ZERO_OUTCOME: MsvOutcome = MsvOutcome {
    xj: 0,
    overflow: false,
    score: 0.0,
};

/// Shared batched-sweep driver: schedule, score batches across the pool
/// (workers steal whole batches), scatter back to original order. The
/// per-batch sequence refs and outcomes live in fixed [`MAX_BATCH`]
/// arrays — a worker's only heap state is its lazily-created workspace
/// arena, so the steady-state hot loop performs no allocation at all.
fn sweep_batched_with<F>(
    pool: &ThreadPool,
    run_batch: &F,
    seqs: &[DigitalSeq],
    mask: Option<&[bool]>,
    width: usize,
) -> Vec<Option<MsvOutcome>>
where
    F: Fn(&[&[Residue]], &mut BatchWorkspace, &mut [MsvOutcome]) + Sync,
{
    let lens: Vec<usize> = seqs.iter().map(|s| s.len()).collect();
    let batches = length_binned_batches(&lens, mask, width);
    let scored: Vec<[MsvOutcome; MAX_BATCH]> =
        pool.map_collect_init(batches.len(), BatchWorkspace::default, |ws, b| {
            let batch = &batches[b];
            let mut refs: [&[Residue]; MAX_BATCH] = [&[]; MAX_BATCH];
            for (r, &i) in refs.iter_mut().zip(batch.iter()) {
                *r = &seqs[i].residues;
            }
            let mut out = [ZERO_OUTCOME; MAX_BATCH];
            run_batch(&refs[..batch.len()], ws, &mut out[..batch.len()]);
            out
        });
    let mut result = vec![None; seqs.len()];
    for (batch, outs) in batches.iter().zip(scored) {
        for (&i, o) in batch.iter().zip(outs) {
            result[i] = Some(o);
        }
    }
    result
}

/// Batched striped-Forward scores (nats) for the `mask`-selected subset
/// of `seqs` (`None` = all), in original sequence order — the pipeline's
/// stage-3 survivor rescoring. Same no-allocation discipline and
/// length-binned schedule as the byte-filter sweeps; slots are fully
/// independent, so scores are bit-identical at every width and on every
/// backend.
pub fn fwd_scores_batched(
    pool: &ThreadPool,
    striped: &StripedFwd,
    p: &Profile,
    seqs: &[DigitalSeq],
    mask: Option<&[bool]>,
    width: usize,
) -> Vec<Option<f32>> {
    let width = resolve_batch_width(striped.backend(), width);
    let lens: Vec<usize> = seqs.iter().map(|s| s.len()).collect();
    let batches = length_binned_batches(&lens, mask, width);
    let scored: Vec<[f32; MAX_BATCH]> =
        pool.map_collect_init(batches.len(), FwdBatchWorkspace::default, |ws, b| {
            let batch = &batches[b];
            let mut refs: [&[Residue]; MAX_BATCH] = [&[]; MAX_BATCH];
            for (r, &i) in refs.iter_mut().zip(batch.iter()) {
                *r = &seqs[i].residues;
            }
            let mut out = [0f32; MAX_BATCH];
            striped.run_batch_into(p, &refs[..batch.len()], ws, &mut out[..batch.len()]);
            out
        });
    let mut result = vec![None; seqs.len()];
    for (batch, outs) in batches.iter().zip(scored) {
        for (&i, s) in batch.iter().zip(outs) {
            result[i] = Some(s);
        }
    }
    result
}

/// Batched MSV outcomes for the `mask`-selected subset of `seqs`
/// (`None` = all), in original sequence order. `width = 0` auto-selects
/// the backend's preferred interleave.
pub fn msv_outcomes_batched(
    pool: &ThreadPool,
    striped: &StripedMsv,
    om: &MsvProfile,
    seqs: &[DigitalSeq],
    mask: Option<&[bool]>,
    width: usize,
) -> Vec<Option<MsvOutcome>> {
    let width = resolve_batch_width(striped.backend(), width);
    sweep_batched_with(
        pool,
        &|refs: &[&[Residue]], ws: &mut BatchWorkspace, out: &mut [MsvOutcome]| {
            striped.run_batch_into(om, refs, ws, out)
        },
        seqs,
        mask,
        width,
    )
}

/// Batched SSV outcomes for the `mask`-selected subset of `seqs`
/// (`None` = all), in original sequence order.
pub fn ssv_outcomes_batched(
    pool: &ThreadPool,
    striped: &StripedSsv,
    om: &MsvProfile,
    seqs: &[DigitalSeq],
    mask: Option<&[bool]>,
    width: usize,
) -> Vec<Option<MsvOutcome>> {
    let width = resolve_batch_width(striped.backend(), width);
    sweep_batched_with(
        pool,
        &|refs: &[&[Residue]], ws: &mut BatchWorkspace, out: &mut [MsvOutcome]| {
            striped.run_batch_into(om, refs, ws, out)
        },
        seqs,
        mask,
        width,
    )
}

/// MSV-filter every sequence of a database in parallel (one task per
/// sequence).
pub fn msv_sweep(pool: &ThreadPool, om: &MsvProfile, db: &SeqDb) -> (Vec<MsvOutcome>, SweepTiming) {
    let striped = StripedMsv::new(om);
    let start = Instant::now();
    let outcomes: Vec<MsvOutcome> = pool.map_collect_init(db.len(), Vec::new, |dp, i| {
        striped.run_into(om, &db.seqs[i].residues, dp)
    });
    let secs = start.elapsed().as_secs_f64();
    let res = db.total_residues();
    (
        outcomes,
        timing(
            secs,
            striped.real_cells_per_row() as u64 * res,
            striped.padded_cells_per_row() as u64 * res,
        ),
    )
}

/// MSV-filter every sequence with the interleaved batch kernels
/// (length-binned schedule, one task per batch). Outcomes are
/// bit-identical to [`msv_sweep`], in original order.
pub fn msv_sweep_batched(
    pool: &ThreadPool,
    om: &MsvProfile,
    db: &SeqDb,
    width: usize,
) -> (Vec<MsvOutcome>, SweepTiming) {
    let striped = StripedMsv::new(om);
    let start = Instant::now();
    let outcomes: Vec<MsvOutcome> = msv_outcomes_batched(pool, &striped, om, &db.seqs, None, width)
        .into_iter()
        .map(|o| o.expect("unmasked batched sweep scores every sequence"))
        .collect();
    let secs = start.elapsed().as_secs_f64();
    let res = db.total_residues();
    (
        outcomes,
        timing(
            secs,
            striped.real_cells_per_row() as u64 * res,
            striped.padded_cells_per_row() as u64 * res,
        ),
    )
}

/// SSV-filter every sequence with the interleaved batch kernels.
pub fn ssv_sweep_batched(
    pool: &ThreadPool,
    om: &MsvProfile,
    db: &SeqDb,
    width: usize,
) -> (Vec<MsvOutcome>, SweepTiming) {
    let striped = StripedSsv::new(om);
    let start = Instant::now();
    let outcomes: Vec<MsvOutcome> = ssv_outcomes_batched(pool, &striped, om, &db.seqs, None, width)
        .into_iter()
        .map(|o| o.expect("unmasked batched sweep scores every sequence"))
        .collect();
    let secs = start.elapsed().as_secs_f64();
    let res = db.total_residues();
    (
        outcomes,
        timing(
            secs,
            striped.real_cells_per_row() as u64 * res,
            striped.padded_cells_per_row() as u64 * res,
        ),
    )
}

/// Forward-score every sequence with the striped odds-space batch
/// kernels (length-binned schedule, one pool task per batch). Scores are
/// in original order; timing counts real Forward cells (`3·M·L`).
pub fn fwd_sweep_batched(
    pool: &ThreadPool,
    p: &Profile,
    db: &SeqDb,
    width: usize,
) -> (Vec<f32>, SweepTiming) {
    let striped = StripedFwd::new(p);
    let start = Instant::now();
    let scores: Vec<f32> = fwd_scores_batched(pool, &striped, p, &db.seqs, None, width)
        .into_iter()
        .map(|s| s.expect("unmasked batched sweep scores every sequence"))
        .collect();
    let secs = start.elapsed().as_secs_f64();
    let res = db.total_residues();
    (
        scores,
        timing(
            secs,
            striped.real_cells_per_row() * res,
            striped.padded_cells_per_row() * res,
        ),
    )
}

/// Viterbi-filter every sequence of a database in parallel.
pub fn vit_sweep(
    pool: &ThreadPool,
    om: &VitProfile,
    db: &SeqDb,
) -> (Vec<VitOutcome>, SweepTiming, LazyFStats) {
    let striped = StripedVit::new(om);
    let start = Instant::now();
    let results: Vec<(VitOutcome, LazyFStats)> =
        pool.map_collect_init(db.len(), VitWorkspace::default, |ws, i| {
            striped.run_into(om, &db.seqs[i].residues, ws)
        });
    let secs = start.elapsed().as_secs_f64();
    let mut agg = LazyFStats::default();
    let mut outcomes = Vec::with_capacity(results.len());
    for (out, st) in results {
        outcomes.push(out);
        agg.rows += st.rows;
        agg.total_passes += st.total_passes;
        agg.rows_extra += st.rows_extra;
        agg.max_passes = agg.max_passes.max(st.max_passes);
    }
    let res = db.total_residues();
    (
        outcomes,
        timing(
            secs,
            striped.real_cells_per_row() as u64 * res,
            striped.padded_cells_per_row() as u64 * res,
        ),
        agg,
    )
}

/// Viterbi-filter only the subset of sequences selected by `mask`
/// (the post-MSV survivors in the pipeline).
pub fn vit_sweep_masked(
    pool: &ThreadPool,
    om: &VitProfile,
    db: &SeqDb,
    mask: &[bool],
) -> (Vec<Option<VitOutcome>>, SweepTiming) {
    assert_eq!(mask.len(), db.len());
    let striped = StripedVit::new(om);
    let start = Instant::now();
    let outcomes: Vec<Option<VitOutcome>> =
        pool.map_collect_init(db.len(), VitWorkspace::default, |ws, i| {
            mask[i].then(|| striped.run_into(om, &db.seqs[i].residues, ws).0)
        });
    let secs = start.elapsed().as_secs_f64();
    let res: u64 = db
        .seqs
        .iter()
        .zip(mask)
        .filter(|&(_, &keep)| keep)
        .map(|(s, _)| s.len() as u64)
        .sum();
    (
        outcomes,
        timing(
            secs,
            striped.real_cells_per_row() as u64 * res,
            striped.padded_cells_per_row() as u64 * res,
        ),
    )
}

/// Measure single-thread striped-MSV throughput (cells/s) on a sample —
/// the calibration input for the analytic CPU-side time model.
pub fn measure_msv_throughput(om: &MsvProfile, db: &SeqDb, max_seqs: usize) -> SweepTiming {
    let striped = StripedMsv::new(om);
    let mut dp = Vec::new();
    let take = db.seqs.iter().take(max_seqs);
    let mut res = 0u64;
    let start = Instant::now();
    for seq in take {
        std::hint::black_box(striped.run_into(om, &seq.residues, &mut dp));
        res += seq.len() as u64;
    }
    timing(
        start.elapsed().as_secs_f64(),
        striped.real_cells_per_row() as u64 * res,
        striped.padded_cells_per_row() as u64 * res,
    )
}

/// Measure single-thread **batched** striped-MSV throughput at a given
/// interleave width (the `batched_filter_loops` bench rows).
pub fn measure_msv_batched(
    striped: &StripedMsv,
    om: &MsvProfile,
    db: &SeqDb,
    max_seqs: usize,
    width: usize,
) -> SweepTiming {
    let n = max_seqs.min(db.len());
    let lens: Vec<usize> = db.seqs.iter().take(n).map(|s| s.len()).collect();
    let batches = length_binned_batches(&lens, None, width.clamp(1, MAX_BATCH));
    let mut ws = BatchWorkspace::default();
    let mut out = [ZERO_OUTCOME; MAX_BATCH];
    let res: u64 = lens.iter().map(|&l| l as u64).sum();
    let start = Instant::now();
    for batch in &batches {
        let mut refs: [&[Residue]; MAX_BATCH] = [&[]; MAX_BATCH];
        for (r, &i) in refs.iter_mut().zip(batch.iter()) {
            *r = &db.seqs[i].residues;
        }
        striped.run_batch_into(om, &refs[..batch.len()], &mut ws, &mut out[..batch.len()]);
        std::hint::black_box(&out);
    }
    timing(
        start.elapsed().as_secs_f64(),
        striped.real_cells_per_row() as u64 * res,
        striped.padded_cells_per_row() as u64 * res,
    )
}

/// Measure single-thread **batched** striped-SSV throughput.
pub fn measure_ssv_batched(
    striped: &StripedSsv,
    om: &MsvProfile,
    db: &SeqDb,
    max_seqs: usize,
    width: usize,
) -> SweepTiming {
    let n = max_seqs.min(db.len());
    let lens: Vec<usize> = db.seqs.iter().take(n).map(|s| s.len()).collect();
    let batches = length_binned_batches(&lens, None, width.clamp(1, MAX_BATCH));
    let mut ws = BatchWorkspace::default();
    let mut out = [ZERO_OUTCOME; MAX_BATCH];
    let res: u64 = lens.iter().map(|&l| l as u64).sum();
    let start = Instant::now();
    for batch in &batches {
        let mut refs: [&[Residue]; MAX_BATCH] = [&[]; MAX_BATCH];
        for (r, &i) in refs.iter_mut().zip(batch.iter()) {
            *r = &db.seqs[i].residues;
        }
        striped.run_batch_into(om, &refs[..batch.len()], &mut ws, &mut out[..batch.len()]);
        std::hint::black_box(&out);
    }
    timing(
        start.elapsed().as_secs_f64(),
        striped.real_cells_per_row() as u64 * res,
        striped.padded_cells_per_row() as u64 * res,
    )
}

/// Measure single-thread **batched** striped-Forward throughput at a
/// given interleave width (the `forward_loops` bench rows).
pub fn measure_fwd_batched(
    striped: &StripedFwd,
    p: &Profile,
    db: &SeqDb,
    max_seqs: usize,
    width: usize,
) -> SweepTiming {
    let n = max_seqs.min(db.len());
    let lens: Vec<usize> = db.seqs.iter().take(n).map(|s| s.len()).collect();
    let batches = length_binned_batches(&lens, None, width.clamp(1, MAX_BATCH));
    let mut ws = FwdBatchWorkspace::default();
    let mut out = [0f32; MAX_BATCH];
    let res: u64 = lens.iter().map(|&l| l as u64).sum();
    let start = Instant::now();
    for batch in &batches {
        let mut refs: [&[Residue]; MAX_BATCH] = [&[]; MAX_BATCH];
        for (r, &i) in refs.iter_mut().zip(batch.iter()) {
            *r = &db.seqs[i].residues;
        }
        striped.run_batch_into(p, &refs[..batch.len()], &mut ws, &mut out[..batch.len()]);
        std::hint::black_box(&out);
    }
    timing(
        start.elapsed().as_secs_f64(),
        striped.real_cells_per_row() * res,
        striped.padded_cells_per_row() * res,
    )
}

/// Measure single-thread throughput of the scalar log-space
/// [`forward_generic`](crate::reference::forward_generic) on a sample —
/// the before side of the stage-3 Amdahl ledger.
pub fn measure_fwd_generic(p: &Profile, db: &SeqDb, max_seqs: usize) -> SweepTiming {
    let mut res = 0u64;
    let start = Instant::now();
    for seq in db.seqs.iter().take(max_seqs) {
        std::hint::black_box(crate::reference::forward_generic(p, &seq.residues));
        res += seq.len() as u64;
    }
    let cells = 3 * p.m as u64 * res;
    timing(start.elapsed().as_secs_f64(), cells, cells)
}

/// Measure single-thread striped-Viterbi throughput (cells/s) on a sample.
pub fn measure_vit_throughput(om: &VitProfile, db: &SeqDb, max_seqs: usize) -> SweepTiming {
    let striped = StripedVit::new(om);
    let mut ws = VitWorkspace::default();
    let mut res = 0u64;
    let start = Instant::now();
    for seq in db.seqs.iter().take(max_seqs) {
        std::hint::black_box(striped.run_into(om, &seq.residues, &mut ws));
        res += seq.len() as u64;
    }
    timing(
        start.elapsed().as_secs_f64(),
        striped.real_cells_per_row() as u64 * res,
        striped.padded_cells_per_row() as u64 * res,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantized::{msv_filter_scalar, vit_filter_scalar};
    use crate::ssv::ssv_filter_scalar;
    use h3w_hmm::background::NullModel;
    use h3w_hmm::build::{synthetic_model, BuildParams};
    use h3w_hmm::profile::Profile;
    use h3w_seqdb::gen::{generate, DbGenSpec};

    fn setup() -> (MsvProfile, VitProfile, SeqDb) {
        let bg = NullModel::new();
        let core = synthetic_model(40, 17, &BuildParams::default());
        let p = Profile::config(&core, &bg);
        let mut spec = DbGenSpec::swissprot_like().scaled(0.0002); // ~92 seqs
        spec.homolog_fraction = 0.1;
        let db = generate(&spec, Some(&core), 5);
        (
            MsvProfile::from_profile(&p),
            VitProfile::from_profile(&p),
            db,
        )
    }

    fn pool() -> &'static ThreadPool {
        ThreadPool::global()
    }

    #[test]
    fn parallel_sweep_matches_serial_scalar() {
        let (msv, vit, db) = setup();
        let (m_out, m_t) = msv_sweep(pool(), &msv, &db);
        let (v_out, _, _) = vit_sweep(pool(), &vit, &db);
        assert_eq!(m_out.len(), db.len());
        assert_eq!(v_out.len(), db.len());
        for (i, seq) in db.seqs.iter().enumerate() {
            assert_eq!(m_out[i], msv_filter_scalar(&msv, &seq.residues), "seq {i}");
            assert_eq!(v_out[i], vit_filter_scalar(&vit, &seq.residues), "seq {i}");
        }
        assert_eq!(m_t.real_cells, 40 * db.total_residues());
        assert!(m_t.padded_cells >= m_t.real_cells);
        assert!(m_t.cells_per_sec > 0.0);
        assert!(m_t.padded_cells_per_sec() >= m_t.cells_per_sec);
    }

    #[test]
    fn batched_sweep_matches_per_sequence_sweep() {
        let (msv, _, db) = setup();
        let (want, _) = msv_sweep(pool(), &msv, &db);
        for width in [0usize, 1, 2, 3, 4] {
            let (got, t) = msv_sweep_batched(pool(), &msv, &db, width);
            assert_eq!(want, got, "width={width}");
            assert_eq!(t.real_cells, 40 * db.total_residues());
        }
    }

    #[test]
    fn sweeps_are_bit_identical_at_every_thread_count() {
        let (msv, vit, db) = setup();
        let one = ThreadPool::new(1);
        let (m_want, _) = msv_sweep_batched(&one, &msv, &db, 0);
        let (v_want, _, lf_want) = vit_sweep(&one, &vit, &db);
        for threads in [2usize, 4, 8] {
            let p = ThreadPool::new(threads);
            let (m_got, _) = msv_sweep_batched(&p, &msv, &db, 0);
            let (v_got, _, lf_got) = vit_sweep(&p, &vit, &db);
            assert_eq!(m_want, m_got, "MSV, threads={threads}");
            assert_eq!(v_want, v_got, "Viterbi, threads={threads}");
            assert_eq!(lf_want, lf_got, "Lazy-F stats, threads={threads}");
        }
    }

    #[test]
    fn batched_ssv_sweep_matches_scalar_spec() {
        let (msv, _, db) = setup();
        let (got, t) = ssv_sweep_batched(pool(), &msv, &db, 0);
        for (i, seq) in db.seqs.iter().enumerate() {
            assert_eq!(got[i], ssv_filter_scalar(&msv, &seq.residues), "seq {i}");
        }
        assert_eq!(t.real_cells, 40 * db.total_residues());
    }

    #[test]
    fn masked_batched_outcomes_respect_mask_and_order() {
        let (msv, _, db) = setup();
        let striped = StripedMsv::new(&msv);
        let mask: Vec<bool> = (0..db.len()).map(|i| i % 3 != 1).collect();
        let got = msv_outcomes_batched(pool(), &striped, &msv, &db.seqs, Some(&mask), 0);
        for (i, seq) in db.seqs.iter().enumerate() {
            match got[i] {
                Some(o) => {
                    assert!(mask[i]);
                    assert_eq!(o, msv_filter_scalar(&msv, &seq.residues), "seq {i}");
                }
                None => assert!(!mask[i]),
            }
        }
    }

    #[test]
    fn length_binning_covers_exactly_the_selection() {
        let lens = [5usize, 100, 3, 42, 42, 7, 900, 1];
        let mask = [true, false, true, true, true, true, true, true];
        let batches = length_binned_batches(&lens, Some(&mask), 4);
        let mut seen: Vec<usize> = batches.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 2, 3, 4, 5, 6, 7]); // 1 is masked out
                                                     // Within the schedule, lengths are non-increasing.
        let flat: Vec<usize> = batches.iter().flatten().map(|&i| lens[i]).collect();
        assert!(flat.windows(2).all(|w| w[0] >= w[1]), "{flat:?}");
        assert!(batches.iter().all(|b| b.len() <= 4 && !b.is_empty()));
    }

    #[test]
    fn batch_schedule_stats_account_for_the_schedule() {
        let lens = [100usize, 90, 80, 10, 5, 5];
        let s = batch_schedule_stats(&lens, None, 4);
        // Schedule: [100, 90, 80, 10] then [5, 5].
        assert_eq!(s.batches, 2);
        assert_eq!(s.seqs, 6);
        assert_eq!(s.slot_rows, 290);
        assert_eq!(s.loop_rows, 105);
        assert_eq!(s.early_finish, 3); // 90, 80, 10 retire early
        assert!((s.occupancy() - 290.0 / (105.0 * 4.0)).abs() < 1e-12);
        // Masked: only the three shortest remain, one batch of width 3.
        let mask = [false, false, false, true, true, true];
        let m = batch_schedule_stats(&lens, Some(&mask), 4);
        assert_eq!(
            (m.batches, m.seqs, m.slot_rows, m.loop_rows),
            (1, 3, 20, 10)
        );
        assert_eq!(m.early_finish, 2);
        assert_eq!(
            batch_schedule_stats(&[], None, 4),
            BatchScheduleStats {
                width: 4,
                ..BatchScheduleStats::default()
            }
        );
    }

    #[test]
    fn record_sweep_mirrors_timing_into_trace() {
        let t = SweepTiming {
            seconds: 0.5,
            real_cells: 1000,
            padded_cells: 1200,
            cells_per_sec: 2000.0,
        };
        let off = h3w_trace::Trace::off();
        record_sweep(&off, "sweep/msv", &t); // must not panic or allocate
        let on = h3w_trace::Trace::on();
        record_sweep(&on, "sweep/msv", &t);
        record_sweep(&on, "sweep/msv", &t);
        let snap = on.snapshot().unwrap();
        let node = snap.at_path("sweep/msv").unwrap();
        assert_eq!(node.counter("real_cells"), 2000);
        assert_eq!(node.counter("padded_cells"), 2400);
        assert_eq!(node.span_count, 2);
        assert!((node.seconds - 1.0).abs() < 1e-12);
    }

    #[test]
    fn masked_sweep_skips_unselected() {
        let (_, vit, db) = setup();
        let mut mask = vec![false; db.len()];
        mask[0] = true;
        mask[db.len() - 1] = true;
        let (out, t) = vit_sweep_masked(pool(), &vit, &db, &mask);
        assert!(out[0].is_some());
        assert!(out[1].is_none());
        assert!(out[db.len() - 1].is_some());
        let expect_cells = 3 * 40 * (db.seqs[0].len() as u64 + db.seqs[db.len() - 1].len() as u64);
        assert_eq!(t.real_cells, expect_cells);
    }

    #[test]
    fn batched_fwd_scores_match_single_runs() {
        let bg = NullModel::new();
        let core = synthetic_model(40, 17, &BuildParams::default());
        let p = Profile::config(&core, &bg);
        let mut spec = DbGenSpec::swissprot_like().scaled(0.0002);
        spec.homolog_fraction = 0.1;
        let db = generate(&spec, Some(&core), 5);
        let striped = StripedFwd::new(&p);
        let mask: Vec<bool> = (0..db.len()).map(|i| i % 4 != 2).collect();
        for width in [0usize, 1, 3, 4] {
            let got = fwd_scores_batched(pool(), &striped, &p, &db.seqs, Some(&mask), width);
            for (i, seq) in db.seqs.iter().enumerate() {
                match got[i] {
                    Some(s) => {
                        assert!(mask[i]);
                        let want = striped.run(&p, &seq.residues);
                        assert_eq!(want.to_bits(), s.to_bits(), "seq {i} width {width}");
                    }
                    None => assert!(!mask[i]),
                }
            }
        }
        let t = measure_fwd_batched(&striped, &p, &db, 30, 4);
        let tg = measure_fwd_generic(&p, &db, 30);
        assert!(t.cells_per_sec > 1e6, "striped fwd {}", t.cells_per_sec);
        assert!(tg.cells_per_sec > 1e4, "generic fwd {}", tg.cells_per_sec);
    }

    #[test]
    fn throughput_measurement_sane() {
        let (msv, vit, db) = setup();
        let tm = measure_msv_throughput(&msv, &db, 50);
        let tv = measure_vit_throughput(&vit, &db, 50);
        assert!(
            tm.cells_per_sec > 1e6,
            "MSV throughput {}",
            tm.cells_per_sec
        );
        assert!(
            tv.cells_per_sec > 1e6,
            "Vit throughput {}",
            tv.cells_per_sec
        );
        // Per-cell, Viterbi does ≫ more work than MSV; with the 3× cell
        // accounting they land within an order of magnitude.
        assert!(tm.cells_per_sec > tv.cells_per_sec / 10.0);
    }
}
