//! Parallel database sweeps — the multi-core CPU baseline.
//!
//! The paper's speedups are measured against "HMMER 3.0 utilizing
//! multi-core and SSE capabilities on Intel Core i5 quad core" (§IV).
//! This module is that baseline: the striped filters fanned across the
//! [`h3w_pool`] work-stealing pool, with measured cell throughput for the
//! analytic speedup model.
//!
//! Two sweep shapes exist for the byte filters:
//!
//! * **one task per sequence** ([`msv_sweep`]) — work-stealing handles the
//!   length skew;
//! * **one task per batch** ([`msv_sweep_batched`], [`ssv_sweep_batched`])
//!   — the [length-binned scheduler](length_binned_batches) groups
//!   near-equal-length sequences into batches of `S` and the interleaved
//!   kernels in [`crate::batch`] score each batch in one fused loop,
//!   hiding the per-row reduction latency behind `S` independent chains.
//!
//! Both produce bit-identical outcomes; the batched shape is faster
//! because the single-sequence row loop is latency-bound (see
//! [`crate::batch`]).
//!
//! Every sweep takes the [`ThreadPool`] to fan out on. Each parallel item
//! (a batch, or a sequence) writes its result into the slot indexed by
//! its original position, so outcomes are **bit-identical at every thread
//! count**; per-worker workspace arenas are created lazily once per
//! worker (the `map_collect_init` scratch pattern), so the steady-state
//! hot loop still performs no allocation.

use crate::backend::Backend;
use crate::batch::{
    msv_multi_batch_pipelined_into, ssv_multi_batch_pipelined_into, BatchWorkspace, MsvPair,
    SsvPair, MAX_BATCH,
};
use crate::pipe::{resolve_pipeline_depth, PipeSchedule};
use crate::quantized::{MsvOutcome, VitOutcome};
use crate::ssv::StripedSsv;
use crate::striped_fwd::{FwdBatchWorkspace, StripedFwd};
use crate::striped_msv::StripedMsv;
use crate::striped_vit::{LazyFStats, StripedVit, VitWorkspace};
use h3w_hmm::alphabet::Residue;
use h3w_hmm::msvprofile::MsvProfile;
use h3w_hmm::profile::Profile;
use h3w_hmm::vitprofile::VitProfile;
use h3w_pool::ThreadPool;
use h3w_seqdb::{DigitalSeq, SeqDb};
use std::time::Instant;

/// Measured throughput of one sweep, with **both** cell denominators kept
/// explicit so calibration and bench numbers can never silently mix them:
///
/// * `real_cells` — meaningful DP cells (model length × residues swept,
///   ×3 states for Viterbi), the denominator database-level numbers are
///   reported in;
/// * `padded_cells` — cells the hardware actually computed
///   (`lanes · Q` per row, including striping phantoms), the denominator
///   for calibrating an analytic kernel-time model.
#[derive(Debug, Clone, Copy)]
pub struct SweepTiming {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Meaningful DP cells processed (no striping phantoms).
    pub real_cells: u64,
    /// DP cells computed including striping phantoms.
    pub padded_cells: u64,
    /// `real_cells / seconds` — the headline throughput number.
    pub cells_per_sec: f64,
}

impl SweepTiming {
    /// `padded_cells / seconds` — hardware-work throughput, for kernel
    /// calibration only.
    pub fn padded_cells_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.padded_cells as f64 / self.seconds
        } else {
            0.0
        }
    }
}

fn timing(seconds: f64, real_cells: u64, padded_cells: u64) -> SweepTiming {
    SweepTiming {
        seconds,
        real_cells,
        padded_cells,
        cells_per_sec: if seconds > 0.0 {
            real_cells as f64 / seconds
        } else {
            0.0
        },
    }
}

/// Batch-schedule accounting derived *after* a sweep from the same
/// length-binned schedule the sweep used — an O(n) pass over the
/// sequence lengths, so nothing is ever counted inside the fused row
/// loop (the telemetry overhead budget lives and dies on that).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchScheduleStats {
    /// Interleave width the schedule was built for.
    pub width: usize,
    /// Batches scheduled.
    pub batches: u64,
    /// Sequences scheduled into slots.
    pub seqs: u64,
    /// Real slot rows: the sum of member lengths (each slot retires after
    /// its own sequence ends).
    pub slot_rows: u64,
    /// Fused-loop trips: the sum of per-batch maximum lengths.
    pub loop_rows: u64,
    /// Slots that retire early (their sequence is shorter than the
    /// batch's longest) — the length-binning dropout the scheduler
    /// minimizes.
    pub early_finish: u64,
}

impl BatchScheduleStats {
    /// Fraction of slot-rows the fused loop spends on real sequence data:
    /// `slot_rows / (loop_rows × width)`. 1.0 means every slot is busy on
    /// every trip.
    pub fn occupancy(&self) -> f64 {
        let capacity = self.loop_rows.saturating_mul(self.width as u64);
        if capacity == 0 {
            0.0
        } else {
            self.slot_rows as f64 / capacity as f64
        }
    }
}

/// Compute [`BatchScheduleStats`] for the schedule
/// [`length_binned_batches`] builds over the same `(lens, mask, width)`.
pub fn batch_schedule_stats(
    lens: &[usize],
    mask: Option<&[bool]>,
    width: usize,
) -> BatchScheduleStats {
    let width = width.clamp(1, MAX_BATCH);
    let batches = length_binned_batches(lens, mask, width);
    let mut stats = BatchScheduleStats {
        width,
        batches: batches.len() as u64,
        ..BatchScheduleStats::default()
    };
    for batch in &batches {
        let longest = batch.iter().map(|&i| lens[i]).max().unwrap_or(0);
        stats.loop_rows += longest as u64;
        for &i in batch {
            stats.seqs += 1;
            stats.slot_rows += lens[i] as u64;
            if lens[i] < longest {
                stats.early_finish += 1;
            }
        }
    }
    stats
}

/// Record a measured sweep into a telemetry trace at `path`: both cell
/// denominators as counters, the wall time as span seconds. This is how
/// the bench throughput bins emit from telemetry instead of carrying
/// ad-hoc stopwatch structs around.
pub fn record_sweep(trace: &h3w_trace::Trace, path: &str, timing: &SweepTiming) {
    if !trace.is_on() {
        return;
    }
    trace.add(path, "real_cells", timing.real_cells);
    trace.add(path, "padded_cells", timing.padded_cells);
    trace.add_secs(path, timing.seconds);
}

/// Resolve a requested batch width: `0` means "auto" (the backend's
/// preferred interleave), anything else is clamped to
/// `1..=`[`MAX_BATCH`].
pub fn resolve_batch_width(backend: Backend, requested: usize) -> usize {
    if requested == 0 {
        backend.preferred_batch_width()
    } else {
        requested.clamp(1, MAX_BATCH)
    }
}

/// Resolve the batch width **and** pipeline schedule a sweep will run
/// with: the schedule's chain count caps the interleave width, so
/// `depth = 1` really is the single-chain un-pipelined baseline no
/// matter what width the caller (or the backend auto-pick) asked for.
/// The cap is applied here, at the scheduling level — the fused drivers
/// never see a wider batch than the schedule allows, so their dropout
/// logic stays depth-oblivious.
pub fn resolve_pipelined_width(
    backend: Backend,
    width: usize,
    depth: usize,
) -> (usize, PipeSchedule) {
    let sched = resolve_pipeline_depth(depth);
    let width = resolve_batch_width(backend, width).min(sched.chains).max(1);
    (width, sched)
}

/// The length-binned batch schedule: indices of the selected sequences
/// (all of them, or `mask`-selected survivors), sorted by descending
/// length and chunked into batches of `width`.
///
/// Sorting is what makes interleaving pay: batch members enter the fused
/// loop near-lockstep, so almost no rows run below full width. Descending
/// order also hands the thread pool the long batches first, shrinking the
/// work-stealing tail. Callers scatter outcomes back through the returned
/// indices, so output order is unaffected.
pub fn length_binned_batches(
    lens: &[usize],
    mask: Option<&[bool]>,
    width: usize,
) -> Vec<Vec<usize>> {
    let width = width.clamp(1, MAX_BATCH);
    let mut idx: Vec<usize> = match mask {
        Some(m) => {
            assert_eq!(m.len(), lens.len());
            (0..lens.len()).filter(|&i| m[i]).collect()
        }
        None => (0..lens.len()).collect(),
    };
    idx.sort_by_key(|&i| std::cmp::Reverse(lens[i]));
    idx.chunks(width).map(|c| c.to_vec()).collect()
}

const ZERO_OUTCOME: MsvOutcome = MsvOutcome {
    xj: 0,
    overflow: false,
    score: 0.0,
};

/// Shared batched-sweep driver: schedule, score batches across the pool
/// (workers steal whole batches), scatter back to original order. The
/// per-batch sequence refs and outcomes live in fixed [`MAX_BATCH`]
/// arrays — a worker's only heap state is its lazily-created workspace
/// arena, so the steady-state hot loop performs no allocation at all.
fn sweep_batched_with<F>(
    pool: &ThreadPool,
    run_batch: &F,
    seqs: &[DigitalSeq],
    mask: Option<&[bool]>,
    width: usize,
) -> Vec<Option<MsvOutcome>>
where
    F: Fn(&[&[Residue]], &mut BatchWorkspace, &mut [MsvOutcome]) + Sync,
{
    let lens: Vec<usize> = seqs.iter().map(|s| s.len()).collect();
    let batches = length_binned_batches(&lens, mask, width);
    let scored: Vec<[MsvOutcome; MAX_BATCH]> =
        pool.map_collect_init(batches.len(), BatchWorkspace::default, |ws, b| {
            let batch = &batches[b];
            let mut refs: [&[Residue]; MAX_BATCH] = [&[]; MAX_BATCH];
            for (r, &i) in refs.iter_mut().zip(batch.iter()) {
                *r = &seqs[i].residues;
            }
            let mut out = [ZERO_OUTCOME; MAX_BATCH];
            run_batch(&refs[..batch.len()], ws, &mut out[..batch.len()]);
            out
        });
    let mut result = vec![None; seqs.len()];
    for (batch, outs) in batches.iter().zip(scored) {
        for (&i, o) in batch.iter().zip(outs) {
            result[i] = Some(o);
        }
    }
    result
}

/// Batched striped-Forward scores (nats) for the `mask`-selected subset
/// of `seqs` (`None` = all), in original sequence order — the pipeline's
/// stage-3 survivor rescoring. Same no-allocation discipline and
/// length-binned schedule as the byte-filter sweeps; slots are fully
/// independent, so scores are bit-identical at every width and on every
/// backend.
pub fn fwd_scores_batched(
    pool: &ThreadPool,
    striped: &StripedFwd,
    p: &Profile,
    seqs: &[DigitalSeq],
    mask: Option<&[bool]>,
    width: usize,
) -> Vec<Option<f32>> {
    fwd_scores_batched_pipelined(pool, striped, p, seqs, mask, width, 0)
}

/// [`fwd_scores_batched`] with an explicit software-pipeline depth
/// (`0` = auto): the schedule's chain count caps the interleave width
/// and its lookahead drives the emission-row prefetch. Scores are
/// bit-identical at every depth.
#[allow(clippy::too_many_arguments)]
pub fn fwd_scores_batched_pipelined(
    pool: &ThreadPool,
    striped: &StripedFwd,
    p: &Profile,
    seqs: &[DigitalSeq],
    mask: Option<&[bool]>,
    width: usize,
    depth: usize,
) -> Vec<Option<f32>> {
    let (width, _) = resolve_pipelined_width(striped.backend(), width, depth);
    let lens: Vec<usize> = seqs.iter().map(|s| s.len()).collect();
    let batches = length_binned_batches(&lens, mask, width);
    let scored: Vec<[f32; MAX_BATCH]> =
        pool.map_collect_init(batches.len(), FwdBatchWorkspace::default, |ws, b| {
            let batch = &batches[b];
            let mut refs: [&[Residue]; MAX_BATCH] = [&[]; MAX_BATCH];
            for (r, &i) in refs.iter_mut().zip(batch.iter()) {
                *r = &seqs[i].residues;
            }
            let mut out = [0f32; MAX_BATCH];
            striped.run_batch_pipelined_into(
                p,
                &refs[..batch.len()],
                ws,
                &mut out[..batch.len()],
                depth,
            );
            out
        });
    let mut result = vec![None; seqs.len()];
    for (batch, outs) in batches.iter().zip(scored) {
        for (&i, s) in batch.iter().zip(outs) {
            result[i] = Some(s);
        }
    }
    result
}

/// Batched MSV outcomes for the `mask`-selected subset of `seqs`
/// (`None` = all), in original sequence order. `width = 0` auto-selects
/// the backend's preferred interleave.
pub fn msv_outcomes_batched(
    pool: &ThreadPool,
    striped: &StripedMsv,
    om: &MsvProfile,
    seqs: &[DigitalSeq],
    mask: Option<&[bool]>,
    width: usize,
) -> Vec<Option<MsvOutcome>> {
    msv_outcomes_batched_pipelined(pool, striped, om, seqs, mask, width, 0)
}

/// [`msv_outcomes_batched`] with an explicit software-pipeline depth
/// (`0` = auto): the schedule's chain count caps the interleave width
/// (`depth = 1` forces single-chain batches) and its lookahead drives
/// the table-row prefetch inside the fused loop. Outcomes are
/// bit-identical at every depth.
#[allow(clippy::too_many_arguments)]
pub fn msv_outcomes_batched_pipelined(
    pool: &ThreadPool,
    striped: &StripedMsv,
    om: &MsvProfile,
    seqs: &[DigitalSeq],
    mask: Option<&[bool]>,
    width: usize,
    depth: usize,
) -> Vec<Option<MsvOutcome>> {
    let (width, _) = resolve_pipelined_width(striped.backend(), width, depth);
    sweep_batched_with(
        pool,
        &|refs: &[&[Residue]], ws: &mut BatchWorkspace, out: &mut [MsvOutcome]| {
            striped.run_batch_pipelined_into(om, refs, ws, out, depth)
        },
        seqs,
        mask,
        width,
    )
}

/// Batched SSV outcomes for the `mask`-selected subset of `seqs`
/// (`None` = all), in original sequence order.
pub fn ssv_outcomes_batched(
    pool: &ThreadPool,
    striped: &StripedSsv,
    om: &MsvProfile,
    seqs: &[DigitalSeq],
    mask: Option<&[bool]>,
    width: usize,
) -> Vec<Option<MsvOutcome>> {
    ssv_outcomes_batched_pipelined(pool, striped, om, seqs, mask, width, 0)
}

/// [`ssv_outcomes_batched`] with an explicit software-pipeline depth
/// (`0` = auto); outcomes are bit-identical at every depth.
#[allow(clippy::too_many_arguments)]
pub fn ssv_outcomes_batched_pipelined(
    pool: &ThreadPool,
    striped: &StripedSsv,
    om: &MsvProfile,
    seqs: &[DigitalSeq],
    mask: Option<&[bool]>,
    width: usize,
    depth: usize,
) -> Vec<Option<MsvOutcome>> {
    let (width, _) = resolve_pipelined_width(striped.backend(), width, depth);
    sweep_batched_with(
        pool,
        &|refs: &[&[Residue]], ws: &mut BatchWorkspace, out: &mut [MsvOutcome]| {
            striped.run_batch_pipelined_into(om, refs, ws, out, depth)
        },
        seqs,
        mask,
        width,
    )
}

/// Worker count below which the fused scan stops packing models
/// together (see [`fused_pack_width`]).
pub const FUSED_PACK_MIN_WORKERS: usize = 4;

/// Auto-select the **model**-pack width for a fused scan from the pool's
/// worker count. On wide hosts, packing several equal-stripe models into
/// one interleaved task is the fused win: the pack shares one database
/// traversal and exhausts the byte lanes. On hosts with fewer than
/// [`FUSED_PACK_MIN_WORKERS`] workers the packing's share rounding
/// (`width / pack_len` sequences per task) pads the interleave with
/// model slots instead of same-length sequences, and with no parallel
/// traversals to amortize it the fused scan can *lose* to the unfused
/// one (the `multi_model.fused_speedup_vs_unfused_scan = 0.96` 1-core
/// regression). Degenerating to single-model packs keeps the fused
/// single-traversal structure but gives every task the full sequence
/// interleave — exactly the per-model batched sweep's shape — so fusion
/// never loses on low-core hosts. Results are bit-identical at every
/// pack width; this only moves wall time.
pub fn fused_pack_width(workers: usize, width: usize) -> usize {
    if workers < FUSED_PACK_MIN_WORKERS {
        1
    } else {
        width
    }
}

/// The model-pack schedule for the fused multi-profile sweeps: indices
/// of the models, grouped into packs of up to `width` members. This is
/// the model-dimension twin of [`length_binned_batches`] — models are
/// binned by their stripe count `q` ([`StripedMsv::active_q`]) and only
/// models with **equal** `q` ever share a pack: the fused row loop walks
/// one common `qi` range, so a mixed-q pack would either truncate the
/// longer model or run the shorter one past its table. Within a bin,
/// packs are emitted widest-q first so the thread pool sees the most
/// expensive packs early (the same tail-shrinking argument as the
/// sequence scheduler).
pub fn model_packs(qs: &[usize], width: usize) -> Vec<Vec<usize>> {
    let width = width.clamp(1, MAX_BATCH);
    let mut idx: Vec<usize> = (0..qs.len()).collect();
    // Stable sort: equal-q models keep their input order inside a pack.
    idx.sort_by_key(|&i| std::cmp::Reverse(qs[i]));
    let mut packs = Vec::new();
    let mut i = 0;
    while i < idx.len() {
        let q = qs[idx[i]];
        let mut pack = Vec::with_capacity(width);
        while i < idx.len() && qs[idx[i]] == q && pack.len() < width {
            pack.push(idx[i]);
            i += 1;
        }
        packs.push(pack);
    }
    packs
}

/// Fused-scan schedule accounting: how well the model-packing scheduler
/// filled the interleave width, derived after the fact from the same
/// `(qs, width)` inputs (an O(n) pass, nothing counted in the hot loop).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelPackStats {
    /// Interleave width the schedule was built for.
    pub width: usize,
    /// Models scheduled.
    pub models: u64,
    /// Packs emitted (= fused DB traversal tasks per sequence batch).
    pub packs: u64,
    /// Slots actually occupied across all packs × their sequence share
    /// (`pack_len × (width / pack_len)` per pack).
    pub slots: u64,
}

/// Compute [`ModelPackStats`] for the schedule [`model_packs`] builds
/// over the same `(qs, width)`.
pub fn model_pack_stats(qs: &[usize], width: usize) -> ModelPackStats {
    let width = width.clamp(1, MAX_BATCH);
    let packs = model_packs(qs, width);
    let mut stats = ModelPackStats {
        width,
        models: qs.len() as u64,
        packs: packs.len() as u64,
        ..ModelPackStats::default()
    };
    for pack in &packs {
        let per_model_seqs = (width / pack.len()).max(1);
        stats.slots += (pack.len() * per_model_seqs) as u64;
    }
    stats
}

/// Shared driver for the fused multi-model sweeps: pack the models by
/// stripe count (up to `pack_width` members per pack — see
/// [`fused_pack_width`] for the worker-aware auto policy), split the
/// interleave width between pack members and sequences
/// (`width / pack_len` sequences per task, length-binned), and
/// score every (pack, sequence-batch) task across the pool with the
/// model-major fused kernels. Outcomes scatter back `[model][seq]`, so
/// results are bit-identical at every thread count and pack width.
fn multi_sweep_with<F>(
    pool: &ThreadPool,
    n_models: usize,
    qs: &[usize],
    run_pack: &F,
    seqs: &[DigitalSeq],
    width: usize,
    pack_width: usize,
) -> Vec<Vec<MsvOutcome>>
where
    F: Fn(&[usize], &[usize], &mut BatchWorkspace, &mut [MsvOutcome]) + Sync,
{
    let packs = model_packs(qs, pack_width);
    let lens: Vec<usize> = seqs.iter().map(|s| s.len()).collect();
    // Sequence schedules keyed by the per-task sequence share; packs of
    // equal size reuse the same schedule.
    let mut schedules: Vec<Option<Vec<Vec<usize>>>> = vec![None; MAX_BATCH + 1];
    let mut tasks: Vec<(usize, usize)> = Vec::new();
    for (pi, pack) in packs.iter().enumerate() {
        let share = (width.clamp(1, MAX_BATCH) / pack.len()).max(1);
        let sched =
            schedules[share].get_or_insert_with(|| length_binned_batches(&lens, None, share));
        for bi in 0..sched.len() {
            tasks.push((pi, bi));
        }
    }
    let scored: Vec<[MsvOutcome; MAX_BATCH]> =
        pool.map_collect_init(tasks.len(), BatchWorkspace::default, |ws, t| {
            let (pi, bi) = tasks[t];
            let pack = &packs[pi];
            let share = (width.clamp(1, MAX_BATCH) / pack.len()).max(1);
            let batch = &schedules[share].as_ref().expect("schedule built above")[bi];
            let mut out = [ZERO_OUTCOME; MAX_BATCH];
            run_pack(pack, batch, ws, &mut out[..pack.len() * batch.len()]);
            out
        });
    let mut result = vec![vec![ZERO_OUTCOME; seqs.len()]; n_models];
    for (&(pi, bi), outs) in tasks.iter().zip(&scored) {
        let pack = &packs[pi];
        let share = (width.clamp(1, MAX_BATCH) / pack.len()).max(1);
        let batch = &schedules[share].as_ref().expect("schedule built above")[bi];
        for (mp, &mi) in pack.iter().enumerate() {
            for (sp, &si) in batch.iter().enumerate() {
                result[mi][si] = outs[mp * batch.len() + sp];
            }
        }
    }
    result
}

/// Fused multi-profile MSV sweep: score **every** model against
/// **every** sequence in one pass over the database. Models are packed
/// by stripe count ([`model_packs`]) and each pool task runs one model
/// pack against one length-binned sequence batch through the
/// model-major fused kernel ([`msv_multi_batch_into`]), so a scan over
/// N small models costs far less than N independent sweeps.
///
/// All models must share a backend. Returns `out[model][seq]`,
/// bit-identical to per-model [`msv_outcomes_batched`] at every width
/// and thread count. `width = 0` auto-selects the backend's preferred
/// interleave.
pub fn msv_multi_outcomes(
    pool: &ThreadPool,
    models: &[(&StripedMsv, &MsvProfile)],
    seqs: &[DigitalSeq],
    width: usize,
) -> Vec<Vec<MsvOutcome>> {
    msv_multi_outcomes_pipelined(pool, models, seqs, width, 0)
}

/// [`msv_multi_outcomes`] with an explicit software-pipeline depth
/// (`0` = auto): the schedule's chain count caps the interleave width
/// and its lookahead drives the table-row prefetch in the fused kernel.
/// Outcomes are bit-identical at every depth and pack width.
pub fn msv_multi_outcomes_pipelined(
    pool: &ThreadPool,
    models: &[(&StripedMsv, &MsvProfile)],
    seqs: &[DigitalSeq],
    width: usize,
    depth: usize,
) -> Vec<Vec<MsvOutcome>> {
    let Some(first) = models.first() else {
        return Vec::new();
    };
    let backend = first.0.backend();
    assert!(
        models.iter().all(|(s, _)| s.backend() == backend),
        "fused scan members must share a backend"
    );
    let (width, _) = resolve_pipelined_width(backend, width, depth);
    let pack_width = fused_pack_width(pool.threads(), width);
    let qs: Vec<usize> = models.iter().map(|(s, _)| s.active_q()).collect();
    multi_sweep_with(
        pool,
        models.len(),
        &qs,
        &|pack: &[usize], batch: &[usize], ws: &mut BatchWorkspace, out: &mut [MsvOutcome]| {
            let dummy = MsvPair {
                striped: models[pack[0]].0,
                om: models[pack[0]].1,
                seq: &[],
            };
            let mut pairs = [dummy; MAX_BATCH];
            let mut n = 0;
            for &mi in pack {
                for &si in batch {
                    pairs[n] = MsvPair {
                        striped: models[mi].0,
                        om: models[mi].1,
                        seq: &seqs[si].residues,
                    };
                    n += 1;
                }
            }
            msv_multi_batch_pipelined_into(&pairs[..n], ws, out, depth);
        },
        seqs,
        width,
        pack_width,
    )
}

/// Fused multi-profile SSV sweep — the stage-0 twin of
/// [`msv_multi_outcomes`], bit-identical to per-model
/// [`ssv_outcomes_batched`].
pub fn ssv_multi_outcomes(
    pool: &ThreadPool,
    models: &[(&StripedSsv, &MsvProfile)],
    seqs: &[DigitalSeq],
    width: usize,
) -> Vec<Vec<MsvOutcome>> {
    ssv_multi_outcomes_pipelined(pool, models, seqs, width, 0)
}

/// [`ssv_multi_outcomes`] with an explicit software-pipeline depth
/// (`0` = auto); outcomes are bit-identical at every depth and pack
/// width.
pub fn ssv_multi_outcomes_pipelined(
    pool: &ThreadPool,
    models: &[(&StripedSsv, &MsvProfile)],
    seqs: &[DigitalSeq],
    width: usize,
    depth: usize,
) -> Vec<Vec<MsvOutcome>> {
    let Some(first) = models.first() else {
        return Vec::new();
    };
    let backend = first.0.backend();
    assert!(
        models.iter().all(|(s, _)| s.backend() == backend),
        "fused scan members must share a backend"
    );
    let (width, _) = resolve_pipelined_width(backend, width, depth);
    let pack_width = fused_pack_width(pool.threads(), width);
    let qs: Vec<usize> = models.iter().map(|(s, _)| s.active_q()).collect();
    multi_sweep_with(
        pool,
        models.len(),
        &qs,
        &|pack: &[usize], batch: &[usize], ws: &mut BatchWorkspace, out: &mut [MsvOutcome]| {
            let dummy = SsvPair {
                striped: models[pack[0]].0,
                om: models[pack[0]].1,
                seq: &[],
            };
            let mut pairs = [dummy; MAX_BATCH];
            let mut n = 0;
            for &mi in pack {
                for &si in batch {
                    pairs[n] = SsvPair {
                        striped: models[mi].0,
                        om: models[mi].1,
                        seq: &seqs[si].residues,
                    };
                    n += 1;
                }
            }
            ssv_multi_batch_pipelined_into(&pairs[..n], ws, out, depth);
        },
        seqs,
        width,
        pack_width,
    )
}

/// MSV-filter every sequence of a database in parallel (one task per
/// sequence).
pub fn msv_sweep(pool: &ThreadPool, om: &MsvProfile, db: &SeqDb) -> (Vec<MsvOutcome>, SweepTiming) {
    let striped = StripedMsv::new(om);
    let start = Instant::now();
    let outcomes: Vec<MsvOutcome> = pool.map_collect_init(db.len(), Vec::new, |dp, i| {
        striped.run_into(om, &db.seqs[i].residues, dp)
    });
    let secs = start.elapsed().as_secs_f64();
    let res = db.total_residues();
    (
        outcomes,
        timing(
            secs,
            striped.real_cells_per_row() as u64 * res,
            striped.padded_cells_per_row() as u64 * res,
        ),
    )
}

/// MSV-filter every sequence with the interleaved batch kernels
/// (length-binned schedule, one task per batch). Outcomes are
/// bit-identical to [`msv_sweep`], in original order.
pub fn msv_sweep_batched(
    pool: &ThreadPool,
    om: &MsvProfile,
    db: &SeqDb,
    width: usize,
) -> (Vec<MsvOutcome>, SweepTiming) {
    let striped = StripedMsv::new(om);
    let start = Instant::now();
    let outcomes: Vec<MsvOutcome> = msv_outcomes_batched(pool, &striped, om, &db.seqs, None, width)
        .into_iter()
        .map(|o| o.expect("unmasked batched sweep scores every sequence"))
        .collect();
    let secs = start.elapsed().as_secs_f64();
    let res = db.total_residues();
    (
        outcomes,
        timing(
            secs,
            striped.real_cells_per_row() as u64 * res,
            striped.padded_cells_per_row() as u64 * res,
        ),
    )
}

/// SSV-filter every sequence with the interleaved batch kernels.
pub fn ssv_sweep_batched(
    pool: &ThreadPool,
    om: &MsvProfile,
    db: &SeqDb,
    width: usize,
) -> (Vec<MsvOutcome>, SweepTiming) {
    let striped = StripedSsv::new(om);
    let start = Instant::now();
    let outcomes: Vec<MsvOutcome> = ssv_outcomes_batched(pool, &striped, om, &db.seqs, None, width)
        .into_iter()
        .map(|o| o.expect("unmasked batched sweep scores every sequence"))
        .collect();
    let secs = start.elapsed().as_secs_f64();
    let res = db.total_residues();
    (
        outcomes,
        timing(
            secs,
            striped.real_cells_per_row() as u64 * res,
            striped.padded_cells_per_row() as u64 * res,
        ),
    )
}

/// Forward-score every sequence with the striped odds-space batch
/// kernels (length-binned schedule, one pool task per batch). Scores are
/// in original order; timing counts real Forward cells (`3·M·L`).
pub fn fwd_sweep_batched(
    pool: &ThreadPool,
    p: &Profile,
    db: &SeqDb,
    width: usize,
) -> (Vec<f32>, SweepTiming) {
    let striped = StripedFwd::new(p);
    let start = Instant::now();
    let scores: Vec<f32> = fwd_scores_batched(pool, &striped, p, &db.seqs, None, width)
        .into_iter()
        .map(|s| s.expect("unmasked batched sweep scores every sequence"))
        .collect();
    let secs = start.elapsed().as_secs_f64();
    let res = db.total_residues();
    (
        scores,
        timing(
            secs,
            striped.real_cells_per_row() * res,
            striped.padded_cells_per_row() * res,
        ),
    )
}

/// Viterbi-filter every sequence of a database in parallel.
pub fn vit_sweep(
    pool: &ThreadPool,
    om: &VitProfile,
    db: &SeqDb,
) -> (Vec<VitOutcome>, SweepTiming, LazyFStats) {
    let striped = StripedVit::new(om);
    let start = Instant::now();
    let results: Vec<(VitOutcome, LazyFStats)> =
        pool.map_collect_init(db.len(), VitWorkspace::default, |ws, i| {
            striped.run_into(om, &db.seqs[i].residues, ws)
        });
    let secs = start.elapsed().as_secs_f64();
    let mut agg = LazyFStats::default();
    let mut outcomes = Vec::with_capacity(results.len());
    for (out, st) in results {
        outcomes.push(out);
        agg.rows += st.rows;
        agg.total_passes += st.total_passes;
        agg.rows_extra += st.rows_extra;
        agg.max_passes = agg.max_passes.max(st.max_passes);
    }
    let res = db.total_residues();
    (
        outcomes,
        timing(
            secs,
            striped.real_cells_per_row() as u64 * res,
            striped.padded_cells_per_row() as u64 * res,
        ),
        agg,
    )
}

/// Viterbi-filter only the subset of sequences selected by `mask`
/// (the post-MSV survivors in the pipeline).
pub fn vit_sweep_masked(
    pool: &ThreadPool,
    om: &VitProfile,
    db: &SeqDb,
    mask: &[bool],
) -> (Vec<Option<VitOutcome>>, SweepTiming) {
    assert_eq!(mask.len(), db.len());
    let striped = StripedVit::new(om);
    let start = Instant::now();
    let outcomes: Vec<Option<VitOutcome>> =
        pool.map_collect_init(db.len(), VitWorkspace::default, |ws, i| {
            mask[i].then(|| striped.run_into(om, &db.seqs[i].residues, ws).0)
        });
    let secs = start.elapsed().as_secs_f64();
    let res: u64 = db
        .seqs
        .iter()
        .zip(mask)
        .filter(|&(_, &keep)| keep)
        .map(|(s, _)| s.len() as u64)
        .sum();
    (
        outcomes,
        timing(
            secs,
            striped.real_cells_per_row() as u64 * res,
            striped.padded_cells_per_row() as u64 * res,
        ),
    )
}

/// Measure single-thread striped-MSV throughput (cells/s) on a sample —
/// the calibration input for the analytic CPU-side time model.
pub fn measure_msv_throughput(om: &MsvProfile, db: &SeqDb, max_seqs: usize) -> SweepTiming {
    let striped = StripedMsv::new(om);
    let mut dp = Vec::new();
    let take = db.seqs.iter().take(max_seqs);
    let mut res = 0u64;
    let start = Instant::now();
    for seq in take {
        std::hint::black_box(striped.run_into(om, &seq.residues, &mut dp));
        res += seq.len() as u64;
    }
    timing(
        start.elapsed().as_secs_f64(),
        striped.real_cells_per_row() as u64 * res,
        striped.padded_cells_per_row() as u64 * res,
    )
}

/// Measure single-thread **batched** striped-MSV throughput at a given
/// interleave width and pipeline depth (the `batched_filter_loops` and
/// `pipelined_filter_loops` bench rows). The depth's chain count caps
/// the width, so `depth = 1` measures the honest single-chain baseline.
pub fn measure_msv_batched(
    striped: &StripedMsv,
    om: &MsvProfile,
    db: &SeqDb,
    max_seqs: usize,
    width: usize,
    depth: usize,
) -> SweepTiming {
    let (width, _) = resolve_pipelined_width(striped.backend(), width, depth);
    let n = max_seqs.min(db.len());
    let lens: Vec<usize> = db.seqs.iter().take(n).map(|s| s.len()).collect();
    let batches = length_binned_batches(&lens, None, width);
    let mut ws = BatchWorkspace::default();
    let mut out = [ZERO_OUTCOME; MAX_BATCH];
    let res: u64 = lens.iter().map(|&l| l as u64).sum();
    let start = Instant::now();
    for batch in &batches {
        let mut refs: [&[Residue]; MAX_BATCH] = [&[]; MAX_BATCH];
        for (r, &i) in refs.iter_mut().zip(batch.iter()) {
            *r = &db.seqs[i].residues;
        }
        striped.run_batch_pipelined_into(
            om,
            &refs[..batch.len()],
            &mut ws,
            &mut out[..batch.len()],
            depth,
        );
        std::hint::black_box(&out);
    }
    timing(
        start.elapsed().as_secs_f64(),
        striped.real_cells_per_row() as u64 * res,
        striped.padded_cells_per_row() as u64 * res,
    )
}

/// Measure single-thread **batched** striped-SSV throughput at a given
/// interleave width and pipeline depth.
pub fn measure_ssv_batched(
    striped: &StripedSsv,
    om: &MsvProfile,
    db: &SeqDb,
    max_seqs: usize,
    width: usize,
    depth: usize,
) -> SweepTiming {
    let (width, _) = resolve_pipelined_width(striped.backend(), width, depth);
    let n = max_seqs.min(db.len());
    let lens: Vec<usize> = db.seqs.iter().take(n).map(|s| s.len()).collect();
    let batches = length_binned_batches(&lens, None, width);
    let mut ws = BatchWorkspace::default();
    let mut out = [ZERO_OUTCOME; MAX_BATCH];
    let res: u64 = lens.iter().map(|&l| l as u64).sum();
    let start = Instant::now();
    for batch in &batches {
        let mut refs: [&[Residue]; MAX_BATCH] = [&[]; MAX_BATCH];
        for (r, &i) in refs.iter_mut().zip(batch.iter()) {
            *r = &db.seqs[i].residues;
        }
        striped.run_batch_pipelined_into(
            om,
            &refs[..batch.len()],
            &mut ws,
            &mut out[..batch.len()],
            depth,
        );
        std::hint::black_box(&out);
    }
    timing(
        start.elapsed().as_secs_f64(),
        striped.real_cells_per_row() as u64 * res,
        striped.padded_cells_per_row() as u64 * res,
    )
}

/// Measure single-thread **batched** striped-Forward throughput at a
/// given interleave width and pipeline depth (the `forward_loops` and
/// `pipelined_filter_loops` bench rows).
pub fn measure_fwd_batched(
    striped: &StripedFwd,
    p: &Profile,
    db: &SeqDb,
    max_seqs: usize,
    width: usize,
    depth: usize,
) -> SweepTiming {
    let (width, _) = resolve_pipelined_width(striped.backend(), width, depth);
    let n = max_seqs.min(db.len());
    let lens: Vec<usize> = db.seqs.iter().take(n).map(|s| s.len()).collect();
    let batches = length_binned_batches(&lens, None, width);
    let mut ws = FwdBatchWorkspace::default();
    let mut out = [0f32; MAX_BATCH];
    let res: u64 = lens.iter().map(|&l| l as u64).sum();
    let start = Instant::now();
    for batch in &batches {
        let mut refs: [&[Residue]; MAX_BATCH] = [&[]; MAX_BATCH];
        for (r, &i) in refs.iter_mut().zip(batch.iter()) {
            *r = &db.seqs[i].residues;
        }
        striped.run_batch_pipelined_into(
            p,
            &refs[..batch.len()],
            &mut ws,
            &mut out[..batch.len()],
            depth,
        );
        std::hint::black_box(&out);
    }
    timing(
        start.elapsed().as_secs_f64(),
        striped.real_cells_per_row() * res,
        striped.padded_cells_per_row() * res,
    )
}

/// Measure single-thread throughput of the scalar log-space
/// [`forward_generic`](crate::reference::forward_generic) on a sample —
/// the before side of the stage-3 Amdahl ledger.
pub fn measure_fwd_generic(p: &Profile, db: &SeqDb, max_seqs: usize) -> SweepTiming {
    let mut res = 0u64;
    let start = Instant::now();
    for seq in db.seqs.iter().take(max_seqs) {
        std::hint::black_box(crate::reference::forward_generic(p, &seq.residues));
        res += seq.len() as u64;
    }
    let cells = 3 * p.m as u64 * res;
    timing(start.elapsed().as_secs_f64(), cells, cells)
}

/// Measure single-thread striped-Viterbi throughput (cells/s) on a sample.
pub fn measure_vit_throughput(om: &VitProfile, db: &SeqDb, max_seqs: usize) -> SweepTiming {
    let striped = StripedVit::new(om);
    let mut ws = VitWorkspace::default();
    let mut res = 0u64;
    let start = Instant::now();
    for seq in db.seqs.iter().take(max_seqs) {
        std::hint::black_box(striped.run_into(om, &seq.residues, &mut ws));
        res += seq.len() as u64;
    }
    timing(
        start.elapsed().as_secs_f64(),
        striped.real_cells_per_row() as u64 * res,
        striped.padded_cells_per_row() as u64 * res,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantized::{msv_filter_scalar, vit_filter_scalar};
    use crate::ssv::ssv_filter_scalar;
    use h3w_hmm::background::NullModel;
    use h3w_hmm::build::{synthetic_model, BuildParams};
    use h3w_hmm::profile::Profile;
    use h3w_seqdb::gen::{generate, DbGenSpec};

    fn setup() -> (MsvProfile, VitProfile, SeqDb) {
        let bg = NullModel::new();
        let core = synthetic_model(40, 17, &BuildParams::default());
        let p = Profile::config(&core, &bg);
        let mut spec = DbGenSpec::swissprot_like().scaled(0.0002); // ~92 seqs
        spec.homolog_fraction = 0.1;
        let db = generate(&spec, Some(&core), 5);
        (
            MsvProfile::from_profile(&p),
            VitProfile::from_profile(&p),
            db,
        )
    }

    fn pool() -> &'static ThreadPool {
        ThreadPool::global()
    }

    #[test]
    fn parallel_sweep_matches_serial_scalar() {
        let (msv, vit, db) = setup();
        let (m_out, m_t) = msv_sweep(pool(), &msv, &db);
        let (v_out, _, _) = vit_sweep(pool(), &vit, &db);
        assert_eq!(m_out.len(), db.len());
        assert_eq!(v_out.len(), db.len());
        for (i, seq) in db.seqs.iter().enumerate() {
            assert_eq!(m_out[i], msv_filter_scalar(&msv, &seq.residues), "seq {i}");
            assert_eq!(v_out[i], vit_filter_scalar(&vit, &seq.residues), "seq {i}");
        }
        assert_eq!(m_t.real_cells, 40 * db.total_residues());
        assert!(m_t.padded_cells >= m_t.real_cells);
        assert!(m_t.cells_per_sec > 0.0);
        assert!(m_t.padded_cells_per_sec() >= m_t.cells_per_sec);
    }

    #[test]
    fn batched_sweep_matches_per_sequence_sweep() {
        let (msv, _, db) = setup();
        let (want, _) = msv_sweep(pool(), &msv, &db);
        for width in [0usize, 1, 2, 3, 4] {
            let (got, t) = msv_sweep_batched(pool(), &msv, &db, width);
            assert_eq!(want, got, "width={width}");
            assert_eq!(t.real_cells, 40 * db.total_residues());
        }
    }

    #[test]
    fn sweeps_are_bit_identical_at_every_thread_count() {
        let (msv, vit, db) = setup();
        let one = ThreadPool::new(1);
        let (m_want, _) = msv_sweep_batched(&one, &msv, &db, 0);
        let (v_want, _, lf_want) = vit_sweep(&one, &vit, &db);
        for threads in [2usize, 4, 8] {
            let p = ThreadPool::new(threads);
            let (m_got, _) = msv_sweep_batched(&p, &msv, &db, 0);
            let (v_got, _, lf_got) = vit_sweep(&p, &vit, &db);
            assert_eq!(m_want, m_got, "MSV, threads={threads}");
            assert_eq!(v_want, v_got, "Viterbi, threads={threads}");
            assert_eq!(lf_want, lf_got, "Lazy-F stats, threads={threads}");
        }
    }

    #[test]
    fn batched_ssv_sweep_matches_scalar_spec() {
        let (msv, _, db) = setup();
        let (got, t) = ssv_sweep_batched(pool(), &msv, &db, 0);
        for (i, seq) in db.seqs.iter().enumerate() {
            assert_eq!(got[i], ssv_filter_scalar(&msv, &seq.residues), "seq {i}");
        }
        assert_eq!(t.real_cells, 40 * db.total_residues());
    }

    #[test]
    fn model_packs_never_mix_stripe_counts() {
        // q values with runs: three 3s, one 5, two 7s.
        let qs = [3usize, 7, 3, 5, 7, 3];
        for width in [1usize, 2, 3, 4] {
            let packs = model_packs(&qs, width);
            let mut seen: Vec<usize> = packs.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, vec![0, 1, 2, 3, 4, 5], "width={width}");
            for pack in &packs {
                assert!(!pack.is_empty() && pack.len() <= width, "width={width}");
                assert!(
                    pack.iter().all(|&i| qs[i] == qs[pack[0]]),
                    "mixed q in pack {pack:?}"
                );
            }
            // Widest models first.
            let flat: Vec<usize> = packs.iter().flatten().map(|&i| qs[i]).collect();
            assert!(flat.windows(2).all(|w| w[0] >= w[1]), "{flat:?}");
        }
        assert!(model_packs(&[], 4).is_empty());
        // Width 4 over the runs above: [7,7], [5], [3,3,3].
        let p4 = model_packs(&qs, 4);
        assert_eq!(p4.len(), 3);
        assert_eq!(p4[0], vec![1, 4]); // stable within equal q
        assert_eq!(p4[1], vec![3]);
        assert_eq!(p4[2], vec![0, 2, 5]);
    }

    #[test]
    fn model_pack_stats_account_for_the_schedule() {
        let qs = [3usize, 7, 3, 5, 7, 3];
        let s = model_pack_stats(&qs, 4);
        assert_eq!(s.width, 4);
        assert_eq!(s.models, 6);
        assert_eq!(s.packs, 3);
        // [7,7] → 2 models × 2 seqs; [5] → 1 × 4; [3,3,3] → 3 × 1.
        assert_eq!(s.slots, 4 + 4 + 3);
        assert_eq!(model_pack_stats(&[], 4).packs, 0);
    }

    /// Build a mixed-q model set spanning several stripe-count bins.
    fn multi_setup() -> (Vec<(MsvProfile, StripedMsv, StripedSsv)>, SeqDb) {
        let bg = NullModel::new();
        let mut models = Vec::new();
        for (i, m) in [33usize, 40, 48, 70, 100].into_iter().enumerate() {
            let core = synthetic_model(m, 400 + i as u64, &BuildParams::default());
            let p = Profile::config(&core, &bg);
            let om = MsvProfile::from_profile(&p);
            let msv = StripedMsv::new(&om);
            let ssv = StripedSsv::new(&om);
            models.push((om, msv, ssv));
        }
        let mut spec = DbGenSpec::swissprot_like().scaled(0.00015);
        spec.homolog_fraction = 0.1;
        let core = synthetic_model(40, 401, &BuildParams::default());
        let db = generate(&spec, Some(&core), 19);
        (models, db)
    }

    #[test]
    fn fused_multi_sweep_matches_per_model_scalar() {
        let (models, db) = multi_setup();
        let msv_refs: Vec<(&StripedMsv, &MsvProfile)> =
            models.iter().map(|(om, s, _)| (s, om)).collect();
        let ssv_refs: Vec<(&StripedSsv, &MsvProfile)> =
            models.iter().map(|(om, _, s)| (s, om)).collect();
        for width in [0usize, 1, 2, 3, 4] {
            let m_out = msv_multi_outcomes(pool(), &msv_refs, &db.seqs, width);
            let s_out = ssv_multi_outcomes(pool(), &ssv_refs, &db.seqs, width);
            assert_eq!(m_out.len(), models.len());
            for (mi, (om, _, _)) in models.iter().enumerate() {
                for (si, seq) in db.seqs.iter().enumerate() {
                    assert_eq!(
                        m_out[mi][si],
                        msv_filter_scalar(om, &seq.residues),
                        "msv model {mi} seq {si} width {width}"
                    );
                    assert_eq!(
                        s_out[mi][si],
                        ssv_filter_scalar(om, &seq.residues),
                        "ssv model {mi} seq {si} width {width}"
                    );
                }
            }
        }
        assert!(msv_multi_outcomes(pool(), &[], &db.seqs, 0).is_empty());
    }

    #[test]
    fn fused_multi_sweep_is_thread_invariant() {
        let (models, db) = multi_setup();
        let refs: Vec<(&StripedMsv, &MsvProfile)> =
            models.iter().map(|(om, s, _)| (s, om)).collect();
        let one = ThreadPool::new(1);
        let want = msv_multi_outcomes(&one, &refs, &db.seqs, 0);
        for threads in [2usize, 4, 8] {
            let p = ThreadPool::new(threads);
            assert_eq!(
                want,
                msv_multi_outcomes(&p, &refs, &db.seqs, 0),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn masked_batched_outcomes_respect_mask_and_order() {
        let (msv, _, db) = setup();
        let striped = StripedMsv::new(&msv);
        let mask: Vec<bool> = (0..db.len()).map(|i| i % 3 != 1).collect();
        let got = msv_outcomes_batched(pool(), &striped, &msv, &db.seqs, Some(&mask), 0);
        for (i, seq) in db.seqs.iter().enumerate() {
            match got[i] {
                Some(o) => {
                    assert!(mask[i]);
                    assert_eq!(o, msv_filter_scalar(&msv, &seq.residues), "seq {i}");
                }
                None => assert!(!mask[i]),
            }
        }
    }

    #[test]
    fn length_binning_covers_exactly_the_selection() {
        let lens = [5usize, 100, 3, 42, 42, 7, 900, 1];
        let mask = [true, false, true, true, true, true, true, true];
        let batches = length_binned_batches(&lens, Some(&mask), 4);
        let mut seen: Vec<usize> = batches.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 2, 3, 4, 5, 6, 7]); // 1 is masked out
                                                     // Within the schedule, lengths are non-increasing.
        let flat: Vec<usize> = batches.iter().flatten().map(|&i| lens[i]).collect();
        assert!(flat.windows(2).all(|w| w[0] >= w[1]), "{flat:?}");
        assert!(batches.iter().all(|b| b.len() <= 4 && !b.is_empty()));
    }

    #[test]
    fn batch_schedule_stats_account_for_the_schedule() {
        let lens = [100usize, 90, 80, 10, 5, 5];
        let s = batch_schedule_stats(&lens, None, 4);
        // Schedule: [100, 90, 80, 10] then [5, 5].
        assert_eq!(s.batches, 2);
        assert_eq!(s.seqs, 6);
        assert_eq!(s.slot_rows, 290);
        assert_eq!(s.loop_rows, 105);
        assert_eq!(s.early_finish, 3); // 90, 80, 10 retire early
        assert!((s.occupancy() - 290.0 / (105.0 * 4.0)).abs() < 1e-12);
        // Masked: only the three shortest remain, one batch of width 3.
        let mask = [false, false, false, true, true, true];
        let m = batch_schedule_stats(&lens, Some(&mask), 4);
        assert_eq!(
            (m.batches, m.seqs, m.slot_rows, m.loop_rows),
            (1, 3, 20, 10)
        );
        assert_eq!(m.early_finish, 2);
        assert_eq!(
            batch_schedule_stats(&[], None, 4),
            BatchScheduleStats {
                width: 4,
                ..BatchScheduleStats::default()
            }
        );
    }

    #[test]
    fn record_sweep_mirrors_timing_into_trace() {
        let t = SweepTiming {
            seconds: 0.5,
            real_cells: 1000,
            padded_cells: 1200,
            cells_per_sec: 2000.0,
        };
        let off = h3w_trace::Trace::off();
        record_sweep(&off, "sweep/msv", &t); // must not panic or allocate
        let on = h3w_trace::Trace::on();
        record_sweep(&on, "sweep/msv", &t);
        record_sweep(&on, "sweep/msv", &t);
        let snap = on.snapshot().unwrap();
        let node = snap.at_path("sweep/msv").unwrap();
        assert_eq!(node.counter("real_cells"), 2000);
        assert_eq!(node.counter("padded_cells"), 2400);
        assert_eq!(node.span_count, 2);
        assert!((node.seconds - 1.0).abs() < 1e-12);
    }

    #[test]
    fn masked_sweep_skips_unselected() {
        let (_, vit, db) = setup();
        let mut mask = vec![false; db.len()];
        mask[0] = true;
        mask[db.len() - 1] = true;
        let (out, t) = vit_sweep_masked(pool(), &vit, &db, &mask);
        assert!(out[0].is_some());
        assert!(out[1].is_none());
        assert!(out[db.len() - 1].is_some());
        let expect_cells = 3 * 40 * (db.seqs[0].len() as u64 + db.seqs[db.len() - 1].len() as u64);
        assert_eq!(t.real_cells, expect_cells);
    }

    #[test]
    fn batched_fwd_scores_match_single_runs() {
        let bg = NullModel::new();
        let core = synthetic_model(40, 17, &BuildParams::default());
        let p = Profile::config(&core, &bg);
        let mut spec = DbGenSpec::swissprot_like().scaled(0.0002);
        spec.homolog_fraction = 0.1;
        let db = generate(&spec, Some(&core), 5);
        let striped = StripedFwd::new(&p);
        let mask: Vec<bool> = (0..db.len()).map(|i| i % 4 != 2).collect();
        for width in [0usize, 1, 3, 4] {
            let got = fwd_scores_batched(pool(), &striped, &p, &db.seqs, Some(&mask), width);
            for (i, seq) in db.seqs.iter().enumerate() {
                match got[i] {
                    Some(s) => {
                        assert!(mask[i]);
                        let want = striped.run(&p, &seq.residues);
                        assert_eq!(want.to_bits(), s.to_bits(), "seq {i} width {width}");
                    }
                    None => assert!(!mask[i]),
                }
            }
        }
        let t = measure_fwd_batched(&striped, &p, &db, 30, 4, 0);
        let tg = measure_fwd_generic(&p, &db, 30);
        assert!(t.cells_per_sec > 1e6, "striped fwd {}", t.cells_per_sec);
        assert!(tg.cells_per_sec > 1e4, "generic fwd {}", tg.cells_per_sec);
    }

    #[test]
    fn throughput_measurement_sane() {
        let (msv, vit, db) = setup();
        let tm = measure_msv_throughput(&msv, &db, 50);
        let tv = measure_vit_throughput(&vit, &db, 50);
        assert!(
            tm.cells_per_sec > 1e6,
            "MSV throughput {}",
            tm.cells_per_sec
        );
        assert!(
            tv.cells_per_sec > 1e6,
            "Vit throughput {}",
            tv.cells_per_sec
        );
        // Per-cell, Viterbi does ≫ more work than MSV; with the 3× cell
        // accounting they land within an order of magnitude.
        assert!(tm.cells_per_sec > tv.cells_per_sec / 10.0);
    }
}
