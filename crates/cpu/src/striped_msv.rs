//! Striped 16-lane MSV filter — HMMER 3.0's `p7_MSVFilter` (Farrar layout).
//!
//! Model position `k0` (0-based) lives in vector `q = k0 % Q`, lane
//! `z = k0 / Q`, with `Q = ⌈M/16⌉`. The diagonal dependency `k0−1 → k0`
//! is a plain previous-vector read for `q > 0` and a one-lane shift of the
//! row's last vector for `q = 0` — no per-cell branches, which is exactly
//! why HMMER's CPU filter needs *zero* synchronization and why the paper's
//! GPU kernel must also be sync-free to compete (§III).
//!
//! Output is bit-identical to
//! [`msv_filter_scalar`](crate::quantized::msv_filter_scalar).

use crate::quantized::MsvOutcome;
use crate::simd::{adds_u8, hmax_u8, max_u8, shift_u8, splat_u8, subs_u8, V16u8};
use h3w_hmm::alphabet::{Residue, N_CODES};
use h3w_hmm::msvprofile::MsvProfile;

/// Lanes in the byte pipeline (one SSE register of u8).
pub const MSV_LANES: usize = 16;

/// A profile's MSV tables rearranged into the striped layout.
#[derive(Debug, Clone)]
pub struct StripedMsv {
    /// Model length.
    pub m: usize,
    /// Vectors per row: `⌈M/16⌉`.
    pub q: usize,
    base: u8,
    bias: u8,
    overflow_at: u8,
    /// Striped biased costs, code-major: `rbv[code * q + qi]`.
    /// Phantom positions (`k0 ≥ M`) cost 255, pinning them to the floor.
    rbv: Vec<V16u8>,
}

impl StripedMsv {
    /// Re-stripe an [`MsvProfile`].
    pub fn new(om: &MsvProfile) -> StripedMsv {
        let m = om.m;
        let q = m.div_ceil(MSV_LANES).max(1);
        let mut rbv = vec![[255u8; MSV_LANES]; N_CODES * q];
        for code in 0..N_CODES {
            for qi in 0..q {
                let vec = &mut rbv[code * q + qi];
                for (z, slot) in vec.iter_mut().enumerate() {
                    let k0 = z * q + qi;
                    if k0 < m {
                        *slot = om.cost(code as u8, k0);
                    }
                }
            }
        }
        StripedMsv {
            m,
            q,
            base: om.base,
            bias: om.bias,
            overflow_at: om.overflow_limit(),
            rbv,
        }
    }

    /// Score one sequence, reusing `dp` as the row buffer (resized as
    /// needed). Bit-identical to the scalar reference.
    pub fn run_into(&self, om: &MsvProfile, seq: &[Residue], dp: &mut Vec<V16u8>) -> MsvOutcome {
        let q = self.q;
        let lc = om.len_costs(seq.len());
        dp.clear();
        dp.resize(q, splat_u8(0));

        let biasv = splat_u8(self.bias);
        let mut xj = 0u8;
        let mut xbv = splat_u8(self.base.saturating_sub(lc.tjbm));
        for &x in seq {
            let row = &self.rbv[x as usize * q..(x as usize + 1) * q];
            let mut xev = splat_u8(0);
            let mut mpv = shift_u8(dp[q - 1], 0);
            for (qi, rv) in row.iter().enumerate() {
                let sv = subs_u8(adds_u8(max_u8(mpv, xbv), biasv), *rv);
                xev = max_u8(xev, sv);
                mpv = dp[qi];
                dp[qi] = sv;
            }
            let xe = hmax_u8(xev);
            if xe >= self.overflow_at {
                return MsvOutcome {
                    xj: 255,
                    overflow: true,
                    score: MsvProfile::overflow_score(),
                };
            }
            xj = xj.max(xe.saturating_sub(lc.tec));
            xbv = splat_u8(self.base.max(xj).saturating_sub(lc.tjbm));
        }
        MsvOutcome {
            xj,
            overflow: false,
            score: om.score_to_nats(xj, seq.len()),
        }
    }

    /// Score one sequence with a fresh row buffer.
    pub fn run(&self, om: &MsvProfile, seq: &[Residue]) -> MsvOutcome {
        let mut dp = Vec::new();
        self.run_into(om, seq, &mut dp)
    }

    /// DP cells computed per residue row (16·Q, including phantom lanes) —
    /// the throughput denominator for calibration.
    pub fn cells_per_row(&self) -> usize {
        MSV_LANES * self.q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantized::msv_filter_scalar;
    use h3w_hmm::background::NullModel;
    use h3w_hmm::build::{synthetic_model, BuildParams};
    use h3w_hmm::calibrate::random_seq;
    use h3w_hmm::profile::Profile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn om(m: usize, seed: u64) -> MsvProfile {
        let bg = NullModel::new();
        let core = synthetic_model(m, seed, &BuildParams::default());
        MsvProfile::from_profile(&Profile::config(&core, &bg))
    }

    #[test]
    fn bit_exact_vs_scalar_over_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        // Sizes around the striping boundaries: < 16, = 16, off multiples.
        for m in [1usize, 3, 15, 16, 17, 31, 32, 48, 100, 257] {
            let om = om(m, m as u64);
            let striped = StripedMsv::new(&om);
            for len in [1usize, 7, 50, 300] {
                let seq = random_seq(&mut rng, len);
                let a = msv_filter_scalar(&om, &seq);
                let b = striped.run(&om, &seq);
                assert_eq!(a, b, "m={m} len={len}");
            }
        }
    }

    #[test]
    fn overflow_agrees_with_scalar() {
        // A strongly matching homolog against a long conserved model should
        // eventually overflow both implementations identically.
        let bg = NullModel::new();
        let core = synthetic_model(120, 3, &BuildParams::default());
        let p = Profile::config(&core, &bg);
        let om = MsvProfile::from_profile(&p);
        let striped = StripedMsv::new(&om);
        let mut rng = StdRng::seed_from_u64(5);
        let mut hom = Vec::new();
        for _ in 0..4 {
            hom.extend(h3w_seqdb::gen::sample_homolog(&mut rng, &core, 3));
        }
        let a = msv_filter_scalar(&om, &hom);
        let b = striped.run(&om, &hom);
        assert_eq!(a, b);
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let om = om(40, 9);
        let striped = StripedMsv::new(&om);
        let mut rng = StdRng::seed_from_u64(10);
        let s1 = random_seq(&mut rng, 100);
        let s2 = random_seq(&mut rng, 60);
        let mut dp = Vec::new();
        let first = striped.run_into(&om, &s1, &mut dp);
        let second = striped.run_into(&om, &s2, &mut dp);
        assert_eq!(first, striped.run(&om, &s1));
        assert_eq!(second, striped.run(&om, &s2));
    }

    #[test]
    fn stripe_geometry() {
        let om = om(33, 2);
        let striped = StripedMsv::new(&om);
        assert_eq!(striped.q, 3); // ceil(33/16)
        assert_eq!(striped.cells_per_row(), 48);
    }
}
