//! Striped MSV filter — HMMER 3.0's `p7_MSVFilter` (Farrar layout).
//!
//! Model position `k0` (0-based) lives in vector `q = k0 % Q`, lane
//! `z = k0 / Q`, with `Q = ⌈M/lanes⌉`. The diagonal dependency `k0−1 → k0`
//! is a plain previous-vector read for `q > 0` and a one-lane shift of the
//! row's last vector for `q = 0` — no per-cell branches, which is exactly
//! why HMMER's CPU filter needs *zero* synchronization and why the paper's
//! GPU kernel must also be sync-free to compete (§III).
//!
//! The inner row loop is backend-dispatched (see [`crate::backend`]):
//! a portable scalar reference, real SSE2 intrinsics over the same
//! 16-lane layout, and AVX2 intrinsics over a re-striped 32-lane layout
//! (`Q = ⌈M/32⌉`). Every backend's output is bit-identical to
//! [`msv_filter_scalar`](crate::quantized::msv_filter_scalar): the
//! recurrence is a pure dataflow of saturating adds and maxes, so the
//! per-cell values do not depend on which stripe a position lives in.

use crate::backend::Backend;
use crate::quantized::MsvOutcome;
use crate::simd::{adds_u8, hmax_u8, max_u8, shift_u8, splat_u8, subs_u8, ByteRow16};
use h3w_hmm::alphabet::{Residue, N_CODES};
use h3w_hmm::msvprofile::MsvProfile;

/// Lanes in the 128-bit byte pipeline (scalar and SSE2 backends).
pub const MSV_LANES: usize = 16;

/// Lanes in the 256-bit byte pipeline (AVX2 backend).
pub const MSV_LANES_AVX2: usize = 32;

/// AVX2 re-striped emission costs: `Q = ⌈M/32⌉` vectors of 32 bytes,
/// code-major, phantoms pinned to 255.
#[cfg(target_arch = "x86_64")]
#[derive(Debug, Clone)]
pub(crate) struct AvxMsv {
    /// Vectors per row: `⌈M/32⌉`.
    pub(crate) q: usize,
    /// `rbv[code * q + qi]`, 32-byte aligned rows.
    pub(crate) rbv: Vec<crate::x86::ByteRow32>,
}

/// Stripe an [`MsvProfile`]'s biased byte costs into the 16-lane layout
/// (`Q = ⌈M/16⌉`, code-major, phantoms pinned to 255). MSV and SSV share
/// the same emission tables, so both striped filters build from here.
pub(crate) fn stripe16(om: &MsvProfile) -> (usize, Vec<ByteRow16>) {
    let m = om.m;
    let q = m.div_ceil(MSV_LANES).max(1);
    let mut rbv = vec![ByteRow16([255u8; MSV_LANES]); N_CODES * q];
    for code in 0..N_CODES {
        for qi in 0..q {
            let vec = &mut rbv[code * q + qi].0;
            for (z, slot) in vec.iter_mut().enumerate() {
                let k0 = z * q + qi;
                if k0 < m {
                    *slot = om.cost(code as u8, k0);
                }
            }
        }
    }
    (q, rbv)
}

/// Stripe into the re-striped 32-lane AVX2 layout (`Q = ⌈M/32⌉`).
#[cfg(target_arch = "x86_64")]
pub(crate) fn stripe32(om: &MsvProfile) -> AvxMsv {
    let m = om.m;
    let q32 = m.div_ceil(MSV_LANES_AVX2).max(1);
    let mut rbv32 = vec![crate::x86::ByteRow32([255u8; MSV_LANES_AVX2]); N_CODES * q32];
    for code in 0..N_CODES {
        for qi in 0..q32 {
            let vec = &mut rbv32[code * q32 + qi].0;
            for (z, slot) in vec.iter_mut().enumerate() {
                let k0 = z * q32 + qi;
                if k0 < m {
                    *slot = om.cost(code as u8, k0);
                }
            }
        }
    }
    AvxMsv { q: q32, rbv: rbv32 }
}

/// A profile's MSV tables rearranged into the striped layout.
#[derive(Debug, Clone)]
pub struct StripedMsv {
    /// Model length.
    pub m: usize,
    /// Vectors per row in the 16-lane layout: `⌈M/16⌉`.
    pub q: usize,
    backend: Backend,
    pub(crate) base: u8,
    pub(crate) bias: u8,
    pub(crate) overflow_at: u8,
    /// Striped biased costs, code-major: `rbv[code * q + qi]`.
    /// Phantom positions (`k0 ≥ M`) cost 255, pinning them to the floor.
    pub(crate) rbv: Vec<ByteRow16>,
    #[cfg(target_arch = "x86_64")]
    pub(crate) avx: Option<AvxMsv>,
}

impl StripedMsv {
    /// Re-stripe an [`MsvProfile`] for the auto-detected backend.
    pub fn new(om: &MsvProfile) -> StripedMsv {
        StripedMsv::with_backend(om, Backend::detect())
    }

    /// Re-stripe for a specific backend (downgrades to scalar if the
    /// requested backend cannot run on this CPU).
    pub fn with_backend(om: &MsvProfile, backend: Backend) -> StripedMsv {
        let backend = if backend.available() {
            backend
        } else {
            Backend::Scalar
        };
        let (q, rbv) = stripe16(om);
        #[cfg(target_arch = "x86_64")]
        let avx = (backend == Backend::Avx2).then(|| stripe32(om));
        StripedMsv {
            m: om.m,
            q,
            backend,
            base: om.base,
            bias: om.bias,
            overflow_at: om.overflow_limit(),
            rbv,
            #[cfg(target_arch = "x86_64")]
            avx,
        }
    }

    /// The backend this instance dispatches to.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Stripe count of the table the dispatched backend actually walks:
    /// `⌈M/32⌉` under AVX2's re-striped 32-lane layout, `⌈M/16⌉`
    /// otherwise. Models may share a fused multi-profile pack only when
    /// this matches — the fused row loop walks one common `q`.
    pub fn active_q(&self) -> usize {
        #[cfg(target_arch = "x86_64")]
        if let Some(t) = self.avx.as_ref() {
            return t.q;
        }
        self.q
    }

    /// Score one sequence, reusing `dp` as the row buffer (resized as
    /// needed). Bit-identical to the scalar reference on every backend.
    pub fn run_into(
        &self,
        om: &MsvProfile,
        seq: &[Residue],
        dp: &mut Vec<ByteRow16>,
    ) -> MsvOutcome {
        match self.backend {
            Backend::Scalar => self.run_scalar(om, seq, dp),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: with_backend only selects Sse2/Avx2 when the CPU
            // reports the feature (SSE2 is the x86_64 baseline).
            Backend::Sse2 => unsafe { self.run_sse2(om, seq, dp) },
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => unsafe { self.run_avx2(om, seq, dp) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => self.run_scalar(om, seq, dp),
        }
    }

    /// Portable reference row loop (emulated 16-lane vectors).
    fn run_scalar(&self, om: &MsvProfile, seq: &[Residue], dp: &mut Vec<ByteRow16>) -> MsvOutcome {
        let q = self.q;
        let lc = om.len_costs(seq.len());
        dp.clear();
        dp.resize(q, ByteRow16::ZERO);

        let biasv = splat_u8(self.bias);
        let mut xj = 0u8;
        let mut xbv = splat_u8(self.base.saturating_sub(lc.tjbm));
        for &x in seq {
            let row = &self.rbv[x as usize * q..(x as usize + 1) * q];
            let mut xev = splat_u8(0);
            let mut mpv = shift_u8(dp[q - 1].0, 0);
            for (qi, rv) in row.iter().enumerate() {
                let sv = subs_u8(adds_u8(max_u8(mpv, xbv), biasv), rv.0);
                xev = max_u8(xev, sv);
                mpv = dp[qi].0;
                dp[qi] = ByteRow16(sv);
            }
            let xe = hmax_u8(xev);
            if xe >= self.overflow_at {
                return Self::overflow_outcome();
            }
            xj = xj.max(xe.saturating_sub(lc.tec));
            xbv = splat_u8(self.base.max(xj).saturating_sub(lc.tjbm));
        }
        MsvOutcome {
            xj,
            overflow: false,
            score: om.score_to_nats(xj, seq.len()),
        }
    }

    /// SSE2 row loop: identical 16-lane layout, real 128-bit intrinsics.
    #[cfg(target_arch = "x86_64")]
    unsafe fn run_sse2(
        &self,
        om: &MsvProfile,
        seq: &[Residue],
        dp: &mut Vec<ByteRow16>,
    ) -> MsvOutcome {
        use crate::x86::{hmax_epu8, loadu128, shl1_u8_128, storeu128};
        use core::arch::x86_64::*;

        let q = self.q;
        let lc = om.len_costs(seq.len());
        dp.clear();
        dp.resize(q, ByteRow16::ZERO);
        let dpb = dp.as_mut_ptr() as *mut u8;

        let biasv = _mm_set1_epi8(self.bias as i8);
        let mut xj = 0u8;
        let mut xbv = _mm_set1_epi8(self.base.saturating_sub(lc.tjbm) as i8);
        for &x in seq {
            let row = self.rbv.as_ptr().add(x as usize * q) as *const u8;
            let mut xev = _mm_setzero_si128();
            let mut mpv = shl1_u8_128(loadu128(dpb.add(16 * (q - 1))));
            for qi in 0..q {
                let rv = loadu128(row.add(16 * qi));
                let cur = loadu128(dpb.add(16 * qi));
                let sv = _mm_subs_epu8(_mm_adds_epu8(_mm_max_epu8(mpv, xbv), biasv), rv);
                xev = _mm_max_epu8(xev, sv);
                mpv = cur;
                storeu128(dpb.add(16 * qi), sv);
            }
            let xe = hmax_epu8(xev);
            if xe >= self.overflow_at {
                return Self::overflow_outcome();
            }
            xj = xj.max(xe.saturating_sub(lc.tec));
            xbv = _mm_set1_epi8(self.base.max(xj).saturating_sub(lc.tjbm) as i8);
        }
        MsvOutcome {
            xj,
            overflow: false,
            score: om.score_to_nats(xj, seq.len()),
        }
    }

    /// AVX2 row loop: re-striped 32-lane layout (`Q = ⌈M/32⌉`), 256-bit
    /// intrinsics. `dp` holds `2Q` 16-byte entries viewed as `Q` 32-byte
    /// vectors.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn run_avx2(
        &self,
        om: &MsvProfile,
        seq: &[Residue],
        dp: &mut Vec<ByteRow16>,
    ) -> MsvOutcome {
        use crate::x86::{align32, loadu256, shl1_u8_256, storeu256};
        use core::arch::x86_64::*;

        let t = self
            .avx
            .as_ref()
            .expect("AVX2 tables built at construction");
        let q = t.q;
        let lc = om.len_costs(seq.len());
        dp.clear();
        // Two spare 16-byte entries let the working pointer snap to a
        // 32-byte boundary so row loads/stores never split a cache line.
        dp.resize(2 * q + 2, ByteRow16::ZERO);
        let dpb = align32(dp.as_mut_ptr() as *mut u8);

        let biasv = _mm256_set1_epi8(self.bias as i8);
        let basev = _mm256_set1_epi8(self.base as i8);
        let tecv = _mm256_set1_epi8(lc.tec as i8);
        let tjbmv = _mm256_set1_epi8(lc.tjbm as i8);
        let overv = _mm256_set1_epi8(self.overflow_at as i8);
        // The xJ/xB feedback stays entirely in the vector domain (every
        // lane carries the same value): a GPR round-trip per row
        // (hmax → scalar max → broadcast) serializes rows on a ~10-cycle
        // chain, which dominates once Q is this small.
        let mut xjv = _mm256_setzero_si256();
        let mut xbv = _mm256_subs_epu8(basev, tjbmv);
        for &x in seq {
            let row = t.rbv.as_ptr().add(x as usize * q) as *const u8;
            let mut xev = _mm256_setzero_si256();
            let mut mpv = shl1_u8_256(loadu256(dpb.add(32 * (q - 1))));
            for qi in 0..q {
                let rv = loadu256(row.add(32 * qi));
                let cur = loadu256(dpb.add(32 * qi));
                let sv = _mm256_subs_epu8(_mm256_adds_epu8(_mm256_max_epu8(mpv, xbv), biasv), rv);
                xev = _mm256_max_epu8(xev, sv);
                mpv = cur;
                storeu256(dpb.add(32 * qi), sv);
            }
            // Unsigned `xe >= overflow_at` as a predicted-not-taken branch
            // off the critical path.
            let ge = _mm256_cmpeq_epi8(_mm256_max_epu8(xev, overv), xev);
            if _mm256_movemask_epi8(ge) != 0 {
                return Self::overflow_outcome();
            }
            // Broadcast-hmax of xev: swap 128-bit halves, then rotate
            // within each half — every lane ends up holding max(xev).
            let mut a = _mm256_max_epu8(xev, _mm256_permute2x128_si256::<0x01>(xev, xev));
            a = _mm256_max_epu8(a, _mm256_alignr_epi8::<8>(a, a));
            a = _mm256_max_epu8(a, _mm256_alignr_epi8::<4>(a, a));
            a = _mm256_max_epu8(a, _mm256_alignr_epi8::<2>(a, a));
            a = _mm256_max_epu8(a, _mm256_alignr_epi8::<1>(a, a));
            xjv = _mm256_max_epu8(xjv, _mm256_subs_epu8(a, tecv));
            xbv = _mm256_subs_epu8(_mm256_max_epu8(basev, xjv), tjbmv);
        }
        let xj = _mm256_extract_epi8::<0>(xjv) as u8;
        MsvOutcome {
            xj,
            overflow: false,
            score: om.score_to_nats(xj, seq.len()),
        }
    }

    fn overflow_outcome() -> MsvOutcome {
        MsvOutcome {
            xj: 255,
            overflow: true,
            score: MsvProfile::overflow_score(),
        }
    }

    /// Score one sequence with a fresh row buffer.
    pub fn run(&self, om: &MsvProfile, seq: &[Residue]) -> MsvOutcome {
        let mut dp = Vec::new();
        self.run_into(om, seq, &mut dp)
    }

    /// DP cells *computed* per residue row — `lanes · Q`, **including**
    /// striping phantoms. This is the work the hardware actually performs,
    /// the right denominator for calibration against measured kernel time.
    /// Never mix it with [`Self::real_cells_per_row`] (the `M` cells the
    /// sweep accounting reports).
    pub fn padded_cells_per_row(&self) -> usize {
        match self.backend {
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => {
                MSV_LANES_AVX2
                    * self
                        .avx
                        .as_ref()
                        .map(|t| t.q)
                        .unwrap_or_else(|| self.m.div_ceil(MSV_LANES_AVX2).max(1))
            }
            _ => MSV_LANES * self.q,
        }
    }

    /// DP cells *meaningful* per residue row — exactly `M`, excluding
    /// striping phantoms. This is the denominator the database sweeps
    /// report ([`crate::sweep::SweepTiming::real_cells`]).
    pub fn real_cells_per_row(&self) -> usize {
        self.m
    }

    /// Estimated bytes the kernel moves per residue row: one striped
    /// emission-table row read plus one DP-row read and write, at one
    /// byte per cell. Feeds the `bytes_moved` bandwidth counters in
    /// pipeline telemetry (an analytic lower bound — register traffic
    /// and cache refills are not modeled).
    pub fn bytes_per_row(&self) -> u64 {
        3 * self.padded_cells_per_row() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantized::msv_filter_scalar;
    use h3w_hmm::background::NullModel;
    use h3w_hmm::build::{synthetic_model, BuildParams};
    use h3w_hmm::calibrate::random_seq;
    use h3w_hmm::profile::Profile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn om(m: usize, seed: u64) -> MsvProfile {
        let bg = NullModel::new();
        let core = synthetic_model(m, seed, &BuildParams::default());
        MsvProfile::from_profile(&Profile::config(&core, &bg))
    }

    #[test]
    fn bit_exact_vs_scalar_over_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        // Sizes around both striping boundaries (16 and 32 lanes).
        for m in [1usize, 3, 15, 16, 17, 31, 32, 33, 48, 100, 257] {
            let om = om(m, m as u64);
            for backend in Backend::all_available() {
                let striped = StripedMsv::with_backend(&om, backend);
                for len in [1usize, 7, 50, 300] {
                    let seq = random_seq(&mut rng, len);
                    let a = msv_filter_scalar(&om, &seq);
                    let b = striped.run(&om, &seq);
                    assert_eq!(a, b, "backend={backend} m={m} len={len}");
                }
            }
        }
    }

    #[test]
    fn overflow_agrees_with_scalar() {
        // A strongly matching homolog against a long conserved model should
        // eventually overflow both implementations identically.
        let bg = NullModel::new();
        let core = synthetic_model(120, 3, &BuildParams::default());
        let p = Profile::config(&core, &bg);
        let om = MsvProfile::from_profile(&p);
        let mut rng = StdRng::seed_from_u64(5);
        let mut hom = Vec::new();
        for _ in 0..4 {
            hom.extend(h3w_seqdb::gen::sample_homolog(&mut rng, &core, 3));
        }
        let a = msv_filter_scalar(&om, &hom);
        for backend in Backend::all_available() {
            let b = StripedMsv::with_backend(&om, backend).run(&om, &hom);
            assert_eq!(a, b, "backend={backend}");
        }
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let om = om(40, 9);
        for backend in Backend::all_available() {
            let striped = StripedMsv::with_backend(&om, backend);
            let mut rng = StdRng::seed_from_u64(10);
            let s1 = random_seq(&mut rng, 100);
            let s2 = random_seq(&mut rng, 60);
            let mut dp = Vec::new();
            let first = striped.run_into(&om, &s1, &mut dp);
            let second = striped.run_into(&om, &s2, &mut dp);
            assert_eq!(first, striped.run(&om, &s1), "backend={backend}");
            assert_eq!(second, striped.run(&om, &s2), "backend={backend}");
        }
    }

    #[test]
    fn stripe_geometry() {
        let om = om(33, 2);
        let striped = StripedMsv::with_backend(&om, Backend::Scalar);
        assert_eq!(striped.q, 3); // ceil(33/16)
        assert_eq!(striped.padded_cells_per_row(), 48);
        assert_eq!(striped.real_cells_per_row(), 33);
    }

    #[test]
    fn unavailable_backend_downgrades_to_scalar() {
        let om = om(20, 4);
        #[cfg(not(target_arch = "x86_64"))]
        assert_eq!(
            StripedMsv::with_backend(&om, Backend::Avx2).backend(),
            Backend::Scalar
        );
        #[cfg(target_arch = "x86_64")]
        {
            let s = StripedMsv::with_backend(&om, Backend::Sse2);
            assert_eq!(s.backend(), Backend::Sse2);
        }
    }
}
