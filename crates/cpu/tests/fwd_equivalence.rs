//! Property tests for the striped odds-space Forward filter.
//!
//! Three oracles pin the kernel down:
//!
//! 1. **Exact log-space Forward** (`forward_exact` below, `ln(a+b)` with
//!    no flogsum table) — the striped filter must agree to < 1e-3 nats.
//! 2. **`forward_generic`** — the repo's table-driven reference. Its
//!    flogsum quantization bias grows ~logarithmically with sequence
//!    length (measured: 0.004 nats at L=1 up to 0.08 at L=3000), so the
//!    tolerance here is the measured envelope, not a constant.
//! 3. **`viterbi_filter_model`** — the single best path can never score
//!    above the sum over all paths.
//!
//! On top of the accuracy bars: bit-identical scores across every
//! available SIMD backend, every batch width, and workspace reuse —
//! the invariants the pipeline's cross-backend hit-equality rests on.

use h3w_cpu::reference::{forward_generic, logsum, viterbi_filter_model};
use h3w_cpu::striped_fwd::{FwdBatchWorkspace, FwdWorkspace, StripedFwd};
use h3w_cpu::{Backend, MAX_BATCH};
use h3w_hmm::build::{synthetic_model, BuildParams};
use h3w_hmm::calibrate::random_seq;
use h3w_hmm::profile::{Profile, NEG_INF};
use h3w_hmm::NullModel;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn profile(m: usize, seed: u64) -> Profile {
    let bg = NullModel::new();
    Profile::config(&synthetic_model(m, seed, &BuildParams::default()), &bg)
}

/// The measured flogsum-bias envelope of `forward_generic` (see
/// DESIGN.md): the striped filter sits within ~1e-4 nats of the exact
/// recurrence, so the gap to the generic reference is the reference's
/// own table error.
fn generic_envelope(len: usize) -> f32 {
    0.012 + 0.014 * (1.0 + len as f32).ln()
}

/// Forward with exact `ln(exp(a)+exp(b))` summation — no flogsum table,
/// no odds-space trick. Slow, but the unbiased truth anchor.
fn forward_exact(p: &Profile, seq: &[u8]) -> f32 {
    let m = p.m;
    let xs = p.specials_for(seq.len());
    let mut dpm = vec![NEG_INF; m + 1];
    let mut dpi = vec![NEG_INF; m + 1];
    let mut dpd = vec![NEG_INF; m + 1];
    let mut xn = 0.0f32;
    let mut xj = NEG_INF;
    let mut xc = NEG_INF;
    let mut xb = xn + xs.move_sc;
    for &x in seq {
        let mut xe = NEG_INF;
        let (mut diag_m, mut diag_i, mut diag_d) = (NEG_INF, NEG_INF, NEG_INF);
        let (mut cur_m, mut cur_d) = (NEG_INF, NEG_INF);
        for k in 1..=m {
            let (old_m, old_i, old_d) = (dpm[k], dpi[k], dpd[k]);
            let mut mv = xb + p.bmk[k];
            mv = logsum(mv, diag_m + p.tmm[k - 1]);
            mv = logsum(mv, diag_i + p.tim[k - 1]);
            mv = logsum(mv, diag_d + p.tdm[k - 1]);
            mv += p.msc[k][x as usize];
            let iv = if k < m {
                logsum(old_m + p.tmi[k], old_i + p.tii[k])
            } else {
                NEG_INF
            };
            let dv = logsum(cur_m + p.tmd[k - 1], cur_d + p.tdd[k - 1]);
            xe = logsum(xe, mv);
            diag_m = old_m;
            diag_i = old_i;
            diag_d = old_d;
            dpm[k] = mv;
            dpi[k] = iv;
            dpd[k] = dv;
            cur_m = mv;
            cur_d = dv;
        }
        xj = logsum(xj + xs.loop_sc, xe + xs.e_to_j);
        xc = logsum(xc + xs.loop_sc, xe + xs.e_to_c);
        xn += xs.loop_sc;
        xb = logsum(xn, xj) + xs.move_sc;
    }
    xc + xs.move_sc
}

#[test]
fn striped_matches_exact_forward_under_1e3_nats() {
    // The ISSUE acceptance bar, against the exact recurrence. Lengths are
    // kept moderate because forward_exact is O(L·M) ln/exp calls.
    for (m, seed) in [(1usize, 2u64), (4, 3), (15, 5), (33, 7), (80, 11)] {
        let p = profile(m, seed);
        let f = StripedFwd::new(&p);
        let mut rng = StdRng::seed_from_u64(seed * 17);
        for len in [1usize, 2, 7, 40, 150, 400] {
            let seq = random_seq(&mut rng, len);
            let exact = forward_exact(&p, &seq);
            let striped = f.run(&p, &seq);
            assert!(
                (striped - exact).abs() < 1e-3,
                "m={m} len={len}: striped {striped} vs exact {exact}"
            );
        }
    }
}

#[test]
fn striped_tracks_generic_within_measured_envelope() {
    for (m, seed) in [(1usize, 2u64), (7, 3), (25, 5), (64, 7), (130, 11)] {
        let p = profile(m, seed);
        let f = StripedFwd::new(&p);
        let mut rng = StdRng::seed_from_u64(seed * 29);
        for len in [1usize, 3, 10, 40, 100, 300, 1000] {
            let seq = random_seq(&mut rng, len);
            let generic = forward_generic(&p, &seq);
            let striped = f.run(&p, &seq);
            let budget = generic_envelope(len);
            assert!(
                (striped - generic).abs() < budget,
                "m={m} len={len}: striped {striped} vs generic {generic} (budget {budget})"
            );
        }
    }
}

#[test]
fn viterbi_never_beats_forward() {
    // Sum over all paths ≥ single best path, up to float slack.
    for (m, seed) in [(5usize, 1u64), (40, 9), (90, 13)] {
        let p = profile(m, seed);
        let f = StripedFwd::new(&p);
        let mut rng = StdRng::seed_from_u64(seed);
        for len in [1usize, 25, 200, 800] {
            let seq = random_seq(&mut rng, len);
            let vit = viterbi_filter_model(&p, &seq);
            let fwd = f.run(&p, &seq);
            assert!(
                vit <= fwd + 1e-3,
                "m={m} len={len}: viterbi {vit} > forward {fwd}"
            );
        }
    }
}

#[test]
fn degenerate_inputs() {
    let p = profile(10, 4);
    let f = StripedFwd::new(&p);
    // Empty sequence: no residue ever reaches C, score is −∞.
    assert_eq!(f.run(&p, &[]), NEG_INF);
    // Single-node model × single-residue sequence still agrees with the
    // exact recurrence.
    let p1 = profile(1, 6);
    let f1 = StripedFwd::new(&p1);
    for len in [1usize, 2, 30] {
        let mut rng = StdRng::seed_from_u64(len as u64);
        let seq = random_seq(&mut rng, len);
        let got = f1.run(&p1, &seq);
        let want = forward_exact(&p1, &seq);
        assert!((got - want).abs() < 1e-3, "len {len}: {got} vs {want}");
    }
    // Length ≫ M drives the odds recurrence through many renormalizations
    // — the score must stay finite and near the exact value.
    let mut rng = StdRng::seed_from_u64(99);
    let seq = random_seq(&mut rng, 5000);
    let p_small = profile(3, 8);
    let f_small = StripedFwd::new(&p_small);
    let got = f_small.run(&p_small, &seq);
    assert!(got.is_finite(), "len≫M score must be finite, got {got}");
    let want = forward_exact(&p_small, &seq);
    assert!((got - want).abs() < 1e-2, "len≫M: {got} vs {want}");
}

/// Every backend, every batch width, and fresh-vs-reused workspaces must
/// produce the same bits.
fn assert_all_paths_bit_identical(p: &Profile, seqs: &[Vec<u8>]) -> Result<(), TestCaseError> {
    let scalar = StripedFwd::with_backend(p, Backend::Scalar);
    let mut ws = FwdWorkspace::default();
    let base: Vec<f32> = seqs
        .iter()
        .map(|s| scalar.run_into(p, s, &mut ws))
        .collect();
    for backend in Backend::all_available() {
        let f = StripedFwd::with_backend(p, backend);
        // Single-sequence path, reused workspace.
        let mut ws = FwdWorkspace::default();
        for (seq, &want) in seqs.iter().zip(&base) {
            let got = f.run_into(p, seq, &mut ws);
            prop_assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{} single: {} vs {}",
                backend,
                got,
                want
            );
        }
        // Batched path at every width.
        let mut bws = FwdBatchWorkspace::default();
        for width in 1..=MAX_BATCH {
            for (chunk, want) in seqs.chunks(width).zip(base.chunks(width)) {
                let refs: Vec<&[u8]> = chunk.iter().map(|s| s.as_slice()).collect();
                let mut out = vec![0.0f32; refs.len()];
                f.run_batch_into(p, &refs, &mut bws, &mut out);
                for (got, &w) in out.iter().zip(want) {
                    prop_assert_eq!(
                        got.to_bits(),
                        w.to_bits(),
                        "{} width {}: {} vs {}",
                        backend,
                        width,
                        got,
                        w
                    );
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_backends_and_widths_bit_identical(
        m in 1usize..70,
        seed in 0u64..1000,
        lens in prop::collection::vec(0usize..300, 1..6),
    ) {
        let p = profile(m, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let seqs: Vec<Vec<u8>> = lens.iter().map(|&l| random_seq(&mut rng, l)).collect();
        assert_all_paths_bit_identical(&p, &seqs)?;
    }

    #[test]
    fn striped_stays_in_the_generic_envelope(
        m in 1usize..70,
        seed in 0u64..1000,
        len in 0usize..500,
    ) {
        let p = profile(m, seed);
        let f = StripedFwd::new(&p);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
        let seq = random_seq(&mut rng, len);
        let striped = f.run(&p, &seq);
        if len == 0 {
            prop_assert_eq!(striped, NEG_INF);
        } else {
            let generic = forward_generic(&p, &seq);
            let budget = generic_envelope(len);
            prop_assert!(
                (striped - generic).abs() < budget,
                "m={} len={}: striped {} vs generic {} (budget {})",
                m, len, striped, generic, budget
            );
            let vit = viterbi_filter_model(&p, &seq);
            prop_assert!(vit <= striped + 1e-3, "viterbi {} > forward {}", vit, striped);
        }
    }
}
