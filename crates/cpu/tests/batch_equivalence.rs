//! Property tests: the batched interleaved MSV/SSV kernels are bit-identical
//! to the single-sequence kernels — scores, overflow flags, `xJ` state —
//! across every available backend, every batch width `1..=MAX_BATCH`, and
//! the hard cases: overflowing slots dropping out mid-batch, length-skewed
//! batches where slots retire one by one, and empty/degenerate sequences.
//!
//! The CI equivalence job runs this file twice: natively (AVX2/SSE2 where
//! the runner has them) and under `H3W_SIMD_BACKEND=scalar`.

use h3w_cpu::striped_msv::StripedMsv;
use h3w_cpu::{
    length_binned_batches, msv_filter_scalar, msv_outcomes_batched, ssv_filter_scalar,
    ssv_outcomes_batched, Backend, BatchWorkspace, MsvOutcome, StripedSsv, MAX_BATCH,
};
use h3w_hmm::build::{synthetic_model, BuildParams};
use h3w_hmm::calibrate::random_seq;
use h3w_hmm::msvprofile::MsvProfile;
use h3w_hmm::plan7::CoreModel;
use h3w_hmm::profile::Profile;
use h3w_hmm::NullModel;
use h3w_seqdb::gen::sample_homolog;
use h3w_seqdb::DigitalSeq;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn model_and_profile(m: usize, seed: u64) -> (CoreModel, MsvProfile) {
    let bg = NullModel::new();
    let core = synthetic_model(m, seed, &BuildParams::default());
    let p = Profile::config(&core, &bg);
    let om = MsvProfile::from_profile(&p);
    (core, om)
}

fn bits(o: &MsvOutcome) -> (u8, bool, u32) {
    (o.xj, o.overflow, o.score.to_bits())
}

/// Score `seqs` through the batched kernel at `width` on `backend` and
/// assert every outcome matches the scalar single-sequence references.
fn assert_batched_matches(
    om: &MsvProfile,
    seqs: &[Vec<u8>],
    backend: Backend,
    width: usize,
    ctx: &str,
) -> Result<(), TestCaseError> {
    let smsv = StripedMsv::with_backend(om, backend);
    let sssv = StripedSsv::with_backend(om, backend);
    let mut ws = BatchWorkspace::default();
    for batch in seqs.chunks(width) {
        let refs: Vec<&[u8]> = batch.iter().map(|s| s.as_slice()).collect();
        let mut got_msv = vec![
            MsvOutcome {
                xj: 0,
                overflow: false,
                score: 0.0
            };
            refs.len()
        ];
        let mut got_ssv = got_msv.clone();
        smsv.run_batch_into(om, &refs, &mut ws, &mut got_msv);
        sssv.run_batch_into(om, &refs, &mut ws, &mut got_ssv);
        for (i, seq) in batch.iter().enumerate() {
            let want_msv = msv_filter_scalar(om, seq);
            let want_ssv = ssv_filter_scalar(om, seq);
            prop_assert_eq!(
                bits(&want_msv),
                bits(&got_msv[i]),
                "MSV {} S={} slot {} len {} diverged ({ctx})",
                backend,
                width,
                i,
                seq.len()
            );
            prop_assert_eq!(
                bits(&want_ssv),
                bits(&got_ssv[i]),
                "SSV {} S={} slot {} len {} diverged ({ctx})",
                backend,
                width,
                i,
                seq.len()
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batched_kernels_bit_identical_for_random_batches(
        m in 1usize..300,
        model_seed in 0u64..10_000,
        seq_seed in 0u64..10_000,
    ) {
        let (_, om) = model_and_profile(m, model_seed);
        let mut rng = StdRng::seed_from_u64(seq_seed);
        // Length-skewed on purpose: slots retire at different rows, so the
        // fused loop re-dispatches at every narrower width.
        let seqs: Vec<Vec<u8>> = (0..MAX_BATCH)
            .map(|i| random_seq(&mut rng, 3 + 97 * i * i))
            .collect();
        for backend in Backend::all_available() {
            for width in 1..=MAX_BATCH {
                assert_batched_matches(&om, &seqs, backend, width, "random")?;
            }
        }
    }

    #[test]
    fn overflowing_homologs_interleaved_with_background(
        m in 40usize..160,
        seq_seed in 0u64..10_000,
    ) {
        // Repeated homolog segments push the 8-bit MSV score into
        // saturation; the overflowing slot must retire without nudging the
        // background sequences sharing its batch.
        let (core, om) = model_and_profile(m, 11);
        let mut rng = StdRng::seed_from_u64(seq_seed);
        let mut hot = Vec::new();
        for _ in 0..6 {
            hot.extend(sample_homolog(&mut rng, &core, 3));
        }
        let seqs = vec![
            random_seq(&mut rng, 240),
            hot,
            random_seq(&mut rng, 60),
            random_seq(&mut rng, 400),
        ];
        for backend in Backend::all_available() {
            for width in 2..=MAX_BATCH {
                assert_batched_matches(&om, &seqs, backend, width, "overflow")?;
            }
        }
    }

    #[test]
    fn pipelined_batches_bit_identical_at_every_depth(
        m in 1usize..300,
        model_seed in 0u64..10_000,
        seq_seed in 0u64..10_000,
    ) {
        // The software-pipeline depth only changes the prefetch distance
        // of the fused loop — outcomes must stay bit-identical to the
        // scalar references at every depth, including depths deeper than
        // the batch is wide.
        let (_, om) = model_and_profile(m, model_seed);
        let mut rng = StdRng::seed_from_u64(seq_seed);
        let seqs: Vec<Vec<u8>> = (0..MAX_BATCH)
            .map(|i| random_seq(&mut rng, 3 + 97 * i * i))
            .collect();
        let refs: Vec<&[u8]> = seqs.iter().map(|s| s.as_slice()).collect();
        for backend in Backend::all_available() {
            let smsv = StripedMsv::with_backend(&om, backend);
            let sssv = StripedSsv::with_backend(&om, backend);
            let mut ws = BatchWorkspace::default();
            for depth in [0usize, 1, 2, 4, 8] {
                let mut got_msv = vec![
                    MsvOutcome { xj: 0, overflow: false, score: 0.0 };
                    refs.len()
                ];
                let mut got_ssv = got_msv.clone();
                smsv.run_batch_pipelined_into(&om, &refs, &mut ws, &mut got_msv, depth);
                sssv.run_batch_pipelined_into(&om, &refs, &mut ws, &mut got_ssv, depth);
                for (i, seq) in seqs.iter().enumerate() {
                    prop_assert_eq!(
                        bits(&msv_filter_scalar(&om, seq)),
                        bits(&got_msv[i]),
                        "MSV {} depth {} slot {} diverged",
                        backend, depth, i
                    );
                    prop_assert_eq!(
                        bits(&ssv_filter_scalar(&om, seq)),
                        bits(&got_ssv[i]),
                        "SSV {} depth {} slot {} diverged",
                        backend, depth, i
                    );
                }
            }
        }
    }

    #[test]
    fn masked_batched_sweep_matches_filters(
        m in 1usize..200,
        seq_seed in 0u64..10_000,
        mask_bits in 0u32..(1 << 10),
    ) {
        // The full scheduler path: mask → length bins → batched kernels →
        // scatter back to input order.
        let (_, om) = model_and_profile(m, 7);
        let mut rng = StdRng::seed_from_u64(seq_seed);
        let seqs: Vec<DigitalSeq> = (0..10)
            .map(|i| DigitalSeq {
                name: format!("s{i}"),
                desc: String::new(),
                residues: random_seq(&mut rng, 11 + 53 * i),
            })
            .collect();
        let mask: Vec<bool> = (0..10).map(|i| mask_bits & (1 << i) != 0).collect();
        let striped_msv = StripedMsv::new(&om);
        let striped_ssv = StripedSsv::new(&om);
        let pool = h3w_cpu::ThreadPool::global();
        let got_msv = msv_outcomes_batched(pool, &striped_msv, &om, &seqs, Some(&mask), 0);
        let got_ssv = ssv_outcomes_batched(pool, &striped_ssv, &om, &seqs, Some(&mask), 0);
        for i in 0..10 {
            prop_assert_eq!(got_msv[i].is_some(), mask[i]);
            prop_assert_eq!(got_ssv[i].is_some(), mask[i]);
            if let Some(o) = &got_msv[i] {
                prop_assert_eq!(bits(&msv_filter_scalar(&om, &seqs[i].residues)), bits(o));
            }
            if let Some(o) = &got_ssv[i] {
                prop_assert_eq!(bits(&ssv_filter_scalar(&om, &seqs[i].residues)), bits(o));
            }
        }
    }

    #[test]
    fn length_binning_is_a_permutation_of_the_selection(
        n in 0usize..40,
        width in 1usize..=MAX_BATCH,
        mask_seed in 0u64..1000,
        len_seed in 0u64..1000,
    ) {
        use rand::Rng;
        let mut lrng = StdRng::seed_from_u64(len_seed);
        let lens: Vec<usize> = (0..n).map(|_| lrng.gen_range(0..5000)).collect();
        let mut mrng = StdRng::seed_from_u64(mask_seed);
        let mask: Vec<bool> = (0..n).map(|_| mrng.gen_bool(0.5)).collect();
        let batches = length_binned_batches(&lens, Some(&mask), width);
        let mut seen: Vec<usize> = batches.iter().flatten().copied().collect();
        for b in &batches {
            prop_assert!(!b.is_empty() && b.len() <= width);
            // Within a batch, lengths are non-increasing (lockstep bins).
            for w in b.windows(2) {
                prop_assert!(lens[w[0]] >= lens[w[1]]);
            }
        }
        seen.sort_unstable();
        let want: Vec<usize> = (0..n).filter(|&i| mask[i]).collect();
        prop_assert_eq!(seen, want);
    }
}

#[test]
fn degenerate_batches_match_single_sequence() {
    // Empty sequences, width-1 batches, all-empty batches, and a batch
    // whose members differ in length by 1000× — the retire logic's edge
    // cases, exercised on every backend.
    let (_, om) = model_and_profile(33, 5);
    let mut rng = StdRng::seed_from_u64(99);
    let long = random_seq(&mut rng, 50_000);
    let sets: Vec<Vec<Vec<u8>>> = vec![
        vec![vec![], vec![], vec![], vec![]],
        vec![vec![0u8], vec![], vec![19u8], vec![]],
        vec![long.clone(), random_seq(&mut rng, 50), vec![7u8], vec![]],
    ];
    for backend in Backend::all_available() {
        for seqs in &sets {
            for width in 1..=MAX_BATCH {
                assert_batched_matches(&om, seqs, backend, width, "degenerate")
                    .unwrap_or_else(|e| panic!("{e}"));
            }
        }
    }
}
