//! Property tests: every SIMD backend is bit-identical to the scalar
//! reference for the striped MSV and P7Viterbi filters — scores, overflow
//! flags, and the survivor sets they induce — across model sizes that
//! straddle both the 16/32-lane (MSV) and 8/16-lane (Viterbi) stripe
//! boundaries, and across degenerate sequences (empty, single-residue,
//! longer than 64 KiB).

use h3w_cpu::striped_msv::StripedMsv;
use h3w_cpu::striped_vit::{StripedVit, VitWorkspace};
use h3w_cpu::Backend;
use h3w_hmm::build::{synthetic_model, BuildParams};
use h3w_hmm::calibrate::random_seq;
use h3w_hmm::msvprofile::MsvProfile;
use h3w_hmm::profile::Profile;
use h3w_hmm::vitprofile::VitProfile;
use h3w_hmm::NullModel;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn profiles(m: usize, seed: u64) -> (MsvProfile, VitProfile) {
    let bg = NullModel::new();
    let core = synthetic_model(m, seed, &BuildParams::default());
    let p = Profile::config(&core, &bg);
    (MsvProfile::from_profile(&p), VitProfile::from_profile(&p))
}

/// Assert every available backend reproduces the scalar outcome on `seq`,
/// bit for bit.
fn assert_backends_match(
    msv: &MsvProfile,
    vit: &VitProfile,
    seq: &[u8],
    ctx: &str,
) -> Result<(), TestCaseError> {
    let smsv = StripedMsv::with_backend(msv, Backend::Scalar);
    let svit = StripedVit::with_backend(vit, Backend::Scalar);
    let mut dp = Vec::new();
    let mut ws = VitWorkspace::default();
    let m0 = smsv.run_into(msv, seq, &mut dp);
    let v0 = svit.run_into(vit, seq, &mut ws).0;
    for backend in Backend::all_available() {
        if backend == Backend::Scalar {
            continue;
        }
        let mb = StripedMsv::with_backend(msv, backend).run_into(msv, seq, &mut dp);
        let vb = StripedVit::with_backend(vit, backend)
            .run_into(vit, seq, &mut ws)
            .0;
        prop_assert_eq!(
            (m0.xj, m0.overflow, m0.score.to_bits()),
            (mb.xj, mb.overflow, mb.score.to_bits()),
            "MSV {} vs scalar diverged ({ctx})",
            backend
        );
        prop_assert_eq!(
            (v0.xc, v0.score.to_bits()),
            (vb.xc, vb.score.to_bits()),
            "Viterbi {} vs scalar diverged ({ctx})",
            backend
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn filters_bit_identical_across_backends(
        m in 1usize..400,
        model_seed in 0u64..10_000,
        seq_seed in 0u64..10_000,
        len in 0usize..600,
    ) {
        let (msv, vit) = profiles(m, model_seed);
        let seq = random_seq(&mut StdRng::seed_from_u64(seq_seed), len);
        assert_backends_match(&msv, &vit, &seq, &format!("m={m} len={len}"))?;
    }

    #[test]
    fn survivor_sets_identical_across_backends(
        m in 1usize..200,
        seq_seed in 0u64..10_000,
    ) {
        // A batch of sequences thresholded on the MSV/Viterbi scores must
        // select the same survivors under every backend.
        let (msv, vit) = profiles(m, 17);
        let mut rng = StdRng::seed_from_u64(seq_seed);
        let seqs: Vec<Vec<u8>> = (0..24).map(|i| random_seq(&mut rng, 20 + 13 * i)).collect();
        let mask = |backend: Backend| -> (Vec<bool>, Vec<bool>) {
            let smsv = StripedMsv::with_backend(&msv, backend);
            let svit = StripedVit::with_backend(&vit, backend);
            let mut dp = Vec::new();
            let mut ws = VitWorkspace::default();
            let ms: Vec<f32> = seqs.iter().map(|s| smsv.run_into(&msv, s, &mut dp).score).collect();
            let vs: Vec<f32> = seqs.iter().map(|s| svit.run_into(&vit, s, &mut ws).0.score).collect();
            // Median split: roughly half the batch "survives" each stage,
            // so a single flipped score is certain to flip a mask bit.
            let median = |xs: &[f32]| {
                let mut v = xs.to_vec();
                v.sort_by(f32::total_cmp);
                v[v.len() / 2]
            };
            let (tm, tv) = (median(&ms), median(&vs));
            (
                ms.iter().map(|&s| s >= tm).collect(),
                vs.iter().map(|&s| s >= tv).collect(),
            )
        };
        let scalar = mask(Backend::Scalar);
        for backend in Backend::all_available() {
            prop_assert_eq!(&scalar, &mask(backend), "survivors diverged under {}", backend);
        }
    }
}

#[test]
fn degenerate_sequences_match_across_backends() {
    // Empty input, a single residue, and a > 64 KiB sequence — the cases
    // that stress workspace sizing, the q=0 wrap, and overflow handling.
    let mut rng = StdRng::seed_from_u64(99);
    let long = random_seq(&mut rng, 70_000);
    for m in [1usize, 16, 31, 32, 33, 257] {
        let (msv, vit) = profiles(m, 5);
        for seq in [&[][..], &[0u8][..], &[19u8][..], &long[..]] {
            assert_backends_match(&msv, &vit, seq, &format!("m={m} len={}", seq.len()))
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }
}

#[test]
fn forced_backend_env_var_is_honored() {
    // H3W_SIMD_BACKEND is read once (OnceLock) — spawn a child test run
    // would be heavy, so just check from_name round-trips the accepted
    // spellings used by the env override.
    for (name, want) in [
        ("scalar", Backend::Scalar),
        ("sse2", Backend::Sse2),
        ("avx2", Backend::Avx2),
    ] {
        assert_eq!(Backend::from_name(name), Some(want));
    }
    assert_eq!(Backend::from_name("neon"), None);
}
