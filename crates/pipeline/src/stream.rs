//! Memory-bounded streaming search.
//!
//! The paper's Env_nr workload is 1.29 G residues — comfortably more than
//! one wants resident while also holding DP buffers. [`search_chunked`]
//! sweeps a database in bounded-size chunks (each chunk swept with the
//! normal parallel pipeline — batched filters and the striped odds-space
//! Forward for stage 3), merging per-chunk survivors and keeping
//! E-values global (P-values scale by the *total* database size, exactly
//! as a single-pass run would).
//!
//! [`FastaChunks`] drives the same flow straight from FASTA text without
//! materializing the whole database. [`search_chunked_checkpointed`]
//! persists the sweep state after every chunk so a killed process resumes
//! where it left off with bit-identical results.

use crate::checkpoint::{CheckpointError, StreamCheckpoint};
use crate::report::{Hit, PipelineResult, StageStats};
use crate::run::{ExecPlan, Pipeline};
use h3w_seqdb::fasta::FastaError;
use h3w_seqdb::{DigitalSeq, SeqDb};
use h3w_trace::Trace;
use std::path::Path;

/// Iterator over bounded-residue chunks of a FASTA text.
pub struct FastaChunks<'a> {
    lines: std::str::Lines<'a>,
    pending: Option<DigitalSeq>,
    max_residues: u64,
    line_no: usize,
    done: bool,
}

impl<'a> FastaChunks<'a> {
    /// Chunk `text` into databases of at most `max_residues` residues
    /// (each chunk holds whole sequences; a single longer sequence forms
    /// its own chunk).
    pub fn new(text: &'a str, max_residues: u64) -> FastaChunks<'a> {
        assert!(max_residues > 0);
        FastaChunks {
            lines: text.lines(),
            pending: None,
            max_residues,
            line_no: 0,
            done: false,
        }
    }
}

impl<'a> Iterator for FastaChunks<'a> {
    type Item = Result<SeqDb, FastaError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let mut db = SeqDb::new("chunk");
        let mut residues: u64 = 0;
        // Resume the record whose header closed the previous chunk.
        let mut current: Option<DigitalSeq> = self.pending.take();
        loop {
            let Some(line) = self.lines.next() else {
                self.done = true;
                break;
            };
            self.line_no += 1;
            let line = line.trim_end();
            if line.is_empty() || line.starts_with(';') {
                continue;
            }
            if let Some(header) = line.strip_prefix('>') {
                // Finish the previous record.
                if let Some(seq) = current.take() {
                    if seq.residues.is_empty() {
                        return Some(Err(FastaError::EmptyRecord { name: seq.name }));
                    }
                    residues += seq.len() as u64;
                    db.seqs.push(seq);
                }
                let mut parts = header.splitn(2, char::is_whitespace);
                current = Some(DigitalSeq {
                    name: parts.next().unwrap_or("").to_string(),
                    desc: parts.next().unwrap_or("").trim().to_string(),
                    residues: Vec::new(),
                });
                // Chunk boundary between records: the fresh (still empty)
                // record carries into the next chunk.
                if residues >= self.max_residues {
                    self.pending = current.take();
                    break;
                }
            } else {
                let Some(seq) = current.as_mut() else {
                    return Some(Err(FastaError::DataBeforeHeader { line: self.line_no }));
                };
                for ch in line.chars() {
                    if ch.is_whitespace() {
                        continue;
                    }
                    match h3w_hmm::alphabet::digitize(ch) {
                        Ok(code) if !h3w_hmm::alphabet::is_gap(code) => seq.residues.push(code),
                        _ => {
                            return Some(Err(FastaError::BadResidue {
                                line: self.line_no,
                                ch,
                            }))
                        }
                    }
                }
            }
        }
        if self.done {
            if let Some(seq) = current.take() {
                if seq.residues.is_empty() {
                    return Some(Err(FastaError::EmptyRecord { name: seq.name }));
                }
                db.seqs.push(seq);
            }
        }
        if db.seqs.is_empty() {
            self.done = true;
            None
        } else {
            Some(Ok(db))
        }
    }
}

/// Sweep pre-chunked databases and merge results. `total_seqs` fixes the
/// E-value scale (the full database size).
pub fn search_chunked<I>(pipe: &Pipeline, chunks: I, total_seqs: usize) -> PipelineResult
where
    I: IntoIterator<Item = SeqDb>,
{
    let trace = if Pipeline::profile_env() {
        Trace::on()
    } else {
        Trace::off()
    };
    search_chunked_traced(pipe, chunks, total_seqs, &trace)
}

/// [`search_chunked`] with a caller-supplied telemetry trace: every chunk
/// sweeps through [`Pipeline::search_traced`], so the per-chunk funnel
/// counters and stage times *accumulate* in the one trace — the final
/// snapshot describes the whole streamed sweep, exactly as a single-pass
/// run over the concatenated database would.
pub fn search_chunked_traced<I>(
    pipe: &Pipeline,
    chunks: I,
    total_seqs: usize,
    trace: &Trace,
) -> PipelineResult
where
    I: IntoIterator<Item = SeqDb>,
{
    let mut stages = [
        StageStats::new(pipe.stage0_name(), 0, 0, 0.0),
        StageStats::new("P7Viterbi", 0, 0, 0.0),
        StageStats::new("Forward", 0, 0, 0.0),
    ];
    let mut hits: Vec<Hit> = Vec::new();
    let mut seq_base = 0u32;
    for chunk in chunks {
        let res = pipe
            .search_traced(&chunk, &ExecPlan::Cpu, trace)
            .expect("the CPU plan cannot fail")
            .result;
        for (acc, st) in stages.iter_mut().zip(&res.stages) {
            acc.seqs_in += st.seqs_in;
            acc.seqs_out += st.seqs_out;
            acc.residues_in += st.residues_in;
            acc.time_s += st.time_s;
        }
        for mut h in res.hits {
            // Rescale E-value from the chunk size to the full database.
            h.evalue = h.pvalue * total_seqs as f64;
            h.seqid += seq_base;
            if h.evalue <= pipe.config.report_evalue {
                hits.push(h);
            }
        }
        seq_base += chunk.len() as u32;
    }
    hits.sort_by(|a, b| a.evalue.total_cmp(&b.evalue));
    PipelineResult::new(stages, hits, total_seqs)
}

/// [`search_chunked`] with checkpoint/resume. After every chunk the
/// accumulated state (chunk cursor, funnel counters, survivor hits) is
/// written atomically to `ckpt_path`; if that file already exists, the
/// sweep resumes after its last completed chunk, skipping finished work.
///
/// Resume requires the **same database and chunking**: `db_hash` is the
/// content hash of the full database ([`h3w_seqdb::content_hash`]) and is
/// recorded in the checkpoint — a resume against a database with a
/// different hash is rejected with [`CheckpointError::DatabaseDrift`]
/// instead of silently merging hits from two different sweeps. The skip
/// path additionally re-counts the skipped sequences and rejects a
/// checkpoint whose cursor does not line up (chunk bound changed). A
/// killed-then-resumed sweep reports bit-identical hits and funnel counts
/// to an uninterrupted one (floats persist as raw IEEE-754 bits; see
/// [`crate::checkpoint`]).
pub fn search_chunked_checkpointed<I>(
    pipe: &Pipeline,
    chunks: I,
    total_seqs: usize,
    ckpt_path: &Path,
    db_hash: u64,
) -> Result<PipelineResult, CheckpointError>
where
    I: IntoIterator<Item = SeqDb>,
{
    let mut state = if ckpt_path.exists() {
        let ck = StreamCheckpoint::load(ckpt_path)?;
        if ck.total_seqs != total_seqs {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint is for a {}-sequence sweep, this one has {total_seqs}",
                ck.total_seqs
            )));
        }
        if ck.db_hash != db_hash {
            return Err(CheckpointError::DatabaseDrift {
                expected: ck.db_hash,
                found: db_hash,
            });
        }
        ck
    } else {
        StreamCheckpoint::fresh(total_seqs, db_hash)
    };
    // The checkpoint's stage labels follow the pipeline configuration
    // (the counters, not the labels, carry the resume state).
    state.stages[0].name = pipe.stage0_name().to_string();
    let resume_from = state.chunks_done;
    let mut skipped_seqs = 0u32;
    for (i, chunk) in chunks.into_iter().enumerate() {
        if i < resume_from {
            skipped_seqs += chunk.len() as u32;
            if i + 1 == resume_from && skipped_seqs != state.seq_base {
                return Err(CheckpointError::Mismatch(format!(
                    "resumed chunking replays {skipped_seqs} sequences where the checkpoint \
                     recorded {}; was the chunk size or input changed?",
                    state.seq_base
                )));
            }
            continue;
        }
        let res = pipe
            .search(&chunk, &ExecPlan::Cpu)
            .expect("the CPU plan cannot fail");
        for (acc, st) in state.stages.iter_mut().zip(&res.stages) {
            acc.seqs_in += st.seqs_in;
            acc.seqs_out += st.seqs_out;
            acc.residues_in += st.residues_in;
            acc.time_s += st.time_s;
        }
        for mut h in res.hits {
            h.evalue = h.pvalue * total_seqs as f64;
            h.seqid += state.seq_base;
            // Posteriors are not persisted (see StreamCheckpoint), so drop
            // them here too: a live sweep and a resumed one must agree.
            h.posterior = None;
            if h.evalue <= pipe.config.report_evalue {
                state.hits.push(h);
            }
        }
        state.seq_base += chunk.len() as u32;
        state.chunks_done = i + 1;
        state.save(ckpt_path)?;
    }
    let StreamCheckpoint {
        stages, mut hits, ..
    } = state;
    hits.sort_by(|a, b| a.evalue.total_cmp(&b.evalue));
    Ok(PipelineResult::new(stages, hits, total_seqs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use h3w_hmm::build::{synthetic_model, BuildParams};
    use h3w_seqdb::fasta;
    use h3w_seqdb::gen::{generate, DbGenSpec};

    fn setup() -> (Pipeline, SeqDb) {
        let core = synthetic_model(50, 77, &BuildParams::default());
        let pipe = Pipeline::prepare(&core, PipelineConfig::default(), 3);
        let mut spec = DbGenSpec::envnr_like().scaled(2e-4);
        spec.homolog_fraction = 0.02;
        let db = generate(&spec, Some(&core), 5);
        (pipe, db)
    }

    #[test]
    fn fasta_chunks_partition_whole_sequences() {
        let (_, db) = setup();
        let text = fasta::render(&db);
        let chunks: Vec<SeqDb> = FastaChunks::new(&text, 20_000)
            .collect::<Result<_, _>>()
            .unwrap();
        assert!(
            chunks.len() > 3,
            "expected several chunks, got {}",
            chunks.len()
        );
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, db.len());
        let residues: u64 = chunks.iter().map(|c| c.total_residues()).sum();
        assert_eq!(residues, db.total_residues());
        // Order and content preserved.
        let mut idx = 0usize;
        for c in &chunks {
            for s in &c.seqs {
                assert_eq!(s.residues, db.seqs[idx].residues, "seq {idx}");
                idx += 1;
            }
        }
        // Every chunk except possibly the last respects the bound (one
        // sequence of slack allowed — whole sequences only).
        for c in &chunks[..chunks.len() - 1] {
            assert!(c.total_residues() <= 20_000 + db.max_len() as u64);
        }
    }

    #[test]
    fn chunked_search_equals_single_pass() {
        let (pipe, db) = setup();
        let single = pipe.search(&db, &ExecPlan::Cpu).unwrap();
        let text = fasta::render(&db);
        let chunks: Vec<SeqDb> = FastaChunks::new(&text, 15_000)
            .collect::<Result<_, _>>()
            .unwrap();
        let streamed = search_chunked(&pipe, chunks, db.len());
        assert_eq!(
            single.hits.iter().map(|h| h.seqid).collect::<Vec<_>>(),
            streamed.hits.iter().map(|h| h.seqid).collect::<Vec<_>>()
        );
        for (a, b) in single.hits.iter().zip(&streamed.hits) {
            assert_eq!(a.fwd_score, b.fwd_score);
            assert!((a.evalue - b.evalue).abs() < 1e-9 * a.evalue.max(1e-30));
        }
        assert_eq!(streamed.stages[0].seqs_in, db.len());
        assert_eq!(streamed.stages[0].residues_in, db.total_residues());
    }

    #[test]
    fn chunk_errors_propagate() {
        let bad = ">a\nMK1V\n";
        let r: Result<Vec<SeqDb>, _> = FastaChunks::new(bad, 100).collect();
        assert!(matches!(
            r,
            Err(FastaError::BadResidue { line: 2, ch: '1' })
        ));
        let orphan = "MKV\n>a\nMKV\n";
        let r: Result<Vec<SeqDb>, _> = FastaChunks::new(orphan, 100).collect();
        assert!(matches!(r, Err(FastaError::DataBeforeHeader { line: 1 })));
    }

    fn tmp_ckpt(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("h3w-stream-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("sweep.ckpt")
    }

    #[test]
    fn killed_and_resumed_sweep_matches_uninterrupted() {
        let (pipe, db) = setup();
        let text = fasta::render(&db);
        let all: Vec<SeqDb> = FastaChunks::new(&text, 15_000)
            .collect::<Result<_, _>>()
            .unwrap();
        assert!(all.len() >= 3, "need several chunks, got {}", all.len());
        let baseline = search_chunked(&pipe, all.clone(), db.len());

        // "Kill" the sweep after two chunks: run it on a truncated chunk
        // stream, leaving the checkpoint behind.
        let hash = h3w_seqdb::content_hash(&db);
        let path = tmp_ckpt("resume");
        let _ = std::fs::remove_file(&path);
        let partial: Vec<SeqDb> = all.iter().take(2).cloned().collect();
        search_chunked_checkpointed(&pipe, partial, db.len(), &path, hash).unwrap();
        let ck = StreamCheckpoint::load(&path).unwrap();
        assert_eq!(ck.chunks_done, 2);
        assert_eq!(ck.seq_base as usize, all[0].len() + all[1].len());
        assert_eq!(ck.db_hash, hash);

        // Resume with the full stream: chunks 0–1 are skipped, the rest
        // run, and the merged result is bit-identical to the baseline.
        let resumed =
            search_chunked_checkpointed(&pipe, all.clone(), db.len(), &path, hash).unwrap();
        assert_eq!(resumed.hits, baseline.hits);
        for (a, b) in resumed.stages.iter().zip(&baseline.stages) {
            assert_eq!(
                (a.seqs_in, a.seqs_out, a.residues_in),
                (b.seqs_in, b.seqs_out, b.residues_in),
                "funnel diverged at {}",
                a.name
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_rejects_changed_chunking_and_scale() {
        let (pipe, db) = setup();
        let text = fasta::render(&db);
        let all: Vec<SeqDb> = FastaChunks::new(&text, 15_000)
            .collect::<Result<_, _>>()
            .unwrap();
        let hash = h3w_seqdb::content_hash(&db);
        let path = tmp_ckpt("mismatch");
        let _ = std::fs::remove_file(&path);
        let partial: Vec<SeqDb> = all.iter().take(2).cloned().collect();
        search_chunked_checkpointed(&pipe, partial, db.len(), &path, hash).unwrap();
        // Different database size: a different sweep.
        let err =
            search_chunked_checkpointed(&pipe, all.clone(), db.len() + 1, &path, hash).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)));
        // Different chunk bound: the skip cursor no longer lines up.
        let rechunked: Vec<SeqDb> = FastaChunks::new(&text, 4_000)
            .collect::<Result<_, _>>()
            .unwrap();
        let err = search_chunked_checkpointed(&pipe, rechunked, db.len(), &path, hash).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_rejects_database_drift() {
        let (pipe, db) = setup();
        let text = fasta::render(&db);
        let all: Vec<SeqDb> = FastaChunks::new(&text, 15_000)
            .collect::<Result<_, _>>()
            .unwrap();
        let hash = h3w_seqdb::content_hash(&db);
        let path = tmp_ckpt("drift");
        let _ = std::fs::remove_file(&path);
        let partial: Vec<SeqDb> = all.iter().take(2).cloned().collect();
        search_chunked_checkpointed(&pipe, partial, db.len(), &path, hash).unwrap();
        // Same size and chunking, different database content: one residue
        // changed somewhere. The hash guard catches what the cursor
        // arithmetic cannot.
        let mut mutated = db.clone();
        mutated.seqs[0].residues[0] = (mutated.seqs[0].residues[0] + 1) % 20;
        let drifted = h3w_seqdb::content_hash(&mutated);
        assert_ne!(hash, drifted);
        let err =
            search_chunked_checkpointed(&pipe, all.clone(), db.len(), &path, drifted).unwrap_err();
        match err {
            CheckpointError::DatabaseDrift { expected, found } => {
                assert_eq!(expected, hash);
                assert_eq!(found, drifted);
            }
            other => panic!("expected DatabaseDrift, got {other:?}"),
        }
        // The original database still resumes cleanly.
        search_chunked_checkpointed(&pipe, all, db.len(), &path, hash).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn single_oversized_sequence_forms_own_chunk() {
        let text = format!(">big\n{}\n>small\nMKVL\n", "A".repeat(5000));
        let chunks: Vec<SeqDb> = FastaChunks::new(&text, 100)
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].seqs[0].len(), 5000);
        assert_eq!(chunks[1].seqs[0].name, "small");
    }
}
