//! Memory-bounded streaming search — one driver for every entry point.
//!
//! The paper's Env_nr workload is 1.29 G residues — comfortably more than
//! one wants resident while also holding DP buffers. This module sweeps
//! any [`SeqSource`] (in-memory [`SeqDb`], packed `DiskDb`, FASTA text or
//! file, or a generation recipe that never materializes) in bounded-size
//! chunks, each swept with the normal parallel pipeline under **any**
//! [`ExecPlan`] — threads, batching, pipeline depth, fused device stages,
//! and fault injection all apply per chunk; multi-device plans partition
//! each chunk across the pool, so device recovery operates at
//! source-chunk granularity. Per-chunk survivors merge with E-values kept
//! global (P-values scale by the *total* database size, exactly as a
//! single-pass run would), so streamed hits are bit-identical to
//! single-pass hits.
//!
//! All public entry points are thin shells over one internal driver:
//! [`search_source`] / [`search_source_checkpointed`] stream a source,
//! [`search_chunked`] and friends accept pre-built chunks, and
//! [`search_shards_observed`] lets a resident service sweep borrowed
//! shards with a deadline/chaos observer between chunks. Checkpointed
//! runs persist the sweep state after every chunk so a killed process
//! resumes where it left off with bit-identical results.

use crate::checkpoint::{CheckpointError, StreamCheckpoint};
use crate::report::PipelineResult;
use crate::run::{ExecPlan, Pipeline};
use h3w_core::fault::SweepError;
use h3w_seqdb::fasta::{FastaError, ReadSeqError, SeqReader};
use h3w_seqdb::source::{Chunker, SeqSource, SourceError};
use h3w_seqdb::{length_bins, DigitalSeq, SeqDb};
use h3w_trace::Trace;
use std::borrow::Cow;
use std::path::Path;

/// Why a streamed sweep stopped early. Every failure mode of the layered
/// machinery — ingest, the sweep itself, checkpoint persistence, or a
/// caller-imposed cancellation — maps to a typed variant, so streaming is
/// no longer a second-class entry point that panics where
/// [`Pipeline::search`] would return.
#[derive(Debug)]
pub enum StreamError {
    /// The source failed to deliver a chunk (I/O or FASTA grammar).
    Source(SourceError),
    /// A chunk sweep failed (device planning/launch errors).
    Sweep(SweepError),
    /// Checkpoint persistence or validation failed.
    Checkpoint(CheckpointError),
    /// The observer cancelled the sweep (e.g. a service deadline).
    Cancelled(String),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Source(e) => write!(f, "stream source: {e}"),
            StreamError::Sweep(e) => write!(f, "stream sweep: {e}"),
            StreamError::Checkpoint(e) => write!(f, "stream checkpoint: {e}"),
            StreamError::Cancelled(why) => write!(f, "stream cancelled: {why}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<SourceError> for StreamError {
    fn from(e: SourceError) -> StreamError {
        StreamError::Source(e)
    }
}

impl From<SweepError> for StreamError {
    fn from(e: SweepError) -> StreamError {
        StreamError::Sweep(e)
    }
}

impl From<CheckpointError> for StreamError {
    fn from(e: CheckpointError) -> StreamError {
        StreamError::Checkpoint(e)
    }
}

/// Where a streamed sweep stands when the observer is consulted (before
/// each chunk is swept).
#[derive(Debug, Clone, Copy)]
pub struct ChunkProgress {
    /// Zero-based index of the chunk about to run.
    pub index: usize,
    /// Sequences already swept (or skipped by checkpoint resume).
    pub seqs_done: usize,
    /// Residues already swept (or skipped by checkpoint resume).
    pub residues_done: u64,
    /// Sequences in the chunk about to run.
    pub chunk_seqs: usize,
    /// Residues in the chunk about to run.
    pub chunk_residues: u64,
}

/// Hook consulted before each chunk; returning `Err(reason)` aborts the
/// sweep with [`StreamError::Cancelled`]. Services use it for deadline
/// checks and chaos injection at chunk boundaries.
pub type ChunkObserver<'o> = &'o mut dyn FnMut(&ChunkProgress) -> Result<(), String>;

/// A completed streamed sweep: the (plan- and fault-invariant) results
/// plus whether any fault-tolerant chunk fell back to the CPU.
#[derive(Debug)]
pub struct StreamReport {
    /// Merged hits and funnel counters.
    pub result: PipelineResult,
    /// True if any chunk's fault-tolerant sweep degraded to the striped
    /// CPU backend.
    pub degraded_to_cpu: bool,
}

/// The one streamed-sweep driver. Every public entry point builds a
/// chunk iterator (owned or borrowed) and lands here; chunked,
/// checkpointed, observed, and source-driven execution differ only in
/// which optional features they enable.
fn drive<'c, I>(
    pipe: &Pipeline,
    chunks: I,
    total_seqs: usize,
    plan: &ExecPlan,
    ckpt: Option<(&Path, u64)>,
    trace: &Trace,
    mut observer: Option<ChunkObserver<'_>>,
) -> Result<StreamReport, StreamError>
where
    I: IntoIterator<Item = Result<Cow<'c, SeqDb>, StreamError>>,
{
    let mut state = match ckpt {
        Some((path, db_hash)) if path.exists() => {
            let ck = StreamCheckpoint::load(path)?;
            if ck.total_seqs != total_seqs {
                return Err(CheckpointError::Mismatch(format!(
                    "checkpoint is for a {}-sequence sweep, this one has {total_seqs}",
                    ck.total_seqs
                ))
                .into());
            }
            if ck.db_hash != db_hash {
                return Err(CheckpointError::DatabaseDrift {
                    expected: ck.db_hash,
                    found: db_hash,
                }
                .into());
            }
            ck
        }
        Some((_, db_hash)) => StreamCheckpoint::fresh(total_seqs, db_hash),
        None => StreamCheckpoint::fresh(total_seqs, 0),
    };
    // The checkpoint's stage labels follow the pipeline configuration
    // (the counters, not the labels, carry the resume state).
    state.stages[0].name = pipe.stage0_name().to_string();
    let resume_from = state.chunks_done;
    let mut skipped_seqs = 0u32;
    let mut residues_done = 0u64;
    let mut degraded = false;
    for (i, chunk) in chunks.into_iter().enumerate() {
        let chunk = chunk?;
        let chunk_residues = chunk.total_residues();
        if i < resume_from {
            // Checkpoint resume: replay the cursor without sweeping, and
            // reject a chunking that no longer lines up.
            skipped_seqs += chunk.len() as u32;
            residues_done += chunk_residues;
            if i + 1 == resume_from && skipped_seqs != state.seq_base {
                return Err(CheckpointError::Mismatch(format!(
                    "resumed chunking replays {skipped_seqs} sequences where the checkpoint \
                     recorded {}; was the chunk size or input changed?",
                    state.seq_base
                ))
                .into());
            }
            continue;
        }
        if let Some(obs) = observer.as_mut() {
            obs(&ChunkProgress {
                index: i,
                seqs_done: state.seq_base as usize,
                residues_done,
                chunk_seqs: chunk.len(),
                chunk_residues,
            })
            .map_err(StreamError::Cancelled)?;
        }
        if trace.is_on() {
            trace.add("stream", "chunks", 1);
            trace.add("stream", "seqs_in", chunk.len() as u64);
            trace.add("stream", "residues_in", chunk_residues);
            // Length-bin shape of this chunk — what the batched
            // scheduler re-bins per chunk; a high bin count per chunk
            // means more partially-filled batches.
            trace.add("stream", "len_bins", length_bins(&chunk).len() as u64);
        }
        let report = pipe.search_traced(chunk.as_ref(), plan, trace)?;
        degraded |= report.degraded_to_cpu;
        let res = report.result;
        for (acc, st) in state.stages.iter_mut().zip(&res.stages) {
            acc.seqs_in += st.seqs_in;
            acc.seqs_out += st.seqs_out;
            acc.residues_in += st.residues_in;
            acc.time_s += st.time_s;
        }
        for mut h in res.hits {
            // Rescale E-value from the chunk size to the full database.
            h.evalue = h.pvalue * total_seqs as f64;
            h.seqid += state.seq_base;
            if ckpt.is_some() {
                // Posteriors are not persisted (see StreamCheckpoint), so
                // drop them on the live path too: a live sweep and a
                // resumed one must agree bit for bit.
                h.posterior = None;
            }
            if h.evalue <= pipe.config.report_evalue {
                state.hits.push(h);
            }
        }
        state.seq_base += chunk.len() as u32;
        residues_done += chunk_residues;
        state.chunks_done = i + 1;
        if let Some((path, _)) = ckpt {
            state.save(path)?;
        }
    }
    if trace.is_on() {
        // Recorded once per sweep: the process high-water mark. For a
        // constant-memory streamed sweep this is bounded by the chunk
        // size, not the database size.
        if let Some(rss) = h3w_trace::peak_rss_bytes() {
            trace.add("stream", "peak_rss_bytes", rss);
        }
    }
    let StreamCheckpoint {
        stages, mut hits, ..
    } = state;
    hits.sort_by(|a, b| a.evalue.total_cmp(&b.evalue));
    Ok(StreamReport {
        result: PipelineResult::new(stages, hits, total_seqs),
        degraded_to_cpu: degraded,
    })
}

fn source_chunks<'s>(
    source: &'s dyn SeqSource,
    max_residues: u64,
) -> impl Iterator<Item = Result<Cow<'static, SeqDb>, StreamError>> + 's {
    source
        .chunks(max_residues)
        .map(|r| r.map(Cow::Owned).map_err(StreamError::Source))
}

/// Sweep a [`SeqSource`] in chunks of at most `max_residues` residues
/// under `plan`, in memory bounded by the chunk size. E-values scale by
/// `source.n_seqs()`; hits are bit-identical to an unchunked
/// [`Pipeline::search`] over the materialized database.
pub fn search_source(
    pipe: &Pipeline,
    source: &dyn SeqSource,
    plan: &ExecPlan,
    max_residues: u64,
    trace: &Trace,
) -> Result<PipelineResult, StreamError> {
    drive(
        pipe,
        source_chunks(source, max_residues),
        source.n_seqs(),
        plan,
        None,
        trace,
        None,
    )
    .map(|r| r.result)
}

/// [`search_source`] with checkpoint/resume: after every chunk the
/// accumulated state (chunk cursor, funnel counters, survivor hits) is
/// written atomically to `ckpt_path`; if that file already exists, the
/// sweep resumes after its last completed chunk. The source's
/// [`SeqSource::identity`] is the drift guard — resuming against a
/// source with a different identity is rejected with
/// [`CheckpointError::DatabaseDrift`], and a changed `max_residues` is
/// caught by the cursor cross-check. A killed-then-resumed sweep reports
/// bit-identical hits and funnel counts to an uninterrupted one.
pub fn search_source_checkpointed(
    pipe: &Pipeline,
    source: &dyn SeqSource,
    plan: &ExecPlan,
    max_residues: u64,
    ckpt_path: &Path,
    trace: &Trace,
) -> Result<PipelineResult, StreamError> {
    drive(
        pipe,
        source_chunks(source, max_residues),
        source.n_seqs(),
        plan,
        Some((ckpt_path, source.identity())),
        trace,
        None,
    )
    .map(|r| r.result)
}

/// Sweep borrowed shards with an observer consulted at every chunk
/// boundary — the resident-service entry point: deadline checks and
/// chaos injection happen in the observer, shards are never cloned, and
/// the report carries the degradation flag services surface per query.
pub fn search_shards_observed<'a, I>(
    pipe: &Pipeline,
    shards: I,
    total_seqs: usize,
    plan: &ExecPlan,
    trace: &Trace,
    observer: ChunkObserver<'_>,
) -> Result<StreamReport, StreamError>
where
    I: IntoIterator<Item = &'a SeqDb>,
{
    drive(
        pipe,
        shards.into_iter().map(|s| Ok(Cow::Borrowed(s))),
        total_seqs,
        plan,
        None,
        trace,
        Some(observer),
    )
}

/// Sweep pre-chunked databases under `plan` and merge results.
/// `total_seqs` fixes the E-value scale (the full database size).
pub fn search_chunked<I>(
    pipe: &Pipeline,
    chunks: I,
    total_seqs: usize,
    plan: &ExecPlan,
) -> Result<PipelineResult, StreamError>
where
    I: IntoIterator<Item = SeqDb>,
{
    let trace = if Pipeline::profile_env() {
        Trace::on()
    } else {
        Trace::off()
    };
    search_chunked_traced(pipe, chunks, total_seqs, plan, &trace)
}

/// [`search_chunked`] with a caller-supplied telemetry trace: every chunk
/// sweeps through [`Pipeline::search_traced`], so the per-chunk funnel
/// counters and stage times *accumulate* in the one trace — the final
/// snapshot describes the whole streamed sweep, exactly as a single-pass
/// run over the concatenated database would.
pub fn search_chunked_traced<I>(
    pipe: &Pipeline,
    chunks: I,
    total_seqs: usize,
    plan: &ExecPlan,
    trace: &Trace,
) -> Result<PipelineResult, StreamError>
where
    I: IntoIterator<Item = SeqDb>,
{
    drive(
        pipe,
        chunks.into_iter().map(|c| Ok(Cow::Owned(c))),
        total_seqs,
        plan,
        None,
        trace,
        None,
    )
    .map(|r| r.result)
}

/// [`search_chunked`] with checkpoint/resume (see
/// [`search_source_checkpointed`] for the resume contract; `db_hash` is
/// the caller-supplied drift guard, normally
/// [`h3w_seqdb::content_hash`]).
pub fn search_chunked_checkpointed<I>(
    pipe: &Pipeline,
    chunks: I,
    total_seqs: usize,
    plan: &ExecPlan,
    ckpt_path: &Path,
    db_hash: u64,
) -> Result<PipelineResult, StreamError>
where
    I: IntoIterator<Item = SeqDb>,
{
    let trace = if Pipeline::profile_env() {
        Trace::on()
    } else {
        Trace::off()
    };
    drive(
        pipe,
        chunks.into_iter().map(|c| Ok(Cow::Owned(c))),
        total_seqs,
        plan,
        Some((ckpt_path, db_hash)),
        &trace,
        None,
    )
    .map(|r| r.result)
}

/// Iterator over bounded-residue chunks of a FASTA text: the streaming
/// parser ([`SeqReader`]) grouped under the shared source boundary rule
/// ([`Chunker`]). A chunk never exceeds `max_residues` unless a single
/// sequence does, in which case it rides alone.
pub struct FastaChunks<'a> {
    inner: Chunker<Box<dyn Iterator<Item = Result<DigitalSeq, FastaError>> + 'a>, FastaError>,
}

impl<'a> FastaChunks<'a> {
    /// Chunk `text` into databases of at most `max_residues` residues
    /// (each chunk holds whole sequences; a single longer sequence forms
    /// its own chunk).
    pub fn new(text: &'a str, max_residues: u64) -> FastaChunks<'a> {
        let records: Box<dyn Iterator<Item = Result<DigitalSeq, FastaError>> + 'a> =
            Box::new(SeqReader::new(text.as_bytes()).map(|r| {
                r.map_err(|e| match e {
                    ReadSeqError::Fasta(e) => e,
                    // An in-memory byte slice cannot fail to read.
                    ReadSeqError::Io(e) => unreachable!("io error on in-memory text: {e}"),
                })
            }));
        FastaChunks {
            inner: Chunker::new("chunk", records, max_residues),
        }
    }
}

impl Iterator for FastaChunks<'_> {
    type Item = Result<SeqDb, FastaError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::report::Hit;
    use h3w_hmm::build::{synthetic_model, BuildParams};
    use h3w_seqdb::fasta;
    use h3w_seqdb::gen::{generate, DbGenSpec};
    use h3w_seqdb::source::GenSource;

    fn setup() -> (Pipeline, SeqDb) {
        let core = synthetic_model(50, 77, &BuildParams::default());
        let pipe = Pipeline::prepare(&core, PipelineConfig::default(), 3);
        let mut spec = DbGenSpec::envnr_like().scaled(2e-4);
        spec.homolog_fraction = 0.02;
        let db = generate(&spec, Some(&core), 5);
        (pipe, db)
    }

    #[test]
    fn fasta_chunks_partition_whole_sequences() {
        let (_, db) = setup();
        let text = fasta::render(&db);
        let chunks: Vec<SeqDb> = FastaChunks::new(&text, 20_000)
            .collect::<Result<_, _>>()
            .unwrap();
        assert!(
            chunks.len() > 3,
            "expected several chunks, got {}",
            chunks.len()
        );
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, db.len());
        let residues: u64 = chunks.iter().map(|c| c.total_residues()).sum();
        assert_eq!(residues, db.total_residues());
        // Order and content preserved.
        let mut idx = 0usize;
        for c in &chunks {
            for s in &c.seqs {
                assert_eq!(s.residues, db.seqs[idx].residues, "seq {idx}");
                idx += 1;
            }
        }
        // Chunks respect the bound outright (close-before-overflow rule;
        // only a single oversized sequence may exceed it, alone).
        for c in &chunks {
            assert!(c.total_residues() <= 20_000 || c.len() == 1);
        }
    }

    #[test]
    fn chunked_search_equals_single_pass() {
        let (pipe, db) = setup();
        let single = pipe.search(&db, &ExecPlan::Cpu).unwrap();
        let text = fasta::render(&db);
        let chunks: Vec<SeqDb> = FastaChunks::new(&text, 15_000)
            .collect::<Result<_, _>>()
            .unwrap();
        let streamed = search_chunked(&pipe, chunks, db.len(), &ExecPlan::Cpu).unwrap();
        assert_eq!(
            single.hits.iter().map(|h| h.seqid).collect::<Vec<_>>(),
            streamed.hits.iter().map(|h| h.seqid).collect::<Vec<_>>()
        );
        for (a, b) in single.hits.iter().zip(&streamed.hits) {
            assert_eq!(a.fwd_score, b.fwd_score);
            assert!((a.evalue - b.evalue).abs() < 1e-9 * a.evalue.max(1e-30));
        }
        assert_eq!(streamed.stages[0].seqs_in, db.len());
        assert_eq!(streamed.stages[0].residues_in, db.total_residues());
    }

    #[test]
    fn source_sweep_matches_in_memory_sweep() {
        let (pipe, db) = setup();
        let single = pipe.search(&db, &ExecPlan::Cpu).unwrap();
        // The in-memory database as a source.
        let streamed = search_source(&pipe, &db, &ExecPlan::Cpu, 15_000, &Trace::off()).unwrap();
        assert_eq!(single.hits, streamed.hits);
        // A generation recipe as a source (never materialized): sweep it
        // and compare against the materialized generate() database.
        let core = synthetic_model(50, 77, &BuildParams::default());
        let mut spec = DbGenSpec::envnr_like().scaled(2e-4);
        spec.homolog_fraction = 0.02;
        let gen_src = GenSource::new(spec, Some(&core), 5);
        let gen_streamed =
            search_source(&pipe, &gen_src, &ExecPlan::Cpu, 15_000, &Trace::off()).unwrap();
        assert_eq!(single.hits, gen_streamed.hits);
    }

    #[test]
    fn observer_sees_progress_and_can_cancel() {
        let (pipe, db) = setup();
        let shards: Vec<SeqDb> = FastaChunks::new(&fasta::render(&db), 15_000)
            .collect::<Result<_, _>>()
            .unwrap();
        assert!(shards.len() >= 3);
        // Observe every boundary: progress is monotone and complete.
        let mut seen = Vec::new();
        let mut obs = |p: &ChunkProgress| {
            seen.push((p.index, p.seqs_done, p.residues_done));
            Ok(())
        };
        let report = search_shards_observed(
            &pipe,
            shards.iter(),
            db.len(),
            &ExecPlan::Cpu,
            &Trace::off(),
            &mut obs,
        )
        .unwrap();
        assert!(!report.degraded_to_cpu);
        assert_eq!(seen.len(), shards.len());
        assert_eq!(seen[0], (0, 0, 0));
        assert!(seen.windows(2).all(|w| w[0] < w[1]));
        // Cancel at the second boundary: typed Cancelled error.
        let mut calls = 0usize;
        let mut obs = |_: &ChunkProgress| {
            calls += 1;
            if calls == 2 {
                Err("deadline".to_string())
            } else {
                Ok(())
            }
        };
        let err = search_shards_observed(
            &pipe,
            shards.iter(),
            db.len(),
            &ExecPlan::Cpu,
            &Trace::off(),
            &mut obs,
        )
        .unwrap_err();
        assert!(matches!(err, StreamError::Cancelled(ref why) if why == "deadline"));
    }

    #[test]
    fn chunk_errors_propagate() {
        let bad = ">a\nMK1V\n";
        let r: Result<Vec<SeqDb>, _> = FastaChunks::new(bad, 100).collect();
        assert!(matches!(
            r,
            Err(FastaError::BadResidue { line: 2, ch: '1' })
        ));
        let orphan = "MKV\n>a\nMKV\n";
        let r: Result<Vec<SeqDb>, _> = FastaChunks::new(orphan, 100).collect();
        assert!(matches!(r, Err(FastaError::DataBeforeHeader { line: 1 })));
    }

    fn tmp_ckpt(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("h3w-stream-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("sweep.ckpt")
    }

    fn expect_ckpt(err: StreamError) -> CheckpointError {
        match err {
            StreamError::Checkpoint(e) => e,
            other => panic!("expected checkpoint error, got {other:?}"),
        }
    }

    #[test]
    fn killed_and_resumed_sweep_matches_uninterrupted() {
        let (pipe, db) = setup();
        let text = fasta::render(&db);
        let all: Vec<SeqDb> = FastaChunks::new(&text, 15_000)
            .collect::<Result<_, _>>()
            .unwrap();
        assert!(all.len() >= 3, "need several chunks, got {}", all.len());
        let baseline = search_chunked(&pipe, all.clone(), db.len(), &ExecPlan::Cpu).unwrap();

        // "Kill" the sweep after two chunks: run it on a truncated chunk
        // stream, leaving the checkpoint behind.
        let hash = h3w_seqdb::content_hash(&db);
        let path = tmp_ckpt("resume");
        let _ = std::fs::remove_file(&path);
        let partial: Vec<SeqDb> = all.iter().take(2).cloned().collect();
        search_chunked_checkpointed(&pipe, partial, db.len(), &ExecPlan::Cpu, &path, hash).unwrap();
        let ck = StreamCheckpoint::load(&path).unwrap();
        assert_eq!(ck.chunks_done, 2);
        assert_eq!(ck.seq_base as usize, all[0].len() + all[1].len());
        assert_eq!(ck.db_hash, hash);

        // Resume with the full stream: chunks 0–1 are skipped, the rest
        // run, and the merged result is bit-identical to the baseline
        // (modulo posteriors, which checkpointed sweeps drop).
        let resumed =
            search_chunked_checkpointed(&pipe, all.clone(), db.len(), &ExecPlan::Cpu, &path, hash)
                .unwrap();
        let strip = |hits: &[Hit]| -> Vec<Hit> {
            hits.iter()
                .cloned()
                .map(|mut h| {
                    h.posterior = None;
                    h
                })
                .collect()
        };
        assert_eq!(resumed.hits, strip(&baseline.hits));
        for (a, b) in resumed.stages.iter().zip(&baseline.stages) {
            assert_eq!(
                (a.seqs_in, a.seqs_out, a.residues_in),
                (b.seqs_in, b.seqs_out, b.residues_in),
                "funnel diverged at {}",
                a.name
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_rejects_changed_chunking_and_scale() {
        let (pipe, db) = setup();
        let text = fasta::render(&db);
        let all: Vec<SeqDb> = FastaChunks::new(&text, 15_000)
            .collect::<Result<_, _>>()
            .unwrap();
        let hash = h3w_seqdb::content_hash(&db);
        let path = tmp_ckpt("mismatch");
        let _ = std::fs::remove_file(&path);
        let partial: Vec<SeqDb> = all.iter().take(2).cloned().collect();
        search_chunked_checkpointed(&pipe, partial, db.len(), &ExecPlan::Cpu, &path, hash).unwrap();
        // Different database size: a different sweep.
        let err = search_chunked_checkpointed(
            &pipe,
            all.clone(),
            db.len() + 1,
            &ExecPlan::Cpu,
            &path,
            hash,
        )
        .unwrap_err();
        assert!(matches!(expect_ckpt(err), CheckpointError::Mismatch(_)));
        // Different chunk bound: the skip cursor no longer lines up.
        let rechunked: Vec<SeqDb> = FastaChunks::new(&text, 4_000)
            .collect::<Result<_, _>>()
            .unwrap();
        let err =
            search_chunked_checkpointed(&pipe, rechunked, db.len(), &ExecPlan::Cpu, &path, hash)
                .unwrap_err();
        assert!(matches!(expect_ckpt(err), CheckpointError::Mismatch(_)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_rejects_database_drift() {
        let (pipe, db) = setup();
        let text = fasta::render(&db);
        let all: Vec<SeqDb> = FastaChunks::new(&text, 15_000)
            .collect::<Result<_, _>>()
            .unwrap();
        let hash = h3w_seqdb::content_hash(&db);
        let path = tmp_ckpt("drift");
        let _ = std::fs::remove_file(&path);
        let partial: Vec<SeqDb> = all.iter().take(2).cloned().collect();
        search_chunked_checkpointed(&pipe, partial, db.len(), &ExecPlan::Cpu, &path, hash).unwrap();
        // Same size and chunking, different database content: one residue
        // changed somewhere. The hash guard catches what the cursor
        // arithmetic cannot.
        let mut mutated = db.clone();
        mutated.seqs[0].residues[0] = (mutated.seqs[0].residues[0] + 1) % 20;
        let drifted = h3w_seqdb::content_hash(&mutated);
        assert_ne!(hash, drifted);
        let err = search_chunked_checkpointed(
            &pipe,
            all.clone(),
            db.len(),
            &ExecPlan::Cpu,
            &path,
            drifted,
        )
        .unwrap_err();
        match expect_ckpt(err) {
            CheckpointError::DatabaseDrift { expected, found } => {
                assert_eq!(expected, hash);
                assert_eq!(found, drifted);
            }
            other => panic!("expected DatabaseDrift, got {other:?}"),
        }
        // The original database still resumes cleanly.
        search_chunked_checkpointed(&pipe, all, db.len(), &ExecPlan::Cpu, &path, hash).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn single_oversized_sequence_forms_own_chunk() {
        let text = format!(">big\n{}\n>small\nMKVL\n", "A".repeat(5000));
        let chunks: Vec<SeqDb> = FastaChunks::new(&text, 100)
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].seqs[0].len(), 5000);
        assert_eq!(chunks[1].seqs[0].name, "small");
    }
}
