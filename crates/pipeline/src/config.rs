//! Pipeline stage thresholds — HMMER 3.0's acceleration heuristics (§II).
//!
//! Each filter passes a sequence when its score's P-value (under the
//! calibrated null distribution) beats the stage threshold. HMMER 3.0's
//! defaults: MSV P < 0.02, Viterbi P < 10⁻³, Forward P < 10⁻⁵. Because
//! null P-values are uniform, a background-dominated database passes
//! ≈ 2% → ≈ 0.1% of sequences down the pipeline — which is precisely the
//! 100% → 2.2% → 0.1% funnel of the paper's Fig. 1.

/// Stage thresholds and reporting cutoff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// MSV filter P-value threshold (HMMER's `--F1`).
    pub f1: f64,
    /// Viterbi filter P-value threshold (`--F2`).
    pub f2: f64,
    /// Forward P-value threshold (`--F3`).
    pub f3: f64,
    /// Report hits with E-value at or below this.
    pub report_evalue: f64,
    /// Apply the null2 biased-composition correction to Forward scores
    /// before P-values (HMMER applies it by default; here it is opt-in so
    /// raw-score comparisons across implementations stay exact).
    pub null2: bool,
    /// Run the SSV filter as a stage-0 pre-filter ahead of MSV (off by
    /// default, so the default funnel is exactly HMMER 3.0's). SSV is MSV
    /// without the J (multi-hit) state — cheaper per row and the best-case
    /// kernel for batched interleaving — at a small sensitivity cost the
    /// loose `f0` threshold keeps negligible.
    pub ssv: bool,
    /// SSV pre-filter P-value threshold (only read when `ssv` is on).
    /// Deliberately looser than `f1` so near-threshold MSV candidates are
    /// never cut by the cheaper approximation.
    pub f0: f64,
    /// Batch width for the interleaved filter sweeps: `0` picks the
    /// backend's preferred width, `1` scores sequences one at a time
    /// (bit-identical either way; see `h3w_cpu::batch`).
    pub batch: usize,
    /// Escape hatch: score stage 3 with the generic log-space Forward
    /// (`forward_generic`) instead of the striped odds-space filter.
    /// Off by default — the striped filter is the production path and is
    /// *closer* to the exact recurrence than the flogsum-table generic
    /// code (see DESIGN.md) — but the oracle remains one flag away for
    /// A/B validation and drift triage.
    pub fwd_generic: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            f1: 0.02,
            f2: 1e-3,
            f3: 1e-5,
            report_evalue: 10.0,
            null2: false,
            ssv: false,
            f0: 0.08,
            batch: 0,
            fwd_generic: false,
        }
    }
}

impl PipelineConfig {
    /// `--max` sensitivity mode: filters off, everything reaches Forward.
    pub fn max_sensitivity() -> Self {
        PipelineConfig {
            f1: 1.0,
            f2: 1.0,
            f3: 1.0,
            report_evalue: 10.0,
            null2: false,
            ssv: false,
            f0: 1.0,
            batch: 0,
            fwd_generic: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_hmmer3() {
        let c = PipelineConfig::default();
        assert_eq!(c.f1, 0.02);
        assert_eq!(c.f2, 1e-3);
        assert_eq!(c.f3, 1e-5);
    }

    #[test]
    fn max_mode_disables_filters() {
        let c = PipelineConfig::max_sensitivity();
        assert_eq!(c.f1, 1.0);
        assert_eq!(c.f2, 1.0);
        assert!(!c.ssv);
    }

    #[test]
    fn ssv_prefilter_defaults_off_and_loose() {
        let c = PipelineConfig::default();
        assert!(!c.ssv, "SSV must be opt-in: default funnels are HMMER's");
        assert!(c.f0 > c.f1, "f0 must be looser than f1");
        assert_eq!(c.batch, 0, "batch width defaults to auto");
    }

    #[test]
    fn striped_forward_is_the_default_stage3() {
        assert!(!PipelineConfig::default().fwd_generic);
        assert!(!PipelineConfig::max_sensitivity().fwd_generic);
    }
}
