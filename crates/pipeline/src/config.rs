//! Pipeline stage thresholds — HMMER 3.0's acceleration heuristics (§II).
//!
//! Each filter passes a sequence when its score's P-value (under the
//! calibrated null distribution) beats the stage threshold. HMMER 3.0's
//! defaults: MSV P < 0.02, Viterbi P < 10⁻³, Forward P < 10⁻⁵. Because
//! null P-values are uniform, a background-dominated database passes
//! ≈ 2% → ≈ 0.1% of sequences down the pipeline — which is precisely the
//! 100% → 2.2% → 0.1% funnel of the paper's Fig. 1.

use h3w_cpu::{MAX_BATCH, MAX_PIPELINE_DEPTH};

/// Stage thresholds and reporting cutoff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// MSV filter P-value threshold (HMMER's `--F1`).
    pub f1: f64,
    /// Viterbi filter P-value threshold (`--F2`).
    pub f2: f64,
    /// Forward P-value threshold (`--F3`).
    pub f3: f64,
    /// Report hits with E-value at or below this.
    pub report_evalue: f64,
    /// Apply the null2 biased-composition correction to Forward scores
    /// before P-values (HMMER applies it by default; here it is opt-in so
    /// raw-score comparisons across implementations stay exact).
    pub null2: bool,
    /// Run the SSV filter as a stage-0 pre-filter ahead of MSV (off by
    /// default, so the default funnel is exactly HMMER 3.0's). SSV is MSV
    /// without the J (multi-hit) state — cheaper per row and the best-case
    /// kernel for batched interleaving — at a small sensitivity cost the
    /// loose `f0` threshold keeps negligible.
    pub ssv: bool,
    /// SSV pre-filter P-value threshold (only read when `ssv` is on).
    /// Deliberately looser than `f1` so near-threshold MSV candidates are
    /// never cut by the cheaper approximation.
    pub f0: f64,
    /// Batch width for the interleaved filter sweeps: `0` picks the
    /// backend's preferred width, `1` scores sequences one at a time
    /// (bit-identical either way; see `h3w_cpu::batch`).
    pub batch: usize,
    /// Software-pipeline depth for the batched filter loops: `0` = auto,
    /// `1` = un-pipelined (single chain, no prefetch), up to
    /// `h3w_cpu::MAX_PIPELINE_DEPTH`. The depth resolves to an in-flight
    /// chain count (capping the batch width) plus a table-row prefetch
    /// lookahead (see `h3w_cpu::pipe`). Hits and funnels are
    /// bit-identical at every depth — the knob only moves wall time.
    pub pipeline_depth: usize,
    /// Escape hatch: score stage 3 with the generic log-space Forward
    /// (`forward_generic`) instead of the striped odds-space filter.
    /// Off by default — the striped filter is the production path and is
    /// *closer* to the exact recurrence than the flogsum-table generic
    /// code (see DESIGN.md) — but the oracle remains one flag away for
    /// A/B validation and drift triage.
    pub fwd_generic: bool,
    /// CPU worker threads for the sweep fan-out: `0` (the default) shares
    /// the process-global pool sized by `H3W_THREADS` / available
    /// parallelism; `n ≥ 1` gives this pipeline a dedicated `n`-thread
    /// pool. Hits, funnels, and reports are bit-identical at every
    /// setting — threads only change wall time.
    pub threads: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            f1: 0.02,
            f2: 1e-3,
            f3: 1e-5,
            report_evalue: 10.0,
            null2: false,
            ssv: false,
            f0: 0.08,
            batch: 0,
            pipeline_depth: 0,
            fwd_generic: false,
            threads: 0,
        }
    }
}

impl PipelineConfig {
    /// `--max` sensitivity mode: filters off, everything reaches Forward.
    pub fn max_sensitivity() -> Self {
        PipelineConfig {
            f1: 1.0,
            f2: 1.0,
            f3: 1.0,
            report_evalue: 10.0,
            null2: false,
            ssv: false,
            f0: 1.0,
            batch: 0,
            pipeline_depth: 0,
            fwd_generic: false,
            threads: 0,
        }
    }

    /// Start a validated builder from the defaults. Struct-literal
    /// construction keeps working for code that knows what it wants; the
    /// builder is the entry point that rejects inconsistent settings
    /// before a sweep silently does something surprising with them.
    pub fn builder() -> PipelineConfigBuilder {
        PipelineConfigBuilder {
            config: PipelineConfig::default(),
            f0_explicit: false,
        }
    }

    /// Validate field ranges: every P-value threshold in `(0, 1]`, the
    /// report E-value positive and finite, the batch width within the
    /// kernels' [`MAX_BATCH`]. (Struct literals bypass this; the builder
    /// enforces it.)
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (field, value) in [
            ("f0", self.f0),
            ("f1", self.f1),
            ("f2", self.f2),
            ("f3", self.f3),
        ] {
            if !(value.is_finite() && value > 0.0 && value <= 1.0) {
                return Err(ConfigError::Threshold { field, value });
            }
        }
        if !(self.report_evalue.is_finite() && self.report_evalue > 0.0) {
            return Err(ConfigError::ReportEvalue {
                value: self.report_evalue,
            });
        }
        if self.batch > MAX_BATCH {
            return Err(ConfigError::BatchTooWide {
                requested: self.batch,
                max: MAX_BATCH,
            });
        }
        if self.pipeline_depth > MAX_PIPELINE_DEPTH {
            return Err(ConfigError::PipelineDepthTooDeep {
                requested: self.pipeline_depth,
                max: MAX_PIPELINE_DEPTH,
            });
        }
        if self.threads > h3w_cpu::h3w_pool::MAX_THREADS {
            return Err(ConfigError::Threads {
                requested: self.threads,
                max: h3w_cpu::h3w_pool::MAX_THREADS,
            });
        }
        Ok(())
    }
}

/// Why a [`PipelineConfigBuilder::build`] refused a configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// `f0` was set without enabling the SSV pre-filter — the threshold
    /// would be silently ignored.
    F0WithoutSsv,
    /// A P-value threshold outside `(0, 1]`.
    Threshold {
        /// Which threshold (`f0`..`f3`).
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A non-positive or non-finite report E-value.
    ReportEvalue {
        /// The rejected value.
        value: f64,
    },
    /// Batch width beyond what the interleaved kernels support
    /// (`0` = auto is always accepted).
    BatchTooWide {
        /// The rejected width.
        requested: usize,
        /// The kernels' maximum interleave.
        max: usize,
    },
    /// Software-pipeline depth beyond what the fused loops support
    /// (`0` = auto is always accepted).
    PipelineDepthTooDeep {
        /// The rejected depth.
        requested: usize,
        /// The kernels' maximum depth.
        max: usize,
    },
    /// Thread count beyond the pool's hard ceiling
    /// (`0` = share the global pool, always accepted).
    Threads {
        /// The rejected thread count.
        requested: usize,
        /// The pool's `MAX_THREADS` ceiling.
        max: usize,
    },
    /// A fused multi-model scan was requested on an execution tier the
    /// fused kernels do not cover (only the CPU tier interleaves models).
    FusedPlanUnsupported {
        /// Label of the rejected plan.
        plan: &'static str,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::F0WithoutSsv => {
                write!(
                    f,
                    "f0 is the SSV pre-filter threshold; enable ssv to use it"
                )
            }
            ConfigError::Threshold { field, value } => {
                write!(f, "{field} must be a P-value in (0, 1], got {value}")
            }
            ConfigError::ReportEvalue { value } => {
                write!(f, "report E-value must be positive and finite, got {value}")
            }
            ConfigError::BatchTooWide { requested, max } => {
                write!(
                    f,
                    "batch width {requested} exceeds the kernel maximum {max} (0 = auto)"
                )
            }
            ConfigError::PipelineDepthTooDeep { requested, max } => {
                write!(
                    f,
                    "pipeline depth {requested} exceeds the kernel maximum {max} (0 = auto)"
                )
            }
            ConfigError::Threads { requested, max } => {
                write!(
                    f,
                    "thread count {requested} exceeds the pool maximum {max} (0 = auto)"
                )
            }
            ConfigError::FusedPlanUnsupported { plan } => {
                write!(
                    f,
                    "fused multi-model scan only runs on the cpu tier, not `{plan}` \
                     (disable fusing to use device plans)"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validating builder for [`PipelineConfig`]; see
/// [`PipelineConfig::builder`].
#[derive(Debug, Clone)]
pub struct PipelineConfigBuilder {
    config: PipelineConfig,
    f0_explicit: bool,
}

impl PipelineConfigBuilder {
    /// MSV filter P-value threshold (`--F1`).
    pub fn f1(mut self, v: f64) -> Self {
        self.config.f1 = v;
        self
    }

    /// Viterbi filter P-value threshold (`--F2`).
    pub fn f2(mut self, v: f64) -> Self {
        self.config.f2 = v;
        self
    }

    /// Forward P-value threshold (`--F3`).
    pub fn f3(mut self, v: f64) -> Self {
        self.config.f3 = v;
        self
    }

    /// Report hits with E-value at or below this.
    pub fn report_evalue(mut self, v: f64) -> Self {
        self.config.report_evalue = v;
        self
    }

    /// Apply the null2 biased-composition correction.
    pub fn null2(mut self, on: bool) -> Self {
        self.config.null2 = on;
        self
    }

    /// Enable the SSV stage-0 pre-filter.
    pub fn ssv(mut self, on: bool) -> Self {
        self.config.ssv = on;
        self
    }

    /// SSV pre-filter P-value threshold; requires [`Self::ssv`] or
    /// [`Self::build`] rejects the configuration.
    pub fn f0(mut self, v: f64) -> Self {
        self.config.f0 = v;
        self.f0_explicit = true;
        self
    }

    /// Batch width for the interleaved filter sweeps (`0` = auto).
    pub fn batch(mut self, width: usize) -> Self {
        self.config.batch = width;
        self
    }

    /// Software-pipeline depth for the batched filter loops (`0` = auto,
    /// `1` = un-pipelined baseline).
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.config.pipeline_depth = depth;
        self
    }

    /// Score stage 3 with the generic log-space Forward oracle.
    pub fn fwd_generic(mut self, on: bool) -> Self {
        self.config.fwd_generic = on;
        self
    }

    /// CPU worker threads for the sweep fan-out (`0` = share the global
    /// pool sized by `H3W_THREADS` / available parallelism).
    pub fn threads(mut self, n: usize) -> Self {
        self.config.threads = n;
        self
    }

    /// Replace everything set so far with `--max` sensitivity mode.
    pub fn max_sensitivity(mut self) -> Self {
        self.config = PipelineConfig::max_sensitivity();
        self.f0_explicit = false;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<PipelineConfig, ConfigError> {
        if self.f0_explicit && !self.config.ssv {
            return Err(ConfigError::F0WithoutSsv);
        }
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_hmmer3() {
        let c = PipelineConfig::default();
        assert_eq!(c.f1, 0.02);
        assert_eq!(c.f2, 1e-3);
        assert_eq!(c.f3, 1e-5);
    }

    #[test]
    fn max_mode_disables_filters() {
        let c = PipelineConfig::max_sensitivity();
        assert_eq!(c.f1, 1.0);
        assert_eq!(c.f2, 1.0);
        assert!(!c.ssv);
    }

    #[test]
    fn ssv_prefilter_defaults_off_and_loose() {
        let c = PipelineConfig::default();
        assert!(!c.ssv, "SSV must be opt-in: default funnels are HMMER's");
        assert!(c.f0 > c.f1, "f0 must be looser than f1");
        assert_eq!(c.batch, 0, "batch width defaults to auto");
    }

    #[test]
    fn striped_forward_is_the_default_stage3() {
        assert!(!PipelineConfig::default().fwd_generic);
        assert!(!PipelineConfig::max_sensitivity().fwd_generic);
    }

    #[test]
    fn builder_defaults_equal_struct_defaults() {
        assert_eq!(
            PipelineConfig::builder().build().unwrap(),
            PipelineConfig::default()
        );
        assert_eq!(
            PipelineConfig::builder().max_sensitivity().build().unwrap(),
            PipelineConfig::max_sensitivity()
        );
    }

    #[test]
    fn builder_rejects_f0_without_ssv() {
        let err = PipelineConfig::builder().f0(0.05).build().unwrap_err();
        assert_eq!(err, ConfigError::F0WithoutSsv);
        // With SSV on, the same f0 is accepted…
        let cfg = PipelineConfig::builder()
            .ssv(true)
            .f0(0.05)
            .build()
            .unwrap();
        assert!(cfg.ssv);
        assert_eq!(cfg.f0, 0.05);
        // …and enabling SSV without touching f0 keeps the loose default.
        let cfg = PipelineConfig::builder().ssv(true).build().unwrap();
        assert_eq!(cfg.f0, PipelineConfig::default().f0);
    }

    #[test]
    fn builder_rejects_batch_beyond_kernel_width() {
        let err = PipelineConfig::builder()
            .batch(MAX_BATCH + 1)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::BatchTooWide {
                requested: MAX_BATCH + 1,
                max: MAX_BATCH
            }
        );
        // 0 = auto and the maximum itself are both valid.
        assert!(PipelineConfig::builder().batch(0).build().is_ok());
        assert!(PipelineConfig::builder().batch(MAX_BATCH).build().is_ok());
    }

    #[test]
    fn builder_rejects_pipeline_depth_beyond_kernel_maximum() {
        let err = PipelineConfig::builder()
            .pipeline_depth(MAX_PIPELINE_DEPTH + 1)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::PipelineDepthTooDeep {
                requested: MAX_PIPELINE_DEPTH + 1,
                max: MAX_PIPELINE_DEPTH
            }
        );
        // 0 = auto, the un-pipelined baseline, and the maximum are valid.
        assert!(PipelineConfig::builder().pipeline_depth(0).build().is_ok());
        assert!(PipelineConfig::builder().pipeline_depth(1).build().is_ok());
        assert!(PipelineConfig::builder()
            .pipeline_depth(MAX_PIPELINE_DEPTH)
            .build()
            .is_ok());
    }

    #[test]
    fn builder_rejects_out_of_range_thresholds() {
        for bad in [0.0, -0.1, 1.5, f64::NAN, f64::INFINITY] {
            let err = PipelineConfig::builder().f1(bad).build().unwrap_err();
            assert!(
                matches!(err, ConfigError::Threshold { field: "f1", .. }),
                "f1 = {bad}: {err}"
            );
        }
        // P = 1.0 (filter off) is in range.
        assert!(PipelineConfig::builder()
            .f1(1.0)
            .f2(1.0)
            .f3(1.0)
            .build()
            .is_ok());
        let err = PipelineConfig::builder()
            .report_evalue(-1.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::ReportEvalue { .. }));
    }

    #[test]
    fn builder_rejects_threads_beyond_pool_ceiling() {
        use h3w_cpu::h3w_pool::MAX_THREADS;
        let err = PipelineConfig::builder()
            .threads(MAX_THREADS + 1)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::Threads {
                requested: MAX_THREADS + 1,
                max: MAX_THREADS
            }
        );
        // 0 = shared global pool, explicit small counts, and the ceiling
        // itself are all valid.
        assert_eq!(
            PipelineConfig::builder()
                .threads(0)
                .build()
                .unwrap()
                .threads,
            0
        );
        assert_eq!(
            PipelineConfig::builder()
                .threads(4)
                .build()
                .unwrap()
                .threads,
            4
        );
        assert!(PipelineConfig::builder()
            .threads(MAX_THREADS)
            .build()
            .is_ok());
    }

    #[test]
    fn config_errors_render_for_cli_use() {
        // guarded_main prints these verbatim; each must name the field.
        assert!(ConfigError::F0WithoutSsv.to_string().contains("ssv"));
        let e = ConfigError::Threshold {
            field: "f2",
            value: 2.0,
        };
        assert!(e.to_string().contains("f2"));
        let e = ConfigError::BatchTooWide {
            requested: 99,
            max: 8,
        };
        assert!(e.to_string().contains("99") && e.to_string().contains('8'));
        let e = ConfigError::ReportEvalue { value: -3.0 };
        assert!(e.to_string().contains("-3"));
        let e = ConfigError::Threads {
            requested: 1000,
            max: 512,
        };
        assert!(e.to_string().contains("1000") && e.to_string().contains("512"));
        let e = ConfigError::FusedPlanUnsupported { plan: "device" };
        assert!(e.to_string().contains("device") && e.to_string().contains("cpu"));
    }
}
