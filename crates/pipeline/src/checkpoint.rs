//! Checkpoint/resume state for chunked streaming sweeps.
//!
//! A long Env_nr-scale sweep (§IV-A) should not restart from zero when
//! the process dies. [`StreamCheckpoint`] captures everything a chunked
//! sweep has accumulated — the chunk cursor, per-stage funnel counters,
//! and the survivor hits — as a small JSON file written atomically
//! (tmp + rename) after every chunk.
//!
//! The repo vendors no serde, so the format is hand-rolled: a strict
//! subset of JSON (objects, arrays, strings, unsigned integers) with
//! every float stored as the **hex encoding of its IEEE-754 bits**
//! (`f32` → 8 hex digits, `f64` → 16). That keeps resume bit-exact: a
//! killed-then-resumed sweep reports byte-identical scores and E-values
//! to an uninterrupted one, with no decimal round-trip drift.

use crate::report::{Hit, StageStats};
use std::fmt::Write as _;
use std::path::Path;

/// Current checkpoint format version. Version 2 added `db_hash`, the
/// content hash of the swept database — resume against a different
/// database is rejected instead of silently merging wrong hits.
pub const CHECKPOINT_VERSION: u64 = 2;

/// Why a checkpoint could not be saved or loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem failure (path and OS diagnostic).
    Io {
        /// Path involved.
        path: String,
        /// OS error text.
        msg: String,
    },
    /// The file is not a checkpoint this version understands.
    Parse(String),
    /// The checkpoint was written by an incompatible format version.
    Version {
        /// Version found in the file.
        found: u64,
    },
    /// The checkpoint belongs to a different sweep (database size or
    /// chunking changed under it).
    Mismatch(String),
    /// The checkpoint was written against a different database: its
    /// recorded content hash does not match the database being swept.
    DatabaseDrift {
        /// Content hash recorded in the checkpoint.
        expected: u64,
        /// Content hash of the database offered for resume.
        found: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { path, msg } => write!(f, "checkpoint {path}: {msg}"),
            CheckpointError::Parse(msg) => write!(f, "checkpoint parse error: {msg}"),
            CheckpointError::Version { found } => {
                write!(
                    f,
                    "checkpoint version {found} (this build reads {CHECKPOINT_VERSION})"
                )
            }
            CheckpointError::Mismatch(msg) => write!(f, "checkpoint mismatch: {msg}"),
            CheckpointError::DatabaseDrift { expected, found } => write!(
                f,
                "checkpoint was written against a different database \
                 (content hash {expected:016x}, this database hashes to {found:016x})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Everything a chunked sweep has accumulated, sufficient to resume
/// after the last fully-processed chunk.
///
/// Posterior decodings are **not** persisted — they are a null2-path
/// cache, and domain reporting recomputes them on demand — so resumed
/// hits always carry `posterior: None`.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamCheckpoint {
    /// Chunks fully processed (the resume cursor).
    pub chunks_done: usize,
    /// Sequences consumed by those chunks (global seqid base).
    pub seq_base: u32,
    /// E-value scale of the sweep (whole-database size); a resume with a
    /// different value is a different sweep and is rejected.
    pub total_seqs: usize,
    /// Content hash of the swept database ([`h3w_seqdb::content_hash`]);
    /// a resume against a database with a different hash is rejected
    /// with [`CheckpointError::DatabaseDrift`].
    pub db_hash: u64,
    /// Accumulated funnel counters (MSV, P7Viterbi, Forward).
    pub stages: [StageStats; 3],
    /// Survivor hits so far (global seqids, E-values already on the
    /// whole-database scale).
    pub hits: Vec<Hit>,
}

impl StreamCheckpoint {
    /// A fresh sweep over `total_seqs` sequences of the database hashing
    /// to `db_hash`: nothing done yet.
    pub fn fresh(total_seqs: usize, db_hash: u64) -> StreamCheckpoint {
        StreamCheckpoint {
            chunks_done: 0,
            seq_base: 0,
            total_seqs,
            db_hash,
            stages: [
                StageStats::new("MSV", 0, 0, 0.0),
                StageStats::new("P7Viterbi", 0, 0, 0.0),
                StageStats::new("Forward", 0, 0, 0.0),
            ],
            hits: Vec::new(),
        }
    }

    /// Serialize to the checkpoint JSON format.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.hits.len() * 160);
        s.push('{');
        let _ = write!(s, "\"version\":{CHECKPOINT_VERSION}");
        let _ = write!(s, ",\"chunks_done\":{}", self.chunks_done);
        let _ = write!(s, ",\"seq_base\":{}", self.seq_base);
        let _ = write!(s, ",\"total_seqs\":{}", self.total_seqs);
        let _ = write!(s, ",\"db_hash\":\"{:016x}\"", self.db_hash);
        s.push_str(",\"stages\":[");
        for (i, st) in self.stages.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":{},\"seqs_in\":{},\"seqs_out\":{},\"residues_in\":{},\"time_s\":{}}}",
                json_string(&st.name),
                st.seqs_in,
                st.seqs_out,
                st.residues_in,
                hex_f64(st.time_s),
            );
        }
        s.push_str("],\"hits\":[");
        for (i, h) in self.hits.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"seqid\":{},\"name\":{},\"msv\":{},\"vit\":{},\"fwd\":{},\"pvalue\":{},\"evalue\":{}}}",
                h.seqid,
                json_string(&h.name),
                hex_f32(h.msv_score),
                hex_f32(h.vit_score),
                hex_f32(h.fwd_score),
                hex_f64(h.pvalue),
                hex_f64(h.evalue),
            );
        }
        s.push_str("]}");
        s
    }

    /// Parse the checkpoint JSON format.
    pub fn from_json(text: &str) -> Result<StreamCheckpoint, CheckpointError> {
        let value = Parser::new(text).parse_document()?;
        let obj = value.as_object("checkpoint")?;
        let version = get(obj, "version")?.as_u64("version")?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Version { found: version });
        }
        let stages_v = get(obj, "stages")?.as_array("stages")?;
        if stages_v.len() != 3 {
            return Err(CheckpointError::Parse(format!(
                "expected 3 stages, found {}",
                stages_v.len()
            )));
        }
        let mut stages = Vec::with_capacity(3);
        for v in stages_v {
            let st = v.as_object("stage")?;
            stages.push(StageStats {
                name: get(st, "name")?.as_str("name")?.to_string(),
                seqs_in: get(st, "seqs_in")?.as_u64("seqs_in")? as usize,
                seqs_out: get(st, "seqs_out")?.as_u64("seqs_out")? as usize,
                residues_in: get(st, "residues_in")?.as_u64("residues_in")?,
                time_s: get(st, "time_s")?.as_hex_f64("time_s")?,
            });
        }
        let mut hits = Vec::new();
        for v in get(obj, "hits")?.as_array("hits")? {
            let h = v.as_object("hit")?;
            hits.push(Hit {
                seqid: get(h, "seqid")?.as_u64("seqid")? as u32,
                name: get(h, "name")?.as_str("name")?.to_string(),
                msv_score: get(h, "msv")?.as_hex_f32("msv")?,
                vit_score: get(h, "vit")?.as_hex_f32("vit")?,
                fwd_score: get(h, "fwd")?.as_hex_f32("fwd")?,
                pvalue: get(h, "pvalue")?.as_hex_f64("pvalue")?,
                evalue: get(h, "evalue")?.as_hex_f64("evalue")?,
                posterior: None,
            });
        }
        let stages: [StageStats; 3] = stages.try_into().expect("length checked above");
        Ok(StreamCheckpoint {
            chunks_done: get(obj, "chunks_done")?.as_u64("chunks_done")? as usize,
            seq_base: get(obj, "seq_base")?.as_u64("seq_base")? as u32,
            total_seqs: get(obj, "total_seqs")?.as_u64("total_seqs")? as usize,
            db_hash: get(obj, "db_hash")?.as_hex_u64("db_hash")?,
            stages,
            hits,
        })
    }

    /// Write atomically: serialize to `<path>.tmp`, then rename over
    /// `path`, so a crash mid-write never leaves a torn checkpoint.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let io = |e: std::io::Error| CheckpointError::Io {
            path: path.display().to_string(),
            msg: e.to_string(),
        };
        let tmp = path.with_extension("ckpt.tmp");
        std::fs::write(&tmp, self.to_json()).map_err(io)?;
        std::fs::rename(&tmp, path).map_err(io)
    }

    /// Load a checkpoint previously written by [`StreamCheckpoint::save`].
    pub fn load(path: &Path) -> Result<StreamCheckpoint, CheckpointError> {
        let text = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io {
            path: path.display().to_string(),
            msg: e.to_string(),
        })?;
        StreamCheckpoint::from_json(&text)
    }
}

fn hex_f32(v: f32) -> String {
    format!("\"{:08x}\"", v.to_bits())
}

fn hex_f64(v: f64) -> String {
    format!("\"{:016x}\"", v.to_bits())
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The strict JSON subset the writer above emits.
enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    String(String),
    Number(u64),
}

impl Json {
    fn as_object(&self, what: &str) -> Result<&[(String, Json)], CheckpointError> {
        match self {
            Json::Object(o) => Ok(o),
            _ => Err(CheckpointError::Parse(format!("{what}: expected object"))),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[Json], CheckpointError> {
        match self {
            Json::Array(a) => Ok(a),
            _ => Err(CheckpointError::Parse(format!("{what}: expected array"))),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, CheckpointError> {
        match self {
            Json::String(s) => Ok(s),
            _ => Err(CheckpointError::Parse(format!("{what}: expected string"))),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, CheckpointError> {
        match self {
            Json::Number(n) => Ok(*n),
            _ => Err(CheckpointError::Parse(format!("{what}: expected integer"))),
        }
    }

    fn as_hex_f32(&self, what: &str) -> Result<f32, CheckpointError> {
        let s = self.as_str(what)?;
        let bits = u32::from_str_radix(s, 16)
            .map_err(|_| CheckpointError::Parse(format!("{what}: bad f32 bits {s:?}")))?;
        Ok(f32::from_bits(bits))
    }

    fn as_hex_f64(&self, what: &str) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.as_hex_u64(what)?))
    }

    fn as_hex_u64(&self, what: &str) -> Result<u64, CheckpointError> {
        let s = self.as_str(what)?;
        u64::from_str_radix(s, 16)
            .map_err(|_| CheckpointError::Parse(format!("{what}: bad hex u64 {s:?}")))
    }
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, CheckpointError> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| CheckpointError::Parse(format!("missing key {key:?}")))
}

/// Recursive-descent parser over the subset.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> CheckpointError {
        CheckpointError::Parse(format!("{msg} at byte {}", self.pos))
    }

    fn parse_document(&mut self) -> Result<Json, CheckpointError> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing data"));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), CheckpointError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, CheckpointError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::String(self.parse_string()?)),
            Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn parse_object(&mut self) -> Result<Json, CheckpointError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(entries));
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            entries.push((key, self.parse_value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, CheckpointError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, CheckpointError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Multi-byte UTF-8 passes through whole; the input was
                    // a &str, so slicing at char boundaries is safe here.
                    let start = self.pos;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&c| c != b'"' && c != b'\\')
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, CheckpointError> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<u64>()
            .map(Json::Number)
            .map_err(|_| self.err("integer out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StreamCheckpoint {
        let mut ck = StreamCheckpoint::fresh(5000, 0xdead_beef_cafe_f00d);
        ck.chunks_done = 3;
        ck.seq_base = 1234;
        ck.stages[0].seqs_in = 1234;
        ck.stages[0].seqs_out = 27;
        ck.stages[0].residues_in = 250_000;
        ck.stages[0].time_s = 0.125;
        ck.hits.push(Hit {
            seqid: 17,
            name: "hom4 \"quoted\" \\slash\u{7}".into(),
            msv_score: 12.75,
            vit_score: f32::NEG_INFINITY,
            fwd_score: 31.5,
            pvalue: 2.5e-31,
            evalue: 1.25e-27,
            posterior: None,
        });
        ck
    }

    #[test]
    fn json_round_trip_is_bit_exact() {
        let ck = sample();
        let back = StreamCheckpoint::from_json(&ck.to_json()).unwrap();
        assert_eq!(back, ck);
        // Float identity down to the bits, including the -inf sentinel.
        assert_eq!(
            back.hits[0].vit_score.to_bits(),
            f32::NEG_INFINITY.to_bits()
        );
        assert_eq!(back.hits[0].pvalue.to_bits(), 2.5e-31f64.to_bits());
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("h3w-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.ckpt");
        let ck = sample();
        ck.save(&path).unwrap();
        assert_eq!(StreamCheckpoint::load(&path).unwrap(), ck);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoints_are_rejected_not_panicked() {
        for bad in [
            "",
            "{",
            "not json",
            "{\"version\":2}",
            "{\"version\":99,\"chunks_done\":0,\"seq_base\":0,\"total_seqs\":1,\"db_hash\":\"0\",\"stages\":[],\"hits\":[]}",
            "{\"version\":2,\"chunks_done\":0,\"seq_base\":0,\"total_seqs\":1,\"db_hash\":\"0\",\"stages\":[],\"hits\":[]}",
            // Version-1 files (no db_hash) are rejected, typed.
            "{\"version\":1,\"chunks_done\":0,\"seq_base\":0,\"total_seqs\":1,\"stages\":[],\"hits\":[]}",
            "{\"version\":2,\"chunks_done\":0,\"seq_base\":0,\"total_seqs\":1,\"db_hash\":\"zz\",\"stages\":[],\"hits\":[]}",
            "{\"version\":2,\"chunks_done\":0} trailing",
        ] {
            assert!(StreamCheckpoint::from_json(bad).is_err(), "accepted {bad:?}");
        }
        assert!(matches!(
            StreamCheckpoint::from_json(
                "{\"version\":99,\"chunks_done\":0,\"seq_base\":0,\"total_seqs\":1,\"db_hash\":\"0\",\"stages\":[],\"hits\":[]}"
            ),
            Err(CheckpointError::Version { found: 99 })
        ));
        assert!(matches!(
            StreamCheckpoint::from_json(
                "{\"version\":1,\"chunks_done\":0,\"seq_base\":0,\"total_seqs\":1,\"stages\":[],\"hits\":[]}"
            ),
            Err(CheckpointError::Version { found: 1 })
        ));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = StreamCheckpoint::load(Path::new("/nonexistent/sweep.ckpt")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io { .. }));
    }
}
