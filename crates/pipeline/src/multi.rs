//! Multi-query search — scan a database with many models (hmmscan-style),
//! either as independent per-family sweeps or as one **fused** sweep that
//! amortizes the database traversal over every model.
//!
//! This is the workload §IV's Pfam statistics are about: "about 98.9% of
//! Pfam database have size less than 1002", so a family sweep spends
//! nearly all of its time in configurations where small-model packing
//! pays (the CUDAMPF++ shape: pack several profiles into one pass to
//! exhaust execution resources). [`scan`] drives the fused path on the
//! CPU tier: models are binned by stripe count
//! ([`h3w_cpu::model_packs`]), the byte filters score every (model,
//! sequence) pair in one pass over the database
//! ([`h3w_cpu::msv_multi_outcomes`]), and each model's survivors route
//! into the shared Viterbi/Forward stages as flattened (model, sequence)
//! work items on one scan-level pool. Per-model Gumbel thresholds are
//! applied at survivor-packing time, so hits, E-values, and funnel
//! counts are **bit-identical** to running [`Pipeline::search`] once per
//! model — the fused path is a pure throughput optimization.
//!
//! [`scan_with_plan`] exposes the unfused per-model path for the device
//! execution tiers; [`best_hits_per_target`] inverts results to the
//! hmmscan view (for each target, which families match?).

use crate::config::{ConfigError, PipelineConfig};
use crate::report::{Hit, StageStats};
use crate::run::{ExecPlan, Pipeline};
use h3w_core::fault::SweepError;
use h3w_cpu::reference::forward_generic;
use h3w_cpu::{
    fused_pack_width, model_pack_stats, msv_multi_outcomes_pipelined,
    msv_outcomes_batched_pipelined, resolve_pipelined_width, ssv_multi_outcomes_pipelined,
    FwdWorkspace, PoolHandle, StripedMsv, StripedSsv, ThreadPool, VitWorkspace,
};
use h3w_hmm::msvprofile::MsvProfile;
use h3w_hmm::plan7::CoreModel;
use h3w_seqdb::SeqDb;
use h3w_trace::{Telemetry, Trace};
use std::time::Instant;

/// Why a multi-model [`scan`] failed.
#[derive(Debug)]
pub enum ScanError {
    /// A per-model sweep failed (device plans can lose devices).
    Sweep(SweepError),
    /// The configuration was rejected — bad thresholds, or a fused scan
    /// requested on an execution tier the fused kernels do not cover.
    Config(ConfigError),
}

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanError::Sweep(e) => write!(f, "family sweep failed: {e}"),
            ScanError::Config(e) => write!(f, "scan configuration rejected: {e}"),
        }
    }
}

impl std::error::Error for ScanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScanError::Sweep(e) => Some(e),
            ScanError::Config(e) => Some(e),
        }
    }
}

impl From<SweepError> for ScanError {
    fn from(e: SweepError) -> Self {
        ScanError::Sweep(e)
    }
}

impl From<ConfigError> for ScanError {
    fn from(e: ConfigError) -> Self {
        ScanError::Config(e)
    }
}

/// Hits of one query model against the database.
#[derive(Debug, Clone)]
pub struct FamilyResult {
    /// Model name.
    pub family: String,
    /// Model length.
    pub m: usize,
    /// Reported hits (best E-value first).
    pub hits: Vec<Hit>,
    /// Funnel: sequences passing (MSV, Viterbi).
    pub passed: (usize, usize),
    /// The full three-stage funnel record. Counts are per family; on the
    /// fused path the stage times are the fused sweep's aggregate wall
    /// time (one traversal serves every family, so per-family time has no
    /// meaningful attribution).
    pub stages: Vec<StageStats>,
}

/// A family match from the per-target view.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetMatch {
    /// Family (model) name.
    pub family: String,
    /// Forward score in nats.
    pub score: f32,
    /// E-value against this database.
    pub evalue: f64,
}

/// A completed [`scan_traced`]: per-family results plus the telemetry
/// snapshot when the trace was armed.
#[derive(Debug)]
pub struct ScanReport {
    /// Per-family results, in model order.
    pub results: Vec<FamilyResult>,
    /// The scan telemetry tree (`None` when the trace was disabled).
    pub telemetry: Option<Telemetry>,
}

/// Search every model against the database on the fused CPU path: one
/// pass over the database feeds every model (see the module docs).
/// Results come back in model order regardless of thread count, and are
/// bit-identical to per-model [`Pipeline::search`] runs at every pack
/// width, backend, and pool size.
pub fn scan(
    models: &[CoreModel],
    db: &SeqDb,
    config: PipelineConfig,
    seed: u64,
) -> Result<Vec<FamilyResult>, ScanError> {
    scan_with_plan(models, db, config, &ExecPlan::Cpu, true, seed)
}

/// [`scan`] with an explicit execution plan and fused-path switch. The
/// fused sweep only exists on the CPU tier; `fused = true` with a device
/// plan is rejected with a typed [`ConfigError`]. `fused = false` runs
/// one independent [`Pipeline::search`] per model (fanned across the
/// global pool) under any plan.
pub fn scan_with_plan(
    models: &[CoreModel],
    db: &SeqDb,
    config: PipelineConfig,
    plan: &ExecPlan,
    fused: bool,
    seed: u64,
) -> Result<Vec<FamilyResult>, ScanError> {
    let trace = if Pipeline::profile_env() {
        Trace::on()
    } else {
        Trace::off()
    };
    scan_traced(models, db, config, plan, fused, seed, &trace).map(|r| r.results)
}

/// [`scan_with_plan`] with a caller-supplied telemetry trace (`hmmscan
/// --profile`). Per-family funnel counters land under
/// `scan/families/<name>`, and the fused path records its model-packing
/// schedule under `scan/packs`. Tracing never changes scores or hits.
pub fn scan_traced(
    models: &[CoreModel],
    db: &SeqDb,
    config: PipelineConfig,
    plan: &ExecPlan,
    fused: bool,
    seed: u64,
    trace: &Trace,
) -> Result<ScanReport, ScanError> {
    config.validate()?;
    if fused && !matches!(plan, ExecPlan::Cpu) {
        return Err(ConfigError::FusedPlanUnsupported { plan: plan.label() }.into());
    }
    let whole = trace.span("scan");
    let results = if fused {
        let pipes = prepare_scan(models, config, seed);
        scan_fused(&pipes, db, config, trace)
    } else {
        scan_independent(models, db, config, plan, seed)?
    };
    if trace.is_on() {
        for fr in &results {
            let base = format!("scan/families/{}", fr.family);
            trace.add(&base, "m", fr.m as u64);
            trace.add(&base, "hits", fr.hits.len() as u64);
            for st in &fr.stages {
                let path = format!("{base}/{}", st.name);
                trace.add(&path, "seqs_in", st.seqs_in as u64);
                trace.add(&path, "seqs_out", st.seqs_out as u64);
                trace.add(&path, "residues_in", st.residues_in);
                trace.add_secs(&path, st.time_s);
            }
        }
    }
    drop(whole);
    Ok(ScanReport {
        results,
        telemetry: trace.snapshot(),
    })
}

/// Prepare one pipeline per model under the scan conventions: the
/// per-model seed split (`seed ^ (qi << 17)`, identical to the unfused
/// path, so calibrations and E-values match it bit for bit) and
/// `threads: 0` so the pipes defer to whichever pool the scan fans out
/// on instead of spawning their own. Preparation — Gumbel calibration —
/// is the expensive once-per-model half of a scan; resident services
/// prepare a model library once and [`scan_prepared`] with it many
/// times.
pub fn prepare_scan(models: &[CoreModel], config: PipelineConfig, seed: u64) -> Vec<Pipeline> {
    let pipe_cfg = PipelineConfig {
        threads: 0,
        ..config
    };
    ThreadPool::global().map_collect(models.len(), |qi| {
        Pipeline::prepare(&models[qi], pipe_cfg, seed ^ ((qi as u64) << 17))
    })
}

/// Scan the database with pipelines built by [`prepare_scan`], skipping
/// the per-call calibration cost. `fused = true` drives the one-traversal
/// fused sweep; `fused = false` fans independent per-pipe searches across
/// the global pool. `config` must be the config the pipes were prepared
/// with (thresholds, batch width, and the SSV pre-filter flag are read
/// from it). Results are bit-identical to [`scan_with_plan`] on the CPU
/// plan with the same seed.
pub fn scan_prepared(
    pipes: &[Pipeline],
    db: &SeqDb,
    config: PipelineConfig,
    fused: bool,
    trace: &Trace,
) -> Result<Vec<FamilyResult>, ScanError> {
    config.validate()?;
    if fused {
        Ok(scan_fused(pipes, db, config, trace))
    } else {
        let results: Vec<Result<FamilyResult, SweepError>> =
            ThreadPool::global().map_collect(pipes.len(), |qi| {
                let res = pipes[qi].search(db, &ExecPlan::Cpu)?;
                Ok(FamilyResult {
                    family: pipes[qi].profile.name.clone(),
                    m: pipes[qi].profile.m,
                    passed: (res.stages[0].seqs_out, res.stages[1].seqs_out),
                    stages: res.stages.to_vec(),
                    hits: res.hits,
                })
            });
        let collected: Result<Vec<FamilyResult>, SweepError> = results.into_iter().collect();
        Ok(collected?)
    }
}

/// The unfused path: one full [`Pipeline::search`] per model, fanned
/// across the global pool (per-query sweeps detect they are on a pool
/// worker and run inline, so model-level parallelism owns the cores).
/// The first failing model (in model order — deterministic at every
/// thread count) reports its error.
fn scan_independent(
    models: &[CoreModel],
    db: &SeqDb,
    config: PipelineConfig,
    plan: &ExecPlan,
    seed: u64,
) -> Result<Vec<FamilyResult>, ScanError> {
    let results: Vec<Result<FamilyResult, SweepError>> =
        ThreadPool::global().map_collect(models.len(), |qi| {
            let model = &models[qi];
            let pipe = Pipeline::prepare(model, config, seed ^ ((qi as u64) << 17));
            let res = pipe.search(db, plan)?;
            Ok(FamilyResult {
                family: model.name.clone(),
                m: model.len(),
                passed: (res.stages[0].seqs_out, res.stages[1].seqs_out),
                stages: res.stages.to_vec(),
                hits: res.hits,
            })
        });
    let collected: Result<Vec<FamilyResult>, SweepError> = results.into_iter().collect();
    Ok(collected?)
}

/// The fused CPU path over prepared pipelines: drive the three funnel
/// stages over flattened (model, sequence) work items so each stage is
/// one pool fan-out for the whole scan instead of one per model.
///
/// Equivalence to per-model `search` holds stage by stage: stage 1 is
/// the fused multi-profile byte sweep (bit-identical to the per-model
/// batched sweep — slots are independent), stages 2 and 3 run the same
/// per-sequence kernels the host stages run, and per-model thresholds
/// are applied with each model's own calibration at survivor-packing
/// time. [`prepare_scan`] seeds each pipe the way the unfused path
/// does (`seed ^ (qi << 17)`), so calibrations — and therefore
/// E-values — are identical too.
fn scan_fused(
    pipes: &[Pipeline],
    db: &SeqDb,
    config: PipelineConfig,
    trace: &Trace,
) -> Vec<FamilyResult> {
    let n = db.len();
    let scan_pool = PoolHandle::with_threads(config.threads);
    let pool = scan_pool.pool();

    // Stage 1: every model against every sequence in one DB traversal.
    // With the SSV pre-filter on, SSV is the fused full-database sweep
    // and MSV runs per model over its own survivor mask (the same masked
    // batched sweep `search` uses, so funnels stay bit-identical).
    let t0 = Instant::now();
    let (msv_scores, eligible): (Vec<Vec<f32>>, Vec<Vec<bool>>) = if config.ssv {
        let ssv_refs: Vec<(&StripedSsv, &MsvProfile)> = pipes
            .iter()
            .map(|p| {
                let (striped, _) = p.ssv_prefilter().expect("config.ssv built the pre-filter");
                (striped, &p.msv)
            })
            .collect();
        let ssv_out = ssv_multi_outcomes_pipelined(
            pool,
            &ssv_refs,
            &db.seqs,
            config.batch,
            config.pipeline_depth,
        );
        let mut scores = Vec::with_capacity(pipes.len());
        let mut elig = Vec::with_capacity(pipes.len());
        for (m, pipe) in pipes.iter().enumerate() {
            let pass0: Vec<bool> = ssv_out[m]
                .iter()
                .zip(&db.seqs)
                .map(|(o, q)| pipe.ssv_pvalue(o.score, q.len()) < config.f0)
                .collect();
            let out = msv_outcomes_batched_pipelined(
                pool,
                &pipe.striped_msv,
                &pipe.msv,
                &db.seqs,
                Some(&pass0),
                config.batch,
                config.pipeline_depth,
            );
            scores.push(
                out.iter()
                    .map(|o| o.map_or(f32::NEG_INFINITY, |o| o.score))
                    .collect(),
            );
            elig.push(out.iter().map(|o| o.is_some()).collect());
        }
        (scores, elig)
    } else {
        let refs: Vec<(&StripedMsv, &MsvProfile)> =
            pipes.iter().map(|p| (&p.striped_msv, &p.msv)).collect();
        let out = msv_multi_outcomes_pipelined(
            pool,
            &refs,
            &db.seqs,
            config.batch,
            config.pipeline_depth,
        );
        let scores = out
            .iter()
            .map(|per_seq| per_seq.iter().map(|o| o.score).collect())
            .collect();
        (scores, vec![vec![true; n]; pipes.len()])
    };
    // Per-model Gumbel thresholds at survivor-packing time.
    let pass1: Vec<Vec<bool>> = pipes
        .iter()
        .enumerate()
        .map(|(m, pipe)| {
            msv_scores[m]
                .iter()
                .zip(&db.seqs)
                .zip(&eligible[m])
                .map(|((&s, q), &e)| e && pipe.msv_pvalue(s, q.len()) < config.f1)
                .collect()
        })
        .collect();
    let msv_time = t0.elapsed().as_secs_f64();

    // Stage 2: Viterbi over the flattened (model, survivor) pairs — one
    // fan-out for the whole scan.
    let t1 = Instant::now();
    let vit_pairs = flatten_survivors(&pass1);
    let vit_flat: Vec<f32> = pool.map_collect_init(vit_pairs.len(), VitWorkspace::default, {
        let pipes = &pipes;
        let vit_pairs = &vit_pairs;
        move |ws, k| {
            let (m, i) = vit_pairs[k];
            pipes[m]
                .striped_vit
                .run_into(&pipes[m].vit, &db.seqs[i].residues, ws)
                .0
                .score
        }
    });
    let mut vit_scores: Vec<Vec<Option<f32>>> = vec![vec![None; n]; pipes.len()];
    for (&(m, i), &s) in vit_pairs.iter().zip(&vit_flat) {
        vit_scores[m][i] = Some(s);
    }
    let pass2: Vec<Vec<bool>> = pipes
        .iter()
        .enumerate()
        .map(|(m, pipe)| {
            vit_scores[m]
                .iter()
                .zip(&db.seqs)
                .map(|(s, q)| s.is_some_and(|s| pipe.vit_pvalue(s, q.len()) < config.f2))
                .collect()
        })
        .collect();
    let vit_time = t1.elapsed().as_secs_f64();

    // Stage 3: Forward over the remainder, same flattened shape. The
    // striped odds-space kernel scores a slot identically at any batch
    // width, so single-pair scoring here matches `search`'s batched
    // sweep bit for bit.
    let t2 = Instant::now();
    let fwd_pairs = flatten_survivors(&pass2);
    let fwd_flat: Vec<f32> = if config.fwd_generic {
        pool.map_collect(fwd_pairs.len(), |k| {
            let (m, i) = fwd_pairs[k];
            forward_generic(&pipes[m].profile, &db.seqs[i].residues)
        })
    } else {
        pool.map_collect_init(fwd_pairs.len(), FwdWorkspace::default, {
            let pipes = &pipes;
            let fwd_pairs = &fwd_pairs;
            move |ws, k| {
                let (m, i) = fwd_pairs[k];
                pipes[m]
                    .striped_fwd
                    .run_into(&pipes[m].profile, &db.seqs[i].residues, ws)
            }
        })
    };
    let mut fwd_scores: Vec<Vec<Option<f32>>> = vec![vec![None; n]; pipes.len()];
    for (&(m, i), &s) in fwd_pairs.iter().zip(&fwd_flat) {
        fwd_scores[m][i] = Some(s);
    }
    let fwd_time = t2.elapsed().as_secs_f64();

    if trace.is_on() {
        if let Some(first) = pipes.first() {
            let qs: Vec<usize> = pipes.iter().map(|p| p.striped_msv.active_q()).collect();
            let (width, sched) =
                resolve_pipelined_width(first.backend(), config.batch, config.pipeline_depth);
            let pack_width = fused_pack_width(pool.threads(), width);
            let stats = model_pack_stats(&qs, pack_width);
            trace.add("scan/packs", "models", stats.models);
            trace.add("scan/packs", "packs", stats.packs);
            trace.add("scan/packs", "width", stats.width as u64);
            trace.add("scan/packs", "slots", stats.slots);
            trace.add("scan/packs", "workers", pool.threads() as u64);
            trace.add("scan/packs", "pipeline_depth", sched.depth as u64);
            trace.add(
                "scan/packs",
                "prefetch_lookahead_rows",
                sched.lookahead as u64,
            );
        }
        trace.add("scan/stages", "vit_pairs", vit_pairs.len() as u64);
        trace.add("scan/stages", "fwd_pairs", fwd_pairs.len() as u64);
    }

    // Assemble per family through the same hit assembly `search` uses.
    let mut results = Vec::with_capacity(pipes.len());
    for (mi, pipe) in pipes.iter().enumerate() {
        let n1 = pass1[mi].iter().filter(|&&b| b).count();
        let n2 = pass2[mi].iter().filter(|&&b| b).count();
        let stages = [
            StageStats::new(pipe.stage0_name(), n, n1, msv_time).with_residues(db.total_residues()),
            StageStats::new("P7Viterbi", n1, n2, vit_time)
                .with_residues(Pipeline::masked_residues(db, &pass1[mi])),
            StageStats::new("Forward", n2, n2, fwd_time)
                .with_residues(Pipeline::masked_residues(db, &pass2[mi])),
        ];
        let res = pipe.assemble(
            db,
            msv_scores[mi].clone(),
            vit_scores[mi].clone(),
            fwd_scores[mi].clone(),
            stages,
        );
        results.push(FamilyResult {
            family: pipe.profile.name.clone(),
            m: pipe.profile.m,
            passed: (n1, n2),
            stages: res.stages.to_vec(),
            hits: res.hits,
        });
    }
    results
}

/// Flatten per-model survivor masks into (model, sequence) work items,
/// model-major — the deterministic task list both late stages fan out on.
fn flatten_survivors(masks: &[Vec<bool>]) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    for (m, mask) in masks.iter().enumerate() {
        for (i, &keep) in mask.iter().enumerate() {
            if keep {
                pairs.push((m, i));
            }
        }
    }
    pairs
}

/// Invert family results into the per-target view: for each target that
/// matched anything, the families that hit it, best first.
pub fn best_hits_per_target(results: &[FamilyResult]) -> Vec<(u32, Vec<TargetMatch>)> {
    use std::collections::BTreeMap;
    let mut by_target: BTreeMap<u32, Vec<TargetMatch>> = BTreeMap::new();
    for fr in results {
        for h in &fr.hits {
            by_target.entry(h.seqid).or_default().push(TargetMatch {
                family: fr.family.clone(),
                score: h.fwd_score,
                evalue: h.evalue,
            });
        }
    }
    let mut out: Vec<(u32, Vec<TargetMatch>)> = by_target.into_iter().collect();
    for (_, v) in &mut out {
        v.sort_by(|a, b| a.evalue.total_cmp(&b.evalue));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use h3w_hmm::build::{synthetic_model, BuildParams};
    use h3w_seqdb::gen::{generate, sample_homolog, DbGenSpec};
    use h3w_seqdb::DigitalSeq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scan_attributes_targets_to_the_right_family() {
        // Three distinct families; a database whose homologs come from
        // family 0 and family 2 only.
        let families: Vec<CoreModel> = (0..3)
            .map(|i| synthetic_model(50, 1000 + i, &BuildParams::default()))
            .collect();
        let mut db = generate(&DbGenSpec::envnr_like().scaled(2e-4), None, 77);
        let mut rng = StdRng::seed_from_u64(5);
        for (tag, fam) in [(0usize, &families[0]), (2, &families[2])] {
            for j in 0..6 {
                db.seqs.push(DigitalSeq {
                    name: format!("fam{tag}hom{j}"),
                    desc: String::new(),
                    residues: sample_homolog(&mut rng, fam, 25),
                });
            }
        }
        let results = scan(&families, &db, PipelineConfig::default(), 9).unwrap();
        assert_eq!(results.len(), 3);
        let hits_of =
            |i: usize| -> Vec<&str> { results[i].hits.iter().map(|h| h.name.as_str()).collect() };
        // Family 0 finds its own homologs, not family 2's.
        let h0 = hits_of(0);
        assert!(
            h0.iter().filter(|n| n.starts_with("fam0")).count() >= 4,
            "{h0:?}"
        );
        assert_eq!(
            h0.iter().filter(|n| n.starts_with("fam2")).count(),
            0,
            "{h0:?}"
        );
        let h2 = hits_of(2);
        assert!(
            h2.iter().filter(|n| n.starts_with("fam2")).count() >= 4,
            "{h2:?}"
        );
        // Family 1 planted nothing.
        assert!(results[1].hits.len() <= 1, "{:?}", hits_of(1));
    }

    /// Fused scans must be indistinguishable from one `Pipeline::search`
    /// per model: same hits, same E-values, same funnels.
    fn assert_matches_independent_searches(
        families: &[CoreModel],
        db: &SeqDb,
        config: PipelineConfig,
        seed: u64,
    ) {
        let fused = scan(families, db, config, seed).unwrap();
        for (qi, (fr, model)) in fused.iter().zip(families).enumerate() {
            let pipe = Pipeline::prepare(model, config, seed ^ ((qi as u64) << 17));
            let want = pipe.search(db, &ExecPlan::Cpu).unwrap();
            assert_eq!(fr.hits, want.hits, "family {} hits diverged", fr.family);
            assert_eq!(
                fr.passed,
                (want.stages[0].seqs_out, want.stages[1].seqs_out),
                "family {} funnel diverged",
                fr.family
            );
            for (a, b) in fr.stages.iter().zip(&want.stages) {
                assert_eq!(a.name, b.name);
                assert_eq!(
                    (a.seqs_in, a.seqs_out, a.residues_in),
                    (b.seqs_in, b.seqs_out, b.residues_in),
                    "family {} stage {} diverged",
                    fr.family,
                    a.name
                );
            }
        }
    }

    #[test]
    fn fused_scan_matches_per_model_search() {
        // Mixed model sizes across several stripe-count bins.
        let families: Vec<CoreModel> = [33usize, 40, 48, 70, 100]
            .into_iter()
            .enumerate()
            .map(|(i, m)| synthetic_model(m, 2000 + i as u64, &BuildParams::default()))
            .collect();
        let mut spec = DbGenSpec::envnr_like().scaled(1.5e-4);
        spec.homolog_fraction = 0.04;
        let db = generate(&spec, Some(&families[1]), 23);
        assert_matches_independent_searches(&families, &db, PipelineConfig::default(), 11);
    }

    #[test]
    fn fused_scan_matches_per_model_search_with_ssv_prefilter() {
        let families: Vec<CoreModel> = (0..4)
            .map(|i| synthetic_model(36 + 12 * i, 3000 + i as u64, &BuildParams::default()))
            .collect();
        let mut spec = DbGenSpec::envnr_like().scaled(1e-4);
        spec.homolog_fraction = 0.05;
        let db = generate(&spec, Some(&families[0]), 29);
        let config = PipelineConfig::builder().ssv(true).build().unwrap();
        assert_matches_independent_searches(&families, &db, config, 13);
    }

    #[test]
    fn fused_scan_matches_unfused_scan_at_every_batch_width() {
        let families: Vec<CoreModel> = (0..4)
            .map(|i| synthetic_model(40 + 8 * i, 4000 + i as u64, &BuildParams::default()))
            .collect();
        let mut spec = DbGenSpec::envnr_like().scaled(1e-4);
        spec.homolog_fraction = 0.04;
        let db = generate(&spec, Some(&families[2]), 31);
        let base = scan_with_plan(
            &families,
            &db,
            PipelineConfig::default(),
            &ExecPlan::Cpu,
            false,
            17,
        )
        .unwrap();
        for batch in [0usize, 1, 2, 4] {
            let config = PipelineConfig {
                batch,
                ..Default::default()
            };
            let fused = scan(&families, &db, config, 17).unwrap();
            for (f, b) in fused.iter().zip(&base) {
                assert_eq!(f.hits, b.hits, "family {} at batch {batch}", f.family);
                assert_eq!(f.passed, b.passed, "family {} at batch {batch}", f.family);
            }
        }
    }

    /// `prepare_scan` + `scan_prepared` is the resident-server shape:
    /// calibrate once, scan many times. Both the fused and unfused
    /// prepared paths must match the one-shot `scan` (which prepares
    /// internally with the same seed split) hit for hit — and re-scanning
    /// the same pipes must be deterministic.
    #[test]
    fn scan_prepared_matches_one_shot_scan() {
        let families: Vec<CoreModel> = (0..5)
            .map(|i| synthetic_model(36 + 10 * i, 7000 + i as u64, &BuildParams::default()))
            .collect();
        let mut spec = DbGenSpec::envnr_like().scaled(1e-4);
        spec.homolog_fraction = 0.05;
        let db = generate(&spec, Some(&families[1]), 47);
        let config = PipelineConfig::default();
        let one_shot = scan(&families, &db, config, 19).unwrap();

        let pipes = prepare_scan(&families, config, 19);
        let fused = scan_prepared(&pipes, &db, config, true, &Trace::off()).unwrap();
        let unfused = scan_prepared(&pipes, &db, config, false, &Trace::off()).unwrap();
        let again = scan_prepared(&pipes, &db, config, true, &Trace::off()).unwrap();
        for (((o, f), u), a) in one_shot.iter().zip(&fused).zip(&unfused).zip(&again) {
            assert_eq!(o.family, f.family);
            assert_eq!((o.family.as_str(), o.m), (u.family.as_str(), u.m));
            assert_eq!(o.hits, f.hits, "prepared fused diverged: {}", o.family);
            assert_eq!(o.hits, u.hits, "prepared unfused diverged: {}", o.family);
            assert_eq!(o.passed, f.passed, "prepared fused funnel: {}", o.family);
            assert_eq!(o.passed, u.passed, "prepared unfused funnel: {}", o.family);
            assert_eq!(f.hits, a.hits, "re-scan not deterministic: {}", o.family);
        }
        // A bad config is still rejected up front.
        let bad = PipelineConfig {
            f2: -1.0,
            ..Default::default()
        };
        assert!(matches!(
            scan_prepared(&pipes, &db, bad, true, &Trace::off()),
            Err(ScanError::Config(ConfigError::Threshold {
                field: "f2",
                ..
            }))
        ));
    }

    #[test]
    fn fused_scan_rejects_device_plans_with_typed_error() {
        let families = vec![synthetic_model(40, 1, &BuildParams::default())];
        let db = generate(&DbGenSpec::envnr_like().scaled(2e-5), None, 3);
        let plan = ExecPlan::Device {
            dev: h3w_simt::DeviceSpec::tesla_k40(),
        };
        let err =
            scan_with_plan(&families, &db, PipelineConfig::default(), &plan, true, 7).unwrap_err();
        match err {
            ScanError::Config(ConfigError::FusedPlanUnsupported { plan }) => {
                assert_eq!(plan, "device")
            }
            other => panic!("want FusedPlanUnsupported, got {other:?}"),
        }
        // The same plan works unfused…
        let ok = scan_with_plan(&families, &db, PipelineConfig::default(), &plan, false, 7);
        assert_eq!(ok.unwrap().len(), 1);
        // …and an invalid config is rejected before any sweep runs.
        let bad = PipelineConfig {
            f1: 2.0,
            ..Default::default()
        };
        let err = scan(&families, &db, bad, 7).unwrap_err();
        assert!(matches!(
            err,
            ScanError::Config(ConfigError::Threshold { field: "f1", .. })
        ));
    }

    #[test]
    fn unfused_device_scan_matches_fused_cpu_hits() {
        // Filters are bit-exact across tiers, so the same families report
        // the same hit lists whichever path scores them.
        let families: Vec<CoreModel> = (0..3)
            .map(|i| synthetic_model(40 + 10 * i, 5000 + i as u64, &BuildParams::default()))
            .collect();
        let mut spec = DbGenSpec::envnr_like().scaled(1e-4);
        spec.homolog_fraction = 0.05;
        let db = generate(&spec, Some(&families[0]), 37);
        let cpu = scan(&families, &db, PipelineConfig::default(), 7).unwrap();
        let plan = ExecPlan::Device {
            dev: h3w_simt::DeviceSpec::tesla_k40(),
        };
        let dev =
            scan_with_plan(&families, &db, PipelineConfig::default(), &plan, false, 7).unwrap();
        for (c, d) in cpu.iter().zip(&dev) {
            let c_ids: Vec<u32> = c.hits.iter().map(|h| h.seqid).collect();
            let d_ids: Vec<u32> = d.hits.iter().map(|h| h.seqid).collect();
            assert_eq!(c_ids, d_ids, "family {}", c.family);
            assert_eq!(c.passed, d.passed, "family {}", c.family);
        }
    }

    #[test]
    fn traced_scan_records_per_family_funnels_and_pack_schedule() {
        let families: Vec<CoreModel> = (0..3)
            .map(|i| synthetic_model(40 + 8 * i, 6000 + i as u64, &BuildParams::default()))
            .collect();
        let mut spec = DbGenSpec::envnr_like().scaled(8e-5);
        spec.homolog_fraction = 0.05;
        let db = generate(&spec, Some(&families[0]), 41);
        let trace = Trace::on();
        let report = scan_traced(
            &families,
            &db,
            PipelineConfig::default(),
            &ExecPlan::Cpu,
            true,
            7,
            &trace,
        )
        .unwrap();
        let tel = report.telemetry.expect("armed trace yields telemetry");
        let packs = tel.at_path("scan/packs").expect("pack schedule node");
        assert_eq!(packs.counter("models"), families.len() as u64);
        assert!(packs.counter("packs") >= 1);
        for fr in &report.results {
            let node = tel
                .at_path(&format!("scan/families/{}", fr.family))
                .unwrap_or_else(|| panic!("missing node for {}", fr.family));
            assert_eq!(node.counter("m"), fr.m as u64);
            assert_eq!(node.counter("hits"), fr.hits.len() as u64);
            for st in &fr.stages {
                let sn = tel
                    .at_path(&format!("scan/families/{}/{}", fr.family, st.name))
                    .unwrap_or_else(|| panic!("missing stage node {}", st.name));
                assert_eq!(sn.counter("seqs_in"), st.seqs_in as u64);
                assert_eq!(sn.counter("seqs_out"), st.seqs_out as u64);
            }
        }
        // Disabled trace: same results, no telemetry.
        let off = scan_traced(
            &families,
            &db,
            PipelineConfig::default(),
            &ExecPlan::Cpu,
            true,
            7,
            &Trace::off(),
        )
        .unwrap();
        assert!(off.telemetry.is_none());
        for (a, b) in off.results.iter().zip(&report.results) {
            assert_eq!(a.hits, b.hits);
        }
    }

    #[test]
    fn per_target_inversion_sorts_by_evalue() {
        let results = vec![
            FamilyResult {
                family: "A".into(),
                m: 10,
                hits: vec![Hit {
                    seqid: 3,
                    name: "t3".into(),
                    msv_score: 1.0,
                    vit_score: 2.0,
                    fwd_score: 30.0,
                    pvalue: 1e-9,
                    evalue: 1e-6,
                    posterior: None,
                }],
                passed: (1, 1),
                stages: Vec::new(),
            },
            FamilyResult {
                family: "B".into(),
                m: 12,
                hits: vec![Hit {
                    seqid: 3,
                    name: "t3".into(),
                    msv_score: 1.0,
                    vit_score: 2.0,
                    fwd_score: 50.0,
                    pvalue: 1e-12,
                    evalue: 1e-9,
                    posterior: None,
                }],
                passed: (1, 1),
                stages: Vec::new(),
            },
        ];
        let per_target = best_hits_per_target(&results);
        assert_eq!(per_target.len(), 1);
        let (seqid, matches) = &per_target[0];
        assert_eq!(*seqid, 3);
        assert_eq!(matches[0].family, "B"); // lower E-value first
        assert_eq!(matches[1].family, "A");
    }
}
