//! Multi-query search — scan a database with many models (hmmscan-style,
//! one `hmmsearch` per family), parallelized across queries.
//!
//! This is the workload §IV's Pfam statistics are about: "about 98.9% of
//! Pfam database have size less than 1002", so a family sweep spends
//! nearly all of its time in configurations where the shared-memory
//! kernels excel. [`scan`] runs the pipeline per model and aggregates the
//! per-family hits; [`best_hits_per_target`] inverts the result to the
//! hmmscan view (for each target, which families match?).

use crate::config::PipelineConfig;
use crate::report::Hit;
use crate::run::{ExecPlan, Pipeline};
use h3w_cpu::ThreadPool;
use h3w_hmm::plan7::CoreModel;
use h3w_seqdb::SeqDb;

/// Hits of one query model against the database.
#[derive(Debug, Clone)]
pub struct FamilyResult {
    /// Model name.
    pub family: String,
    /// Model length.
    pub m: usize,
    /// Reported hits (best E-value first).
    pub hits: Vec<Hit>,
    /// Funnel: sequences passing (MSV, Viterbi).
    pub passed: (usize, usize),
}

/// A family match from the per-target view.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetMatch {
    /// Family (model) name.
    pub family: String,
    /// Forward score in nats.
    pub score: f32,
    /// E-value against this database.
    pub evalue: f64,
}

/// Search every model against the database. Queries fan out across the
/// global work-stealing pool; the per-query sweeps detect they are
/// already on a pool worker and run inline, so model-level parallelism
/// owns the cores without oversubscription (and without deadlock).
/// Calibration is seeded per model for determinism, and results come back
/// in model order regardless of thread count.
pub fn scan(
    models: &[CoreModel],
    db: &SeqDb,
    config: PipelineConfig,
    seed: u64,
) -> Vec<FamilyResult> {
    ThreadPool::global().map_collect(models.len(), |qi| {
        let model = &models[qi];
        let pipe = Pipeline::prepare(model, config, seed ^ (qi as u64) << 17);
        let res = pipe
            .search(db, &ExecPlan::Cpu)
            .expect("the CPU plan cannot fail");
        FamilyResult {
            family: model.name.clone(),
            m: model.len(),
            hits: res.hits,
            passed: (res.stages[0].seqs_out, res.stages[1].seqs_out),
        }
    })
}

/// Invert family results into the per-target view: for each target that
/// matched anything, the families that hit it, best first.
pub fn best_hits_per_target(results: &[FamilyResult]) -> Vec<(u32, Vec<TargetMatch>)> {
    use std::collections::BTreeMap;
    let mut by_target: BTreeMap<u32, Vec<TargetMatch>> = BTreeMap::new();
    for fr in results {
        for h in &fr.hits {
            by_target.entry(h.seqid).or_default().push(TargetMatch {
                family: fr.family.clone(),
                score: h.fwd_score,
                evalue: h.evalue,
            });
        }
    }
    let mut out: Vec<(u32, Vec<TargetMatch>)> = by_target.into_iter().collect();
    for (_, v) in &mut out {
        v.sort_by(|a, b| a.evalue.total_cmp(&b.evalue));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use h3w_hmm::build::{synthetic_model, BuildParams};
    use h3w_seqdb::gen::{generate, sample_homolog, DbGenSpec};
    use h3w_seqdb::DigitalSeq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scan_attributes_targets_to_the_right_family() {
        // Three distinct families; a database whose homologs come from
        // family 0 and family 2 only.
        let families: Vec<CoreModel> = (0..3)
            .map(|i| synthetic_model(50, 1000 + i, &BuildParams::default()))
            .collect();
        let mut db = generate(&DbGenSpec::envnr_like().scaled(2e-4), None, 77);
        let mut rng = StdRng::seed_from_u64(5);
        for (tag, fam) in [(0usize, &families[0]), (2, &families[2])] {
            for j in 0..6 {
                db.seqs.push(DigitalSeq {
                    name: format!("fam{tag}hom{j}"),
                    desc: String::new(),
                    residues: sample_homolog(&mut rng, fam, 25),
                });
            }
        }
        let results = scan(&families, &db, PipelineConfig::default(), 9);
        assert_eq!(results.len(), 3);
        let hits_of =
            |i: usize| -> Vec<&str> { results[i].hits.iter().map(|h| h.name.as_str()).collect() };
        // Family 0 finds its own homologs, not family 2's.
        let h0 = hits_of(0);
        assert!(
            h0.iter().filter(|n| n.starts_with("fam0")).count() >= 4,
            "{h0:?}"
        );
        assert_eq!(
            h0.iter().filter(|n| n.starts_with("fam2")).count(),
            0,
            "{h0:?}"
        );
        let h2 = hits_of(2);
        assert!(
            h2.iter().filter(|n| n.starts_with("fam2")).count() >= 4,
            "{h2:?}"
        );
        // Family 1 planted nothing.
        assert!(results[1].hits.len() <= 1, "{:?}", hits_of(1));
    }

    #[test]
    fn per_target_inversion_sorts_by_evalue() {
        let results = vec![
            FamilyResult {
                family: "A".into(),
                m: 10,
                hits: vec![Hit {
                    seqid: 3,
                    name: "t3".into(),
                    msv_score: 1.0,
                    vit_score: 2.0,
                    fwd_score: 30.0,
                    pvalue: 1e-9,
                    evalue: 1e-6,
                    posterior: None,
                }],
                passed: (1, 1),
            },
            FamilyResult {
                family: "B".into(),
                m: 12,
                hits: vec![Hit {
                    seqid: 3,
                    name: "t3".into(),
                    msv_score: 1.0,
                    vit_score: 2.0,
                    fwd_score: 50.0,
                    pvalue: 1e-12,
                    evalue: 1e-9,
                    posterior: None,
                }],
                passed: (1, 1),
            },
        ];
        let per_target = best_hits_per_target(&results);
        assert_eq!(per_target.len(), 1);
        let (seqid, matches) = &per_target[0];
        assert_eq!(*seqid, 3);
        assert_eq!(matches[0].family, "B"); // lower E-value first
        assert_eq!(matches[1].family, "A");
    }
}
