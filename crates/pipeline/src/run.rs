//! The hmmsearch task pipeline (Fig. 1): MSV → P7Viterbi → Forward.
//!
//! [`Pipeline`] owns every representation of one query model (float
//! profile, 8-bit MSV tables, 16-bit Viterbi tables, striped CPU filters)
//! plus its score calibration. [`Pipeline::search`] is the one entry
//! point for database sweeps: an [`ExecPlan`] picks where each stage
//! runs — the multi-core striped CPU baseline, the simulated GPU of the
//! paper's deployment (Forward stays on the host), the fully-on-device
//! §VI variant, or the fault-tolerant multi-device orchestration — while
//! the stage sequencing, thresholding, and funnel accounting are written
//! exactly once. [`Pipeline::search_traced`] is the same driver with a
//! caller-supplied [`Trace`] for funnel telemetry (`hmmsearch
//! --profile`); tracing is zero-cost when the trace is disabled and
//! never changes scores or hits when enabled.

use crate::config::PipelineConfig;
use crate::orchestrator::FtSweep;
use crate::report::{Hit, PipelineResult, StageStats};
use h3w_core::fault::{SweepError, SweepTrace};
use h3w_core::tiered::{run_fwd_device, run_msv_device, run_vit_device, StageRun};
use h3w_cpu::reference::forward_generic;
use h3w_cpu::striped_fwd::{FwdWorkspace, StripedFwd};
use h3w_cpu::striped_msv::StripedMsv;
use h3w_cpu::striped_vit::{StripedVit, VitWorkspace};
use h3w_cpu::{
    batch_schedule_stats, fwd_scores_batched_pipelined, msv_outcomes_batched_pipelined,
    posterior_decode_with, resolve_pipelined_width, ssv_outcomes_batched_pipelined, Backend,
    BatchWorkspace, PoolHandle, StripedSsv, ThreadPool,
};
use h3w_hmm::calibrate::{self, Calibration};
use h3w_hmm::msvprofile::MsvProfile;
use h3w_hmm::plan7::CoreModel;
use h3w_hmm::profile::Profile;
use h3w_hmm::vitprofile::VitProfile;
use h3w_hmm::NullModel;
use h3w_seqdb::{PackedDb, SeqDb};
use h3w_simt::DeviceSpec;
use h3w_trace::{Telemetry, Trace};
use std::sync::Arc;
use std::time::Instant;

/// Lengths covered by the precomputed `null1(L)` table; longer targets
/// fall back to the closed-form evaluation.
const NULL1_TABLE_LEN: usize = 16384;

/// Where a [`Pipeline::search`] runs each stage.
///
/// Every plan funnels through the same driver: identical thresholding,
/// identical survivor masks, identical hit assembly. Because the CPU and
/// device filters are bit-exact, the reported hits are plan-invariant;
/// only the stage labels and (measured vs modeled) stage times differ.
#[derive(Clone)]
pub enum ExecPlan<'a> {
    /// The multi-core striped CPU baseline (with the optional SSV
    /// stage-0 pre-filter when the pipeline was configured for it).
    Cpu,
    /// MSV + Viterbi on one simulated device, Forward on the host — the
    /// paper's deployment.
    Device {
        /// The simulated device.
        dev: DeviceSpec,
    },
    /// All three stages on the simulated device (§VI future work).
    DeviceFull {
        /// The simulated device.
        dev: DeviceSpec,
    },
    /// MSV + Viterbi fanned out over a pool of simulated devices through
    /// the fault-recovery engine, Forward on the host.
    FaultTolerant {
        /// The simulated device every pool member is.
        dev: DeviceSpec,
        /// Pool size, retry policy, and optional fault injector.
        sweep: FtSweep<'a>,
    },
}

impl ExecPlan<'_> {
    /// Short plan label for error messages, logs, and telemetry.
    pub fn label(&self) -> &'static str {
        match self {
            ExecPlan::Cpu => "cpu",
            ExecPlan::Device { .. } => "device",
            ExecPlan::DeviceFull { .. } => "device-full",
            ExecPlan::FaultTolerant { .. } => "fault-tolerant",
        }
    }
}

/// A completed [`Pipeline::search_traced`]: results, recovery journal,
/// and (when the trace was armed) the telemetry snapshot.
#[derive(Debug)]
pub struct SearchReport {
    /// Hits and funnel counters — plan- and fault-invariant.
    pub result: PipelineResult,
    /// What the recovery engine did (empty for non-fault-tolerant plans).
    pub recovery: SweepTrace,
    /// True if a fault-tolerant stage fell back to the striped CPU.
    pub degraded_to_cpu: bool,
    /// The per-run telemetry tree (`None` when the trace was disabled).
    pub telemetry: Option<Telemetry>,
}

/// The opt-in SSV stage-0 pre-filter: the striped filter plus its own
/// calibrated Gumbel location (SSV scores sit below MSV scores — no J
/// state — so they need their own null distribution).
struct SsvPrefilter {
    striped: StripedSsv,
    mu: f32,
}

/// A fully prepared query: profile, quantized tables, striped filters,
/// calibration.
///
/// All P-values are computed on **null-corrected** scores
/// (`raw − null1(L)`, HMMER's bit-score numerator), which makes the
/// calibrated distributions length-stable across the database.
pub struct Pipeline {
    /// The null model used for per-length score correction.
    pub bg: NullModel,
    /// Search profile in nats.
    pub profile: Profile,
    /// 8-bit MSV score system.
    pub msv: MsvProfile,
    /// 16-bit Viterbi score system.
    pub vit: VitProfile,
    /// Striped CPU MSV filter.
    pub striped_msv: StripedMsv,
    /// Striped CPU Viterbi filter.
    pub striped_vit: StripedVit,
    /// Striped odds-space Forward filter (stage 3 and posterior decoding).
    pub striped_fwd: StripedFwd,
    /// Fitted score distributions.
    pub cal: Calibration,
    /// Stage thresholds.
    pub config: PipelineConfig,
    /// SIMD backend the striped filters dispatched to.
    backend: Backend,
    /// SSV stage-0 pre-filter — built (and calibrated) only when
    /// `config.ssv` asked for it.
    ssv: Option<SsvPrefilter>,
    /// `null1(L)` for `L ∈ 0..NULL1_TABLE_LEN`, hoisting the per-call
    /// `NullModel` clone out of [`Pipeline::corrected`].
    null1: Vec<f32>,
    /// The thread pool every host sweep fans out on: the shared global
    /// pool when `config.threads == 0`, a dedicated pool otherwise.
    pool: PoolHandle,
}

impl Pipeline {
    /// Prepare a query model: configure, quantize, stripe and calibrate
    /// (deterministic given `seed`). The SIMD backend is auto-detected
    /// (`H3W_SIMD_BACKEND` overrides).
    pub fn prepare(core: &CoreModel, config: PipelineConfig, seed: u64) -> Pipeline {
        Self::prepare_with_backend(core, config, seed, Backend::detect())
    }

    /// [`Pipeline::prepare`] with an explicit SIMD backend (downgraded to
    /// scalar if unavailable on this host) — for benchmarking and
    /// cross-backend equivalence tests.
    pub fn prepare_with_backend(
        core: &CoreModel,
        config: PipelineConfig,
        seed: u64,
        backend: Backend,
    ) -> Pipeline {
        let bg = NullModel::new();
        let profile = Profile::config(core, &bg);
        // Length-indexed null1 table: one NullModel walk at prepare time
        // replaces a clone + set_length on every corrected() call.
        let null1: Vec<f32> = {
            let mut b = bg.clone();
            (0..NULL1_TABLE_LEN)
                .map(|len| {
                    b.set_length(len);
                    b.null1_score(len)
                })
                .collect()
        };
        let null1_cal = null1[calibrate::DEFAULT_LEN];
        let msv = MsvProfile::from_profile(&profile);
        let vit = VitProfile::from_profile(&profile);
        let striped_msv = StripedMsv::with_backend(&msv, backend);
        let striped_vit = StripedVit::with_backend(&vit, backend);
        let backend = striped_msv.backend();
        let striped_fwd = StripedFwd::with_backend(&profile, backend);
        let mut ws = VitWorkspace::default();
        let mut dp = Vec::new();
        let mut fws = FwdWorkspace::default();
        // Calibration scores through the same Forward the sweep will run
        // (striped by default, generic when the escape hatch is set), so
        // tau_fwd always describes the production score stream.
        let cal = calibrate::calibrate(
            seed,
            calibrate::DEFAULT_N,
            calibrate::DEFAULT_LEN,
            |s| striped_msv.run_into(&msv, s, &mut dp).score - null1_cal,
            |s| striped_vit.run_into(&vit, s, &mut ws).0.score - null1_cal,
            |s| {
                let raw = if config.fwd_generic {
                    forward_generic(&profile, s)
                } else {
                    striped_fwd.run_into(&profile, s, &mut fws)
                };
                raw - null1_cal
            },
        );
        // The SSV pre-filter is calibrated over the same deterministic
        // random-sequence stream, so an SSV-enabled pipeline stays fully
        // reproducible from (model, seed).
        let ssv = config.ssv.then(|| {
            let striped = StripedSsv::with_backend(&msv, backend);
            let mut ws = BatchWorkspace::default();
            let mu = calibrate::calibrate_gumbel_mu(
                seed,
                calibrate::DEFAULT_N,
                calibrate::DEFAULT_LEN,
                |s| striped.run_into(&msv, s, &mut ws).score - null1_cal,
            );
            SsvPrefilter { striped, mu }
        });
        Pipeline {
            bg,
            profile,
            msv,
            vit,
            striped_msv,
            striped_vit,
            striped_fwd,
            cal,
            config,
            backend,
            ssv,
            null1,
            pool: PoolHandle::with_threads(config.threads),
        }
    }

    /// The SIMD backend the striped filters dispatched to (shared by the
    /// MSV and Viterbi filters; see `h3w_cpu::Backend::detect`).
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The thread pool this pipeline's host sweeps fan out on (the shared
    /// global pool unless `config.threads` asked for a dedicated one).
    pub fn pool(&self) -> &ThreadPool {
        self.pool.pool()
    }

    /// Null-corrected score: `raw − null1(len)` (nats). Table lookup for
    /// lengths under [`NULL1_TABLE_LEN`]; identical closed form beyond.
    pub fn corrected(&self, raw: f32, len: usize) -> f32 {
        let null1 = match self.null1.get(len) {
            Some(&v) => v,
            None => {
                let p1 = len as f32 / (len as f32 + 1.0);
                len as f32 * p1.ln() + (1.0 - p1).ln()
            }
        };
        raw - null1
    }

    /// P-value of a null-corrected MSV filter score for a target of
    /// length `len`.
    pub fn msv_pvalue(&self, raw: f32, len: usize) -> f64 {
        calibrate::gumbel_pvalue(self.corrected(raw, len), self.cal.mu_msv, self.cal.lambda)
    }

    /// P-value of a null-corrected SSV pre-filter score. Panics unless the
    /// pipeline was prepared with `config.ssv` (there is no SSV
    /// calibration otherwise).
    pub fn ssv_pvalue(&self, raw: f32, len: usize) -> f64 {
        let pre = self.ssv.as_ref().expect("SSV pre-filter not enabled");
        calibrate::gumbel_pvalue(self.corrected(raw, len), pre.mu, self.cal.lambda)
    }

    /// P-value of a null-corrected Viterbi filter score.
    pub fn vit_pvalue(&self, raw: f32, len: usize) -> f64 {
        calibrate::gumbel_pvalue(self.corrected(raw, len), self.cal.mu_vit, self.cal.lambda)
    }

    /// P-value of a null-corrected Forward score.
    pub fn fwd_pvalue(&self, raw: f32, len: usize) -> f64 {
        calibrate::exp_pvalue(self.corrected(raw, len), self.cal.tau_fwd, self.cal.lambda)
    }

    /// Recover and render the optimal alignment behind a reported hit
    /// (hmmsearch's alignment blocks). Runs the full-memory Viterbi
    /// traceback — intended for the handful of reported hits, not for
    /// database sweeps.
    pub fn align_hit(
        &self,
        core: &h3w_hmm::CoreModel,
        db: &SeqDb,
        hit: &Hit,
    ) -> (h3w_cpu::Alignment, String) {
        let seq = &db.seqs[hit.seqid as usize].residues;
        let aln = h3w_cpu::viterbi_trace(&self.profile, seq);
        let mut text = String::new();
        for seg in &aln.segments {
            text.push_str(&seg.render(&self.profile, core, seq));
            text.push('\n');
        }
        (aln, text)
    }

    /// Decode the domain structure of a reported hit (posterior-decoded
    /// homology regions, HMMER's post-Forward step). Reuses the posterior
    /// already computed for the null2 correction when the hit carries one,
    /// decoding from scratch only otherwise.
    pub fn domains_for_hit(&self, db: &SeqDb, hit: &Hit) -> Vec<h3w_cpu::Domain> {
        let decoded;
        let post = match hit.posterior.as_deref() {
            Some(p) => p,
            None => {
                let seq = &db.seqs[hit.seqid as usize].residues;
                decoded = posterior_decode_with(&self.profile, &self.striped_fwd, seq);
                &decoded
            }
        };
        h3w_cpu::find_domains(post, 0.5, 3)
    }

    /// The SSV stage-0 pre-filter's striped tables and calibrated Gumbel
    /// location, when the pipeline was prepared with `config.ssv` — the
    /// fused multi-model scan drives the pre-filter itself.
    pub(crate) fn ssv_prefilter(&self) -> Option<(&StripedSsv, f32)> {
        self.ssv.as_ref().map(|pre| (&pre.striped, pre.mu))
    }

    /// True when `H3W_PROFILE` asks [`Pipeline::search`] to arm a trace
    /// (set to anything but `""`/`"0"`) — the hook CI uses to run the
    /// whole test suite with the instrumentation live.
    pub(crate) fn profile_env() -> bool {
        std::env::var("H3W_PROFILE").is_ok_and(|v| !v.is_empty() && v != "0")
    }

    /// Sweep a database under an execution plan. **The** entry point:
    /// every deployment (CPU baseline, single-device, fully-on-device,
    /// fault-tolerant pool) runs through one stage-sequencing driver, so
    /// the funnel logic and its telemetry hooks exist exactly once.
    ///
    /// Reported hits are plan-invariant (the filters are bit-exact across
    /// backends); stage labels and times reflect the plan.
    pub fn search(&self, db: &SeqDb, plan: &ExecPlan) -> Result<PipelineResult, SweepError> {
        let trace = if Self::profile_env() {
            Trace::on()
        } else {
            Trace::off()
        };
        self.search_traced(db, plan, &trace).map(|r| r.result)
    }

    /// [`Pipeline::search`] with a caller-supplied telemetry trace and
    /// the full report (recovery journal, telemetry snapshot).
    ///
    /// With a disabled trace every hook is a no-op (no clock reads, no
    /// allocation). With an enabled trace the accounting passes run
    /// outside the timed stage bodies, so scores, survivor masks, hits
    /// and measured stage times are identical either way.
    pub fn search_traced(
        &self,
        db: &SeqDb,
        plan: &ExecPlan,
        trace: &Trace,
    ) -> Result<SearchReport, SweepError> {
        let whole = trace.span("pipeline");
        let n = db.len();
        let mut journal = SweepTrace::default();
        let mut degraded = false;
        // Pool occupancy/steal accounting is a snapshot delta taken
        // outside every timed region; with a disabled trace it costs
        // nothing at all.
        let pool_before = trace.is_on().then(|| self.pool().stats());

        // Device plans pack the database exactly once; both survivor
        // hand-offs below are zero-copy index subsets into this packing.
        let packed: Option<PackedDb> = match plan {
            ExecPlan::Cpu => None,
            _ => {
                let span = trace.span("pipeline/pack");
                let p = PackedDb::from_db(db);
                drop(span);
                p.record_into(trace, "pipeline/pack");
                Some(p)
            }
        };
        let mut ft_devices: Vec<usize> = match plan {
            ExecPlan::FaultTolerant { sweep, .. } => {
                assert!(sweep.n_devices >= 1);
                (0..sweep.n_devices).collect()
            }
            _ => Vec::new(),
        };

        // Stage 1: MSV over the whole database. `eligible` marks the
        // sequences stage 1 actually scored — the SSV pre-filter's cuts
        // carry −∞ scores and must stay out of pass1 without a P-value
        // evaluation.
        let (label1, msv_scores, eligible, msv_time) = match plan {
            ExecPlan::Cpu => {
                let (scores, eligible, secs) = self.msv_stage_host(db, true, trace);
                (self.stage0_name(), scores, eligible, secs)
            }
            ExecPlan::Device { dev } | ExecPlan::DeviceFull { dev } => {
                let packed = packed.as_ref().expect("device plans pack");
                let run = run_msv_device(&self.msv, packed, dev, None)?;
                Self::record_stage_run(trace, "pipeline/MSV (GPU)", &run.run);
                let scores: Vec<f32> = run.hits.iter().map(|h| h.score).collect();
                ("MSV (GPU)", scores, vec![true; n], run.run.time.total_s)
            }
            ExecPlan::FaultTolerant { dev, sweep } => {
                let packed = packed.as_ref().expect("device plans pack");
                let all_ids: Vec<u32> = (0..n as u32).collect();
                match self.ft_stage_msv(packed, &all_ids, dev, sweep, &ft_devices) {
                    Ok((pairs, makespan, t)) => {
                        let mut scores = vec![0.0f32; n];
                        for (id, s) in pairs {
                            scores[id as usize] = s;
                        }
                        ft_devices.retain(|d| !t.lost_devices.contains(d));
                        journal.merge(&t);
                        ("MSV (multi-GPU)", scores, vec![true; n], makespan)
                    }
                    Err(SweepError::AllDevicesLost { .. }) => {
                        degraded = true;
                        // The engine's journal dies with the error; every
                        // device still in the pool is gone, so record them
                        // here. The CPU fallback is the same batched sweep
                        // as the CPU plan (without SSV — the degraded path
                        // reproduces the device stage it replaces).
                        journal.lost_devices.append(&mut ft_devices);
                        journal
                            .events
                            .push("MSV: all devices lost; striped CPU fallback".into());
                        let (scores, _, secs) = self.msv_stage_host(db, false, trace);
                        ("MSV (multi-GPU)", scores, vec![true; n], secs)
                    }
                    Err(e) => return Err(e),
                }
            }
        };
        let pass1: Vec<bool> = msv_scores
            .iter()
            .zip(&db.seqs)
            .zip(&eligible)
            .map(|((&s, q), &e)| e && self.msv_pvalue(s, q.len()) < self.config.f1)
            .collect();
        let n1 = pass1.iter().filter(|&&b| b).count();

        // Stage 2: Viterbi over the stage-1 survivors.
        let (label2, vit_scores, vit_time) = match plan {
            ExecPlan::Cpu => {
                let (scores, secs) = self.vit_stage_host(db, &pass1);
                ("P7Viterbi", scores, secs)
            }
            ExecPlan::Device { dev } | ExecPlan::DeviceFull { dev } => {
                let packed = packed.as_ref().expect("device plans pack");
                let sub = packed.subset_by_mask(&pass1);
                let mut scores: Vec<Option<f32>> = vec![None; n];
                let mut secs = 0.0;
                if !sub.is_empty() {
                    let run = run_vit_device(&self.vit, &sub, dev, None)?;
                    Self::record_stage_run(trace, "pipeline/P7Viterbi (GPU)", &run.run);
                    for h in &run.hits {
                        scores[sub.parent_id(h.seqid as usize)] = Some(h.score);
                    }
                    secs = run.run.time.total_s;
                }
                ("P7Viterbi (GPU)", scores, secs)
            }
            ExecPlan::FaultTolerant { dev, sweep } => {
                let survivors: Vec<u32> = (0..n as u32).filter(|&i| pass1[i as usize]).collect();
                let mut scores: Vec<Option<f32>> = vec![None; n];
                let mut secs = 0.0;
                if !survivors.is_empty() {
                    let mut on_cpu = ft_devices.is_empty();
                    if !on_cpu {
                        let packed = packed.as_ref().expect("device plans pack");
                        match self.ft_stage_vit(packed, &survivors, dev, sweep, &ft_devices) {
                            Ok((pairs, makespan, t)) => {
                                for (id, s) in pairs {
                                    scores[id as usize] = Some(s);
                                }
                                secs = makespan;
                                ft_devices.retain(|d| !t.lost_devices.contains(d));
                                journal.merge(&t);
                            }
                            Err(SweepError::AllDevicesLost { .. }) => {
                                degraded = true;
                                journal.lost_devices.append(&mut ft_devices);
                                on_cpu = true;
                                journal
                                    .events
                                    .push("Viterbi: all devices lost; striped CPU fallback".into());
                            }
                            Err(e) => return Err(e),
                        }
                    }
                    // No partial device results survive an AllDevicesLost
                    // (the engine drops them), so the CPU path rescoring
                    // every survivor never double-scores.
                    if on_cpu {
                        let (s, t) = self.vit_stage_host(db, &pass1);
                        scores = s;
                        secs = t;
                    }
                }
                ("P7Viterbi (multi-GPU)", scores, secs)
            }
        };
        let pass2: Vec<bool> = vit_scores
            .iter()
            .zip(&db.seqs)
            .map(|(s, q)| s.is_some_and(|s| self.vit_pvalue(s, q.len()) < self.config.f2))
            .collect();
        let n2 = pass2.iter().filter(|&&b| b).count();

        // Stage 3: Forward over the remainder — on the host for every
        // plan except the §VI fully-on-device deployment.
        let (label3, fwd_scores, fwd_time) = match plan {
            ExecPlan::Cpu => {
                let (scores, secs) = self.forward_stage(db, &pass2);
                ("Forward", scores, secs)
            }
            ExecPlan::Device { .. } | ExecPlan::FaultTolerant { .. } => {
                let (scores, secs) = self.forward_stage(db, &pass2);
                ("Forward (host)", scores, secs)
            }
            ExecPlan::DeviceFull { dev } => {
                let packed = packed.as_ref().expect("device plans pack");
                let fsub = packed.subset_by_mask(&pass2);
                let mut scores: Vec<Option<f32>> = vec![None; n];
                let mut secs = 0.0;
                if !fsub.is_empty() {
                    let run = run_fwd_device(&self.profile, &fsub, dev)?;
                    Self::record_stage_run(trace, "pipeline/Forward (GPU)", &run.run);
                    for h in &run.hits {
                        scores[fsub.parent_id(h.seqid as usize)] = Some(h.score);
                    }
                    secs = run.run.time.total_s;
                }
                ("Forward (GPU)", scores, secs)
            }
        };

        let r1 = Self::masked_residues(db, &pass1);
        let r2 = Self::masked_residues(db, &pass2);
        let stages = [
            StageStats::new(label1, n, n1, msv_time).with_residues(db.total_residues()),
            StageStats::new(label2, n1, n2, vit_time).with_residues(r1),
            StageStats::new(label3, n2, n2, fwd_time).with_residues(r2),
        ];
        if trace.is_on() {
            // Funnel telemetry is recorded *from* the stage records, so
            // the `--profile` tree and the StageStats report can never
            // disagree. real_cells = DP cells per residue row × residues.
            let cells_per_row = [
                self.striped_msv.real_cells_per_row() as u64,
                self.striped_vit.real_cells_per_row() as u64,
                self.striped_fwd.real_cells_per_row(),
            ];
            // Analytic memory traffic per residue row from the striped
            // table/DP geometry — the ApHMM-style bandwidth accounting:
            // bytes_moved / seconds estimates each stage's demand.
            let bytes_per_row = [
                self.striped_msv.bytes_per_row(),
                self.striped_vit.bytes_per_row(),
                self.striped_fwd.bytes_per_row(),
            ];
            for ((st, cells), bytes) in stages.iter().zip(cells_per_row).zip(bytes_per_row) {
                let path = format!("pipeline/{}", st.name);
                trace.add(&path, "seqs_in", st.seqs_in as u64);
                trace.add(&path, "seqs_out", st.seqs_out as u64);
                trace.add(&path, "residues_in", st.residues_in);
                trace.add(&path, "real_cells", st.residues_in * cells);
                trace.add(&path, "bytes_moved", st.residues_in * bytes);
                trace.add_secs(&path, st.time_s);
            }
            if matches!(plan, ExecPlan::FaultTolerant { .. }) {
                trace.add("pipeline/recovery", "retries", journal.retries as u64);
                trace.add(
                    "pipeline/recovery",
                    "lost_devices",
                    journal.lost_devices.len() as u64,
                );
                trace.add(
                    "pipeline/recovery",
                    "redistributed_seqs",
                    journal.redistributed_seqs as u64,
                );
                trace.add("pipeline/recovery", "cpu_fallbacks", degraded as u64);
            }
        }
        let result = self.assemble(db, msv_scores, vit_scores, fwd_scores, stages);
        trace.add("pipeline/hits", "reported", result.hits.len() as u64);
        if let Some(before) = pool_before {
            // Per-worker spans and occupancy/steal counters for this
            // search's fan-outs (the `--profile` pool table).
            self.pool()
                .stats()
                .delta(&before)
                .record_into(trace, "pipeline/pool");
        }
        drop(whole);
        Ok(SearchReport {
            result,
            recovery: journal,
            degraded_to_cpu: degraded,
            telemetry: trace.snapshot(),
        })
    }

    /// Host stage 1: (optional SSV, then) MSV through the batched
    /// interleaved kernels. Returns `(scores, eligible, seconds)` where
    /// `eligible[i]` is false for sequences the pre-filter cut (their
    /// score is −∞). Telemetry accounting (batch-schedule shape, dropout
    /// counts, SSV funnel) runs outside the timed region and only when
    /// the trace is armed.
    fn msv_stage_host(
        &self,
        db: &SeqDb,
        with_ssv: bool,
        trace: &Trace,
    ) -> (Vec<f32>, Vec<bool>, f64) {
        let t0 = Instant::now();
        let pre = if with_ssv { self.ssv.as_ref() } else { None };
        let pass0: Option<Vec<bool>> = pre.map(|pre| {
            ssv_outcomes_batched_pipelined(
                self.pool(),
                &pre.striped,
                &self.msv,
                &db.seqs,
                None,
                self.config.batch,
                self.config.pipeline_depth,
            )
            .iter()
            .zip(&db.seqs)
            .map(|(o, q)| {
                let sc = o.expect("unmasked sweep scores everything").score;
                self.ssv_pvalue(sc, q.len()) < self.config.f0
            })
            .collect()
        });
        let msv_out = msv_outcomes_batched_pipelined(
            self.pool(),
            &self.striped_msv,
            &self.msv,
            &db.seqs,
            pass0.as_deref(),
            self.config.batch,
            self.config.pipeline_depth,
        );
        let secs = t0.elapsed().as_secs_f64();
        if trace.is_on() {
            let (width, sched) = resolve_pipelined_width(
                self.backend,
                self.config.batch,
                self.config.pipeline_depth,
            );
            let lens: Vec<usize> = db.seqs.iter().map(|s| s.len()).collect();
            let stats = batch_schedule_stats(&lens, pass0.as_deref(), width);
            trace.add("pipeline/batch", "pipeline_depth", sched.depth as u64);
            trace.add("pipeline/batch", "pipeline_chains", sched.chains as u64);
            trace.add(
                "pipeline/batch",
                "prefetch_lookahead_rows",
                sched.lookahead as u64,
            );
            trace.add(
                "pipeline/batch",
                "prefetched_rows",
                if sched.lookahead > 0 {
                    stats.slot_rows
                } else {
                    0
                },
            );
            trace.add("pipeline/batch", "batches", stats.batches);
            trace.add("pipeline/batch", "slots_filled", stats.seqs);
            trace.add("pipeline/batch", "slot_rows", stats.slot_rows);
            trace.add("pipeline/batch", "loop_rows", stats.loop_rows);
            trace.add(
                "pipeline/batch",
                "early_finish_dropouts",
                stats.early_finish,
            );
            let overflow = msv_out.iter().flatten().filter(|o| o.overflow).count();
            trace.add("pipeline/batch", "overflow_dropouts", overflow as u64);
            if let Some(p0) = &pass0 {
                let kept = p0.iter().filter(|&&b| b).count() as u64;
                trace.add("pipeline/ssv", "seqs_in", db.len() as u64);
                trace.add("pipeline/ssv", "seqs_out", kept);
            }
        }
        let scores = msv_out
            .iter()
            .map(|o| o.map_or(f32::NEG_INFINITY, |o| o.score))
            .collect();
        let eligible = msv_out.iter().map(|o| o.is_some()).collect();
        (scores, eligible, secs)
    }

    /// Host stage 2: the pool-parallel striped Viterbi filter over a
    /// survivor mask (also the fault-tolerant plan's CPU fallback).
    fn vit_stage_host(&self, db: &SeqDb, pass1: &[bool]) -> (Vec<Option<f32>>, f64) {
        let t1 = Instant::now();
        let scores: Vec<Option<f32>> =
            self.pool()
                .map_collect_init(db.len(), VitWorkspace::default, |ws, i| {
                    pass1[i].then(|| {
                        self.striped_vit
                            .run_into(&self.vit, &db.seqs[i].residues, ws)
                            .0
                            .score
                    })
                });
        (scores, t1.elapsed().as_secs_f64())
    }

    /// Surface one device stage's kernel counters and modeled time split
    /// under `{path}/device` in the telemetry tree.
    fn record_stage_run(trace: &Trace, path: &str, run: &StageRun) {
        if !trace.is_on() {
            return;
        }
        run.stats.record_into(trace, &format!("{path}/device"));
        run.time.record_into(trace, &format!("{path}/device/time"));
    }

    /// Stage 3: Forward over the stage-2 survivor mask. One body shared
    /// by every plan that keeps Forward on the host — the striped
    /// odds-space filter on a length-binned batched sweep by default,
    /// `forward_generic` when `config.fwd_generic` asks for the oracle.
    /// Returns `(scores, seconds)`.
    pub(crate) fn forward_stage(&self, db: &SeqDb, pass2: &[bool]) -> (Vec<Option<f32>>, f64) {
        let t = Instant::now();
        let scores = if self.config.fwd_generic {
            self.pool().map_collect(db.len(), |i| {
                pass2[i].then(|| forward_generic(&self.profile, &db.seqs[i].residues))
            })
        } else {
            fwd_scores_batched_pipelined(
                self.pool(),
                &self.striped_fwd,
                &self.profile,
                &db.seqs,
                Some(pass2),
                self.config.batch,
                self.config.pipeline_depth,
            )
        };
        (scores, t.elapsed().as_secs_f64())
    }

    /// Total residues of the sequences a stage mask keeps (the
    /// denominator for per-stage cell rates).
    pub(crate) fn masked_residues(db: &SeqDb, mask: &[bool]) -> u64 {
        db.seqs
            .iter()
            .zip(mask)
            .filter(|&(_, &k)| k)
            .map(|(s, _)| s.len() as u64)
            .sum()
    }

    /// Label of the first funnel stage: `"SSV+MSV"` when the pre-filter is
    /// on, plain `"MSV"` otherwise. `stream.rs` uses the same label so
    /// chunked and single-pass reports agree.
    pub fn stage0_name(&self) -> &'static str {
        if self.ssv.is_some() {
            "SSV+MSV"
        } else {
            "MSV"
        }
    }

    pub(crate) fn assemble(
        &self,
        db: &SeqDb,
        msv: Vec<f32>,
        vit: Vec<Option<f32>>,
        fwd: Vec<Option<f32>>,
        stages: [StageStats; 3],
    ) -> PipelineResult {
        let n = db.len();
        let mut hits = Vec::new();
        for i in 0..n {
            let Some(mut fwd_sc) = fwd[i] else { continue };
            // A non-finite Forward score cannot be ranked or reported
            // honestly; drop the sequence rather than panic downstream.
            if !fwd_sc.is_finite() {
                continue;
            }
            // Optional biased-composition correction (HMMER's null2),
            // computed from the posterior decoding of this survivor. The
            // posterior rides along on the hit so domain reporting never
            // re-decodes it.
            let mut posterior = None;
            if self.config.null2 {
                let post =
                    posterior_decode_with(&self.profile, &self.striped_fwd, &db.seqs[i].residues);
                fwd_sc -= h3w_cpu::null2_correction(&self.bg, &db.seqs[i].residues, &post);
                posterior = Some(Arc::new(post));
            }
            let p = self.fwd_pvalue(fwd_sc, db.seqs[i].len());
            if !p.is_finite() || p >= self.config.f3 {
                continue;
            }
            let evalue = p * n as f64;
            if evalue <= self.config.report_evalue {
                hits.push(Hit {
                    seqid: i as u32,
                    name: db.seqs[i].name.clone(),
                    msv_score: msv[i],
                    vit_score: vit[i].unwrap_or(f32::NEG_INFINITY),
                    fwd_score: fwd_sc,
                    pvalue: p,
                    evalue,
                    posterior,
                });
            }
        }
        hits.sort_by(|a, b| a.evalue.total_cmp(&b.evalue));
        PipelineResult::new(stages, hits, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h3w_hmm::build::{synthetic_model, BuildParams};
    use h3w_seqdb::gen::{generate, DbGenSpec};

    fn setup(hom_frac: f64, scale: f64) -> (Pipeline, SeqDb) {
        let core = synthetic_model(80, 42, &BuildParams::default());
        let pipe = Pipeline::prepare(&core, PipelineConfig::default(), 7);
        let mut spec = DbGenSpec::envnr_like().scaled(scale);
        spec.homolog_fraction = hom_frac;
        let db = generate(&spec, Some(&core), 3);
        (pipe, db)
    }

    #[test]
    fn background_pass_rates_track_thresholds() {
        // Null P-values are uniform ⇒ ≈ f1 of background passes MSV.
        let (pipe, db) = setup(0.0, 0.0008); // ~5200 background seqs
        let res = pipe.search(&db, &ExecPlan::Cpu).unwrap();
        let rate1 = res.stages[0].pass_rate();
        assert!(
            rate1 > 0.005 && rate1 < 0.05,
            "MSV pass rate {rate1} should be near f1 = 0.02"
        );
        let rate12 = res.stages[1].seqs_out as f64 / db.len() as f64;
        assert!(rate12 < 0.01, "Viterbi survivors {rate12} should be ≲ 0.1%");
        // Expected false positives ≈ f3 × N ≈ 0.05; allow Poisson noise.
        assert!(
            res.hits.len() <= 2,
            "too many background hits: {}",
            res.hits.len()
        );
    }

    #[test]
    fn homologs_are_found_with_low_evalues() {
        let (pipe, db) = setup(0.02, 0.0004);
        let n_hom = db.seqs.iter().filter(|s| s.name.starts_with("hom")).count();
        assert!(n_hom >= 20, "want enough homologs, got {n_hom}");
        let res = pipe.search(&db, &ExecPlan::Cpu).unwrap();
        assert!(!res.hits.is_empty());
        // Every reported hit should be a planted homolog (no false
        // positives at these E-values on this scale), and most planted
        // homologs should be recovered.
        // A stray background hit or two is Poisson-expected at f3·N; the
        // hit list must still be overwhelmingly planted homologs.
        let fp = res.hits.iter().filter(|h| h.name.starts_with("bg")).count();
        assert!(
            fp <= 2 && fp * 20 <= res.hits.len(),
            "too many false positives ({fp} of {})",
            res.hits.len()
        );
        let recovered = res.hits.len() as f64 / n_hom as f64;
        assert!(recovered > 0.6, "recovered only {recovered}");
    }

    #[test]
    fn null1_table_matches_clone_path() {
        // The precomputed table (and the closed-form fallback past its
        // end) must be bit-identical to the original clone + set_length
        // evaluation it replaced.
        let (pipe, _) = setup(0.0, 0.00001);
        for len in [1usize, 2, 5, 100, 350, 4096, 16383, 16384, 16385, 100_000] {
            let mut b = pipe.bg.clone();
            b.set_length(len);
            let want = 0.5f32 - b.null1_score(len);
            let got = pipe.corrected(0.5, len);
            assert_eq!(got.to_bits(), want.to_bits(), "len {len}: {got} vs {want}");
        }
    }

    #[test]
    fn forced_backends_report_identical_hits() {
        // Pipeline-level cross-backend equivalence: every available SIMD
        // backend must produce the same calibration, survivor sets, and
        // hit list as the scalar reference.
        let core = synthetic_model(80, 42, &BuildParams::default());
        let mut spec = DbGenSpec::envnr_like().scaled(0.0002);
        spec.homolog_fraction = 0.02;
        let db = generate(&spec, Some(&core), 3);
        let mut baseline: Option<PipelineResult> = None;
        for backend in Backend::all_available() {
            let pipe = Pipeline::prepare_with_backend(&core, PipelineConfig::default(), 7, backend);
            assert_eq!(pipe.backend(), backend);
            let res = pipe.search(&db, &ExecPlan::Cpu).unwrap();
            match &baseline {
                None => {
                    assert_eq!(backend, Backend::Scalar);
                    baseline = Some(res);
                }
                Some(base) => {
                    assert_eq!(base.hits, res.hits, "backend {backend} hit list diverged");
                    for (a, b) in base.stages.iter().zip(&res.stages) {
                        assert_eq!(
                            (a.seqs_in, a.seqs_out),
                            (b.seqs_in, b.seqs_out),
                            "backend {backend} funnel diverged at {}",
                            a.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batch_widths_are_bit_identical_in_cpu_search() {
        // The acceptance bar for the interleaved kernels: batching on
        // (auto or any explicit width) changes nothing observable —
        // identical hits, identical funnel counters.
        let core = synthetic_model(80, 42, &BuildParams::default());
        let mut spec = DbGenSpec::envnr_like().scaled(0.0002);
        spec.homolog_fraction = 0.02;
        let db = generate(&spec, Some(&core), 3);
        let cfg = PipelineConfig {
            batch: 1,
            ..Default::default()
        };
        let mut pipe = Pipeline::prepare(&core, cfg, 7);
        let base = pipe.search(&db, &ExecPlan::Cpu).unwrap();
        assert!(!base.hits.is_empty());
        for batch in [0usize, 2, 3, 4] {
            pipe.config.batch = batch;
            let res = pipe.search(&db, &ExecPlan::Cpu).unwrap();
            assert_eq!(base.hits, res.hits, "batch {batch}: hit list diverged");
            for (a, b) in base.stages.iter().zip(&res.stages) {
                assert_eq!(
                    (a.seqs_in, a.seqs_out),
                    (b.seqs_in, b.seqs_out),
                    "batch {batch}: funnel diverged at {}",
                    a.name
                );
            }
        }
    }

    #[test]
    fn thread_counts_are_bit_identical_in_cpu_search() {
        // The acceptance bar for the work-stealing pool: the worker count
        // changes wall time only — hits, scores, and funnel counters are
        // bit-identical because every sweep writes results by original
        // sequence position.
        let core = synthetic_model(80, 42, &BuildParams::default());
        let mut spec = DbGenSpec::envnr_like().scaled(0.0002);
        spec.homolog_fraction = 0.02;
        let db = generate(&spec, Some(&core), 3);
        let cfg = PipelineConfig {
            threads: 1,
            ..Default::default()
        };
        let base = Pipeline::prepare(&core, cfg, 7)
            .search(&db, &ExecPlan::Cpu)
            .unwrap();
        assert!(!base.hits.is_empty());
        for threads in [2usize, 4, 8] {
            let cfg = PipelineConfig {
                threads,
                ..Default::default()
            };
            let res = Pipeline::prepare(&core, cfg, 7)
                .search(&db, &ExecPlan::Cpu)
                .unwrap();
            assert_eq!(base.hits, res.hits, "threads {threads}: hit list diverged");
            for (a, b) in base.stages.iter().zip(&res.stages) {
                assert_eq!(
                    (a.seqs_in, a.seqs_out, a.residues_in),
                    (b.seqs_in, b.seqs_out, b.residues_in),
                    "threads {threads}: funnel diverged at {}",
                    a.name
                );
            }
        }
    }

    #[test]
    fn ssv_prefilter_cuts_background_but_keeps_hits() {
        let core = synthetic_model(80, 42, &BuildParams::default());
        let mut spec = DbGenSpec::envnr_like().scaled(0.0004);
        spec.homolog_fraction = 0.02;
        let db = generate(&spec, Some(&core), 3);
        let plain = Pipeline::prepare(&core, PipelineConfig::default(), 7);
        let cfg = PipelineConfig {
            ssv: true,
            ..Default::default()
        };
        let pre = Pipeline::prepare(&core, cfg, 7);
        let a = plain.search(&db, &ExecPlan::Cpu).unwrap();
        let b = pre.search(&db, &ExecPlan::Cpu).unwrap();
        assert_eq!(a.stages[0].name, "MSV");
        assert_eq!(b.stages[0].name, "SSV+MSV");
        // MSV survivors with the pre-filter are a subset of those without
        // (a sequence must pass SSV to even reach MSV)…
        assert!(b.stages[0].seqs_out <= a.stages[0].seqs_out);
        // …and the loose f0 threshold keeps every reported hit: real
        // homologs sit far below P = 0.08 on the single-hit score too.
        assert_eq!(a.hits, b.hits);
    }

    #[test]
    fn gpu_pipeline_reports_same_hits_as_cpu() {
        // Bit-exact filters ⇒ identical survivor sets ⇒ identical hits.
        let (pipe, db) = setup(0.02, 0.0002);
        let cpu = pipe.search(&db, &ExecPlan::Cpu).unwrap();
        let gpu = pipe
            .search(
                &db,
                &ExecPlan::Device {
                    dev: DeviceSpec::tesla_k40(),
                },
            )
            .unwrap();
        let cpu_ids: Vec<u32> = cpu.hits.iter().map(|h| h.seqid).collect();
        let gpu_ids: Vec<u32> = gpu.hits.iter().map(|h| h.seqid).collect();
        assert_eq!(cpu_ids, gpu_ids);
        assert_eq!(cpu.stages[0].seqs_out, gpu.stages[0].seqs_out);
        assert_eq!(cpu.stages[1].seqs_out, gpu.stages[1].seqs_out);
    }

    #[test]
    fn max_sensitivity_is_a_superset() {
        let core = synthetic_model(50, 9, &BuildParams::default());
        let filt = Pipeline::prepare(&core, PipelineConfig::default(), 7);
        let maxs = Pipeline::prepare(&core, PipelineConfig::max_sensitivity(), 7);
        let mut spec = DbGenSpec::envnr_like().scaled(0.0002);
        spec.homolog_fraction = 0.03;
        let db = generate(&spec, Some(&core), 4);
        let a = filt.search(&db, &ExecPlan::Cpu).unwrap();
        let b = maxs.search(&db, &ExecPlan::Cpu).unwrap();
        let af: Vec<u32> = a.hits.iter().map(|h| h.seqid).collect();
        let bf: Vec<u32> = b.hits.iter().map(|h| h.seqid).collect();
        for id in &af {
            assert!(
                bf.contains(id),
                "filtered pipeline found {id} but --max lost it"
            );
        }
        assert!(bf.len() >= af.len());
    }

    #[test]
    fn traced_search_mirrors_stage_stats_and_keeps_hits_identical() {
        let (pipe, db) = setup(0.02, 0.0002);
        let plain = pipe.search(&db, &ExecPlan::Cpu).unwrap();
        let traced = pipe
            .search_traced(&db, &ExecPlan::Cpu, &Trace::on())
            .unwrap();
        // Profiling must be invisible in the results…
        assert_eq!(plain.hits, traced.result.hits);
        let tel = traced.telemetry.expect("armed trace yields telemetry");
        // …and the telemetry funnel must agree with the stage records
        // count for count, second for second.
        for st in &traced.result.stages {
            let node = tel
                .at_path(&format!("pipeline/{}", st.name))
                .unwrap_or_else(|| panic!("missing telemetry node for {}", st.name));
            assert_eq!(node.counter("seqs_in"), st.seqs_in as u64);
            assert_eq!(node.counter("seqs_out"), st.seqs_out as u64);
            assert_eq!(node.counter("residues_in"), st.residues_in);
            assert!((node.seconds - st.time_s).abs() < 1e-12);
        }
        assert_eq!(
            tel.at_path("pipeline/hits").unwrap().counter("reported"),
            traced.result.hits.len() as u64
        );
        // The pool occupancy node mirrors this search's fan-outs: one
        // child per worker, and the task total covers at least the three
        // stage sweeps' items.
        let pool_node = tel.at_path("pipeline/pool").expect("pool telemetry");
        assert_eq!(pool_node.counter("workers"), pipe.pool().threads() as u64);
        assert!(pool_node.counter("tasks") > 0);
        assert!(tel.at_path("pipeline/pool/worker0").is_some());
        // A disabled trace yields no telemetry and the same results.
        let off = pipe
            .search_traced(&db, &ExecPlan::Cpu, &Trace::off())
            .unwrap();
        assert!(off.telemetry.is_none());
        assert_eq!(off.result.hits, plain.hits);
    }
}

#[cfg(test)]
mod align_tests {
    use super::*;
    use h3w_hmm::build::{synthetic_model, BuildParams};
    use h3w_seqdb::gen::{generate, DbGenSpec};

    #[test]
    fn reported_hits_can_be_aligned_and_rendered() {
        let core = synthetic_model(40, 4242, &BuildParams::default());
        let pipe = Pipeline::prepare(&core, PipelineConfig::default(), 7);
        let mut spec = DbGenSpec::swissprot_like().scaled(1e-4);
        spec.homolog_fraction = 0.2;
        let db = generate(&spec, Some(&core), 5);
        let res = pipe.search(&db, &ExecPlan::Cpu).unwrap();
        assert!(!res.hits.is_empty());
        for hit in res.hits.iter().take(3) {
            let (aln, text) = pipe.align_hit(&core, &db, hit);
            assert!(!aln.segments.is_empty(), "hit {} has no segments", hit.name);
            assert!(aln.score.is_finite());
            assert!(text.contains("model") && text.contains("target"));
            // Hits are strong homologs: the alignment should cover most of
            // the model.
            let span: usize = aln
                .segments
                .iter()
                .map(|s| s.k_end - s.k_start + 1)
                .max()
                .unwrap();
            assert!(span >= 20, "span {span} too short for a real hit");
        }
    }
}

#[cfg(test)]
mod gpu_full_tests {
    use super::*;
    use h3w_hmm::build::{synthetic_model, BuildParams};
    use h3w_seqdb::gen::{generate, DbGenSpec};

    #[test]
    fn fully_on_device_pipeline_matches_cpu_hits() {
        let core = synthetic_model(60, 606, &BuildParams::default());
        let pipe = Pipeline::prepare(&core, PipelineConfig::default(), 7);
        let mut spec = DbGenSpec::envnr_like().scaled(3e-5);
        spec.homolog_fraction = 0.05;
        let db = generate(&spec, Some(&core), 11);
        let cpu = pipe.search(&db, &ExecPlan::Cpu).unwrap();
        let gpu = pipe
            .search(
                &db,
                &ExecPlan::DeviceFull {
                    dev: h3w_simt::DeviceSpec::tesla_k40(),
                },
            )
            .unwrap();
        // Filters are bit-exact. The host Forward is the striped
        // odds-space filter (within ~1e-4 nats of the exact recurrence);
        // the device kernel still sums with the flogsum table, whose
        // quantization bias is worth up to ~0.1 nats at these lengths —
        // far from any threshold on this seeded workload.
        assert_eq!(
            cpu.hits.iter().map(|h| h.seqid).collect::<Vec<_>>(),
            gpu.hits.iter().map(|h| h.seqid).collect::<Vec<_>>()
        );
        for (a, b) in cpu.hits.iter().zip(&gpu.hits) {
            assert!(
                (a.fwd_score - b.fwd_score).abs() < 0.15,
                "{}: {} vs {}",
                a.name,
                a.fwd_score,
                b.fwd_score
            );
        }
        assert!(gpu.stages[2].name.contains("GPU"));
    }
}

#[cfg(test)]
mod null2_tests {
    use super::*;
    use h3w_hmm::alphabet::BACKGROUND_F;
    use h3w_hmm::plan7::{CoreModel as CM, Node, NodeTrans};
    use h3w_seqdb::gen::{generate, DbGenSpec};
    use h3w_seqdb::DigitalSeq;

    /// A low-complexity (poly-L) family model.
    fn poly_l_model() -> CM {
        let mut mat = [0.004f32; 20];
        mat[9] = 1.0 - 0.004 * 19.0;
        let node = Node {
            mat,
            ins: BACKGROUND_F,
            t: NodeTrans::conserved(),
        };
        CM {
            name: "polyL".into(),
            nodes: vec![node; 30],
            consensus: vec![9; 30],
        }
    }

    #[test]
    fn null2_suppresses_low_complexity_false_positives() {
        let model = poly_l_model();
        let mut db = generate(&DbGenSpec::envnr_like().scaled(5e-5), None, 9);
        // Plant poly-L junk targets (not homologs in any meaningful sense —
        // they merely share the bias).
        for j in 0..5 {
            let mut res = vec![9u8; 60];
            res.extend(h3w_hmm::calibrate::random_seq(
                &mut rand::SeedableRng::seed_from_u64(j),
                60,
            ));
            db.seqs.push(DigitalSeq {
                name: format!("junk{j}"),
                desc: String::new(),
                residues: res,
            });
        }
        let plain = Pipeline::prepare(&model, PipelineConfig::default(), 7);
        let cfg = PipelineConfig {
            null2: true,
            ..Default::default()
        };
        let corrected = Pipeline::prepare(&model, cfg, 7);
        let raw_hits = plain.search(&db, &ExecPlan::Cpu).unwrap();
        let cor_hits = corrected.search(&db, &ExecPlan::Cpu).unwrap();
        let junk =
            |r: &PipelineResult| r.hits.iter().filter(|h| h.name.starts_with("junk")).count();
        assert!(
            junk(&raw_hits) >= 3,
            "uncorrected pipeline should be fooled ({} junk hits)",
            junk(&raw_hits)
        );
        assert!(
            junk(&cor_hits) < junk(&raw_hits),
            "null2 should suppress junk: {} vs {}",
            junk(&cor_hits),
            junk(&raw_hits)
        );
        // null2 hits carry the posterior used for the correction; domain
        // reporting reuses it and must match a from-scratch decode.
        assert!(raw_hits.hits.iter().all(|h| h.posterior.is_none()));
        for h in &cor_hits.hits {
            let post = h.posterior.as_deref().expect("null2 hit lacks posterior");
            assert_eq!(
                *post,
                h3w_cpu::posterior_decode(&corrected.profile, &db.seqs[h.seqid as usize].residues)
            );
            let doms = corrected.domains_for_hit(&db, h);
            let mut bare = h.clone();
            bare.posterior = None;
            assert_eq!(doms, corrected.domains_for_hit(&db, &bare));
        }
    }
}
