//! # h3w-pipeline — the hmmsearch task pipeline
//!
//! HMMER 3.0's acceleration pipeline (paper §II, Fig. 1): the MSV filter
//! passes ~2% of sequences at `P < 0.02`, the P7Viterbi filter passes
//! ~0.1% at `P < 10⁻³`, and the Forward stage scores the rest in full
//! precision. [`run::Pipeline`] prepares a query (quantization, striping,
//! calibration) and sweeps a database on the CPU baseline or with the two
//! filter stages on a simulated GPU; [`report`] carries the funnel and
//! time-fraction statistics Fig. 1 reports.

pub mod checkpoint;
pub mod config;
pub mod multi;
pub mod orchestrator;
pub mod report;
pub mod run;
pub mod stream;

pub use checkpoint::{CheckpointError, StreamCheckpoint};
pub use config::PipelineConfig;
pub use multi::{best_hits_per_target, scan, FamilyResult, TargetMatch};
pub use orchestrator::{FtSweep, SweepReport};
pub use report::{Hit, PipelineResult, StageStats};
pub use run::Pipeline;
pub use stream::{search_chunked, search_chunked_checkpointed, FastaChunks};
