//! # h3w-pipeline — the hmmsearch task pipeline
//!
//! HMMER 3.0's acceleration pipeline (paper §II, Fig. 1): the MSV filter
//! passes ~2% of sequences at `P < 0.02`, the P7Viterbi filter passes
//! ~0.1% at `P < 10⁻³`, and the Forward stage scores the rest in full
//! precision. [`run::Pipeline`] prepares a query (quantization, striping,
//! calibration); [`run::Pipeline::search`] sweeps a database under an
//! [`run::ExecPlan`] — CPU baseline, simulated GPU, fully-on-device, or
//! fault-tolerant multi-device — through one shared stage driver.
//! [`report`] carries the funnel and time-fraction statistics Fig. 1
//! reports; [`h3w_trace::Trace`] (re-exported here) collects the optional
//! per-run funnel telemetry behind `hmmsearch --profile`.

pub mod checkpoint;
pub mod config;
pub mod multi;
pub mod orchestrator;
pub mod report;
pub mod run;
pub mod stream;

pub use checkpoint::{CheckpointError, StreamCheckpoint};
pub use config::{ConfigError, PipelineConfig, PipelineConfigBuilder};
pub use h3w_core::fault::SweepError;
pub use h3w_trace::{Telemetry, Trace};
pub use multi::{
    best_hits_per_target, prepare_scan, scan, scan_prepared, scan_traced, scan_with_plan,
    FamilyResult, ScanError, ScanReport, TargetMatch,
};
pub use orchestrator::{FtSweep, SweepReport};
pub use report::{Hit, PipelineResult, StageStats};
pub use run::{ExecPlan, Pipeline, SearchReport};
pub use stream::{
    search_chunked, search_chunked_checkpointed, search_chunked_traced, search_shards_observed,
    search_source, search_source_checkpointed, ChunkObserver, ChunkProgress, FastaChunks,
    StreamError, StreamReport,
};
