//! Pipeline results: per-stage statistics (the Fig. 1 quantities) and the
//! reported hit list.

use h3w_cpu::Posterior;
use std::sync::Arc;

/// One reported homolog.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Sequence index in the database.
    pub seqid: u32,
    /// Sequence name.
    pub name: String,
    /// MSV filter score (nats).
    pub msv_score: f32,
    /// Viterbi filter score (nats).
    pub vit_score: f32,
    /// Forward score (nats) — the reported score.
    pub fwd_score: f32,
    /// P-value of the Forward score.
    pub pvalue: f64,
    /// E-value (`P × database size`).
    pub evalue: f64,
    /// Posterior decoding computed for the null2 correction, shared with
    /// domain reporting (`None` when null2 is off).
    pub posterior: Option<Arc<Posterior>>,
}

/// One stage's funnel and timing numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// Stage label.
    pub name: String,
    /// Sequences entering.
    pub seqs_in: usize,
    /// Sequences surviving.
    pub seqs_out: usize,
    /// Residues entering (the stage's DP-row workload).
    pub residues_in: u64,
    /// Stage time in seconds (measured for CPU stages, modeled for
    /// simulated-GPU stages).
    pub time_s: f64,
}

impl StageStats {
    /// Build one stage record.
    pub fn new(name: &str, seqs_in: usize, seqs_out: usize, time_s: f64) -> StageStats {
        StageStats {
            name: name.to_string(),
            seqs_in,
            seqs_out,
            residues_in: 0,
            time_s,
        }
    }

    /// Attach the residue workload.
    pub fn with_residues(mut self, residues_in: u64) -> StageStats {
        self.residues_in = residues_in;
        self
    }

    /// Fraction of entering sequences that survive.
    pub fn pass_rate(&self) -> f64 {
        if self.seqs_in == 0 {
            0.0
        } else {
            self.seqs_out as f64 / self.seqs_in as f64
        }
    }
}

/// Full pipeline outcome.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// The three stages in order (MSV, P7Viterbi, Forward).
    pub stages: [StageStats; 3],
    /// Reported hits, best E-value first.
    pub hits: Vec<Hit>,
    /// Database size (E-value scale).
    pub db_size: usize,
}

impl PipelineResult {
    /// Assemble a result.
    pub fn new(stages: [StageStats; 3], hits: Vec<Hit>, db_size: usize) -> PipelineResult {
        PipelineResult {
            stages,
            hits,
            db_size,
        }
    }

    /// Total pipeline time.
    pub fn total_time_s(&self) -> f64 {
        self.stages.iter().map(|s| s.time_s).sum()
    }

    /// Per-stage fraction of total time — the Fig. 1 percentages
    /// (80.6% / 14.5% / 4.9% in the paper's model-400/Env_nr setting).
    pub fn time_fractions(&self) -> [f64; 3] {
        let total = self.total_time_s().max(1e-12);
        [
            self.stages[0].time_s / total,
            self.stages[1].time_s / total,
            self.stages[2].time_s / total,
        ]
    }

    /// Sequence survival fractions relative to the whole database —
    /// Fig. 1's 100% → 2.2% → 0.1% funnel.
    pub fn funnel(&self) -> [f64; 3] {
        let n = self.db_size.max(1) as f64;
        [
            1.0,
            self.stages[0].seqs_out as f64 / n,
            self.stages[1].seqs_out as f64 / n,
        ]
    }

    /// Render a small text report.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let funnel = self.funnel();
        let fracs = self.time_fractions();
        let _ = writeln!(out, "pipeline over {} sequences:", self.db_size);
        for (i, st) in self.stages.iter().enumerate() {
            let _ = writeln!(
                out,
                "  {:<16} in {:>8}  out {:>8}  ({:>6.2}% of db)  time {:>9.4}s ({:>5.1}%)",
                st.name,
                st.seqs_in,
                st.seqs_out,
                funnel.get(i + 1).copied().unwrap_or(funnel[2]) * 100.0,
                st.time_s,
                fracs[i] * 100.0
            );
        }
        let _ = writeln!(out, "  hits reported: {}", self.hits.len());
        for h in self.hits.iter().take(10) {
            let _ = writeln!(
                out,
                "    {:<20} fwd {:>8.2} nats  E = {:.3e}",
                h.name, h.fwd_score, h.evalue
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PipelineResult {
        PipelineResult::new(
            [
                StageStats::new("MSV", 1000, 22, 0.806),
                StageStats::new("P7Viterbi", 22, 1, 0.145),
                StageStats::new("Forward", 1, 1, 0.049),
            ],
            vec![],
            1000,
        )
    }

    #[test]
    fn fractions_and_funnel() {
        let r = sample();
        let f = r.time_fractions();
        assert!((f[0] - 0.806).abs() < 1e-9);
        assert!((f[2] - 0.049).abs() < 1e-9);
        let funnel = r.funnel();
        assert_eq!(funnel[0], 1.0);
        assert!((funnel[1] - 0.022).abs() < 1e-9);
        assert!((funnel[2] - 0.001).abs() < 1e-9);
        assert!((r.total_time_s() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pass_rate_handles_empty() {
        assert_eq!(StageStats::new("x", 0, 0, 0.0).pass_rate(), 0.0);
        assert!((StageStats::new("x", 50, 5, 0.0).pass_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn render_contains_stages() {
        let text = sample().render();
        assert!(text.contains("MSV"));
        assert!(text.contains("P7Viterbi"));
        assert!(text.contains("hits reported: 0"));
    }
}
