//! Fault-tolerant multi-device sweep orchestration.
//!
//! [`Pipeline::run_gpu_ft`] is the deployment entry point the paper's
//! §IV-A multi-GPU story needs in practice: the MSV and Viterbi filter
//! stages fan out across `n` devices through the recovery engine
//! ([`h3w_core::fault::run_chunks_ft`]) — transient faults retry with
//! capped backoff, a dead device's partition redistributes across
//! survivors, and when every device is gone the stage (and the rest of
//! the sweep) degrades to the striped CPU backend. Because the CPU and
//! device filters are bit-identical and every sequence is scored
//! independently, the reported hits and funnel counters are **always**
//! bit-identical to a fault-free run; only the modeled stage times and
//! the recovery journal differ.

use crate::report::{PipelineResult, StageStats};
use crate::run::Pipeline;
use h3w_core::fault::{run_chunks_ft, RetryPolicy, SweepError, SweepTrace};
use h3w_core::multi_gpu::partition_id_slice;
use h3w_core::tiered::{run_msv_device_on, run_vit_device_on};
use h3w_cpu::striped_vit::VitWorkspace;
use h3w_seqdb::{PackedDb, SeqDb};
use h3w_simt::{DeviceSpec, FaultInjector};
use rayon::prelude::*;
use std::time::Instant;

/// How a fault-tolerant sweep runs: device pool size, retry policy, and
/// the (optional) fault injector driving the simulation.
#[derive(Clone, Copy)]
pub struct FtSweep<'a> {
    /// Devices in the pool (all the same [`DeviceSpec`], per §IV-A).
    pub n_devices: usize,
    /// Transient-fault retry policy.
    pub policy: RetryPolicy,
    /// Armed fault plan, if simulating faults.
    pub injector: Option<&'a FaultInjector>,
}

impl FtSweep<'_> {
    /// An `n`-device sweep with no injected faults and no retry waits.
    pub fn fault_free(n_devices: usize) -> FtSweep<'static> {
        FtSweep {
            n_devices,
            policy: RetryPolicy::no_wait(),
            injector: None,
        }
    }
}

/// A completed fault-tolerant sweep: the (fault-invariant) results plus
/// the recovery journal.
#[derive(Debug)]
pub struct SweepReport {
    /// Hits and funnel counters — bit-identical to a fault-free sweep.
    pub result: PipelineResult,
    /// What the recovery engine did across all stages.
    pub trace: SweepTrace,
    /// True if any stage fell back to the striped CPU backend.
    pub degraded_to_cpu: bool,
}

impl Pipeline {
    /// Sweep a database with MSV + Viterbi fanned out over `n` simulated
    /// devices under a fault model, Forward on the host. Survives device
    /// loss by redistribution and total device loss by CPU fallback;
    /// planning errors ([`SweepError::NoConfig`] / [`SweepError::Launch`])
    /// still propagate, since no amount of rerouting fixes those.
    pub fn run_gpu_ft(
        &self,
        db: &SeqDb,
        dev: &DeviceSpec,
        sweep: &FtSweep,
    ) -> Result<SweepReport, SweepError> {
        assert!(sweep.n_devices >= 1);
        let n = db.len();
        let packed = PackedDb::from_db(db);
        let mut devices: Vec<usize> = (0..sweep.n_devices).collect();
        let mut trace = SweepTrace::default();
        let mut degraded = false;

        // Stage 1: MSV over everything.
        let all_ids: Vec<u32> = (0..n as u32).collect();
        let mut msv_scores: Vec<f32> = vec![0.0; n];
        let msv_time;
        match self.ft_stage_msv(&packed, &all_ids, dev, sweep, &devices) {
            Ok((scores, makespan, t)) => {
                for (id, s) in scores {
                    msv_scores[id as usize] = s;
                }
                msv_time = makespan;
                devices.retain(|d| !t.lost_devices.contains(d));
                trace.merge(&t);
            }
            Err(SweepError::AllDevicesLost { .. }) => {
                degraded = true;
                // The engine's trace dies with the error; every device
                // still in the pool is gone, so journal them here.
                trace.lost_devices.append(&mut devices);
                trace
                    .events
                    .push("MSV: all devices lost; striped CPU fallback".into());
                // The CPU fallback goes through the same batched
                // interleaved sweep as `run_cpu` — bit-identical scores,
                // but the degraded stage keeps the fast path.
                let t0 = Instant::now();
                msv_scores = h3w_cpu::msv_outcomes_batched(
                    &self.striped_msv,
                    &self.msv,
                    &db.seqs,
                    None,
                    self.config.batch,
                )
                .into_iter()
                .map(|o| o.expect("unmasked sweep scores everything").score)
                .collect();
                msv_time = t0.elapsed().as_secs_f64();
            }
            Err(e) => return Err(e),
        }
        let pass1: Vec<bool> = msv_scores
            .iter()
            .zip(&db.seqs)
            .map(|(&s, q)| self.msv_pvalue(s, q.len()) < self.config.f1)
            .collect();
        let n1 = pass1.iter().filter(|&&b| b).count();

        // Stage 2: Viterbi over survivors.
        let survivors: Vec<u32> = (0..n as u32).filter(|&i| pass1[i as usize]).collect();
        let mut vit_scores: Vec<Option<f32>> = vec![None; n];
        let mut vit_time = 0.0;
        if !survivors.is_empty() {
            let mut on_cpu = devices.is_empty();
            if !on_cpu {
                match self.ft_stage_vit(&packed, &survivors, dev, sweep, &devices) {
                    Ok((scores, makespan, t)) => {
                        for (id, s) in scores {
                            vit_scores[id as usize] = Some(s);
                        }
                        vit_time = makespan;
                        devices.retain(|d| !t.lost_devices.contains(d));
                        trace.merge(&t);
                    }
                    Err(SweepError::AllDevicesLost { .. }) => {
                        degraded = true;
                        trace.lost_devices.append(&mut devices);
                        on_cpu = true;
                        trace
                            .events
                            .push("Viterbi: all devices lost; striped CPU fallback".into());
                    }
                    Err(e) => return Err(e),
                }
            }
            // No partial device results survive an AllDevicesLost (the
            // engine drops them), so the CPU path rescoring every survivor
            // never double-scores.
            if on_cpu {
                let t1 = Instant::now();
                let cpu: Vec<(u32, f32)> = survivors
                    .par_iter()
                    .map_init(VitWorkspace::default, |ws, &id| {
                        let seq = &db.seqs[id as usize].residues;
                        (id, self.striped_vit.run_into(&self.vit, seq, ws).0.score)
                    })
                    .collect();
                for (id, s) in cpu {
                    vit_scores[id as usize] = Some(s);
                }
                vit_time = t1.elapsed().as_secs_f64();
            }
        }
        let pass2: Vec<bool> = vit_scores
            .iter()
            .zip(&db.seqs)
            .map(|(s, q)| s.is_some_and(|s| self.vit_pvalue(s, q.len()) < self.config.f2))
            .collect();
        let n2 = pass2.iter().filter(|&&b| b).count();

        // Stage 3: Forward on the host, as in the paper's deployment —
        // the same striped batched stage body as run_cpu / run_gpu.
        let (fwd_scores, fwd_time) = self.forward_stage(db, &pass2);

        let r1 = Pipeline::masked_residues(db, &pass1);
        let r2 = Pipeline::masked_residues(db, &pass2);
        let result = self.assemble(
            db,
            msv_scores,
            vit_scores,
            fwd_scores,
            [
                StageStats::new("MSV (multi-GPU)", n, n1, msv_time)
                    .with_residues(db.total_residues()),
                StageStats::new("P7Viterbi (multi-GPU)", n1, n2, vit_time).with_residues(r1),
                StageStats::new("Forward (host)", n2, n2, fwd_time).with_residues(r2),
            ],
        );
        Ok(SweepReport {
            result,
            trace,
            degraded_to_cpu: degraded,
        })
    }

    /// MSV stage through the recovery engine: survivor ids in, global
    /// `(seqid, score)` pairs out.
    #[allow(clippy::type_complexity)]
    fn ft_stage_msv(
        &self,
        packed: &PackedDb,
        ids: &[u32],
        dev: &DeviceSpec,
        sweep: &FtSweep,
        devices: &[usize],
    ) -> Result<(Vec<(u32, f32)>, f64, SweepTrace), SweepError> {
        let (runs, makespan, trace) = run_chunks_ft(
            partition_id_slice(packed, ids, devices.len()),
            devices,
            &sweep.policy,
            sweep.injector,
            |chunk, ctx| {
                let sub = packed.subset(chunk);
                let run = run_msv_device_on(&self.msv, &sub, dev, None, ctx)?;
                let scores: Vec<(u32, f32)> = run
                    .hits
                    .iter()
                    .map(|h| (sub.parent_id(h.seqid as usize) as u32, h.score))
                    .collect();
                Ok((scores, run.run.time.total_s))
            },
            |(_, t)| *t,
        )?;
        let scores = runs.into_iter().flat_map(|(s, _)| s).collect();
        Ok((scores, makespan, trace))
    }

    /// Viterbi stage through the recovery engine; same shape as
    /// [`Pipeline::ft_stage_msv`].
    #[allow(clippy::type_complexity)]
    fn ft_stage_vit(
        &self,
        packed: &PackedDb,
        ids: &[u32],
        dev: &DeviceSpec,
        sweep: &FtSweep,
        devices: &[usize],
    ) -> Result<(Vec<(u32, f32)>, f64, SweepTrace), SweepError> {
        let (runs, makespan, trace) = run_chunks_ft(
            partition_id_slice(packed, ids, devices.len()),
            devices,
            &sweep.policy,
            sweep.injector,
            |chunk, ctx| {
                let sub = packed.subset(chunk);
                let run = run_vit_device_on(&self.vit, &sub, dev, None, ctx)?;
                let scores: Vec<(u32, f32)> = run
                    .hits
                    .iter()
                    .map(|h| (sub.parent_id(h.seqid as usize) as u32, h.score))
                    .collect();
                Ok((scores, run.run.time.total_s))
            },
            |(_, t)| *t,
        )?;
        let scores = runs.into_iter().flat_map(|(s, _)| s).collect();
        Ok((scores, makespan, trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use h3w_hmm::build::{synthetic_model, BuildParams};
    use h3w_seqdb::gen::{generate, DbGenSpec};
    use h3w_simt::{FaultKind, FaultPlan};

    fn setup() -> (Pipeline, SeqDb) {
        let core = synthetic_model(80, 42, &BuildParams::default());
        let pipe = Pipeline::prepare(&core, PipelineConfig::default(), 7);
        let mut spec = DbGenSpec::envnr_like().scaled(0.0002);
        spec.homolog_fraction = 0.02;
        let db = generate(&spec, Some(&core), 3);
        (pipe, db)
    }

    fn funnel(r: &PipelineResult) -> Vec<(usize, usize)> {
        r.stages.iter().map(|s| (s.seqs_in, s.seqs_out)).collect()
    }

    #[test]
    fn fault_free_ft_sweep_matches_single_device_gpu() {
        let (pipe, db) = setup();
        let dev = DeviceSpec::tesla_k40();
        let single = pipe.run_gpu(&db, &dev).unwrap();
        let ft = pipe.run_gpu_ft(&db, &dev, &FtSweep::fault_free(4)).unwrap();
        assert!(!ft.degraded_to_cpu);
        assert_eq!(ft.result.hits, single.hits);
        assert_eq!(funnel(&ft.result), funnel(&single));
    }

    #[test]
    fn device_death_mid_sweep_is_invisible_in_results() {
        let (pipe, db) = setup();
        let dev = DeviceSpec::tesla_k40();
        let clean = pipe.run_gpu_ft(&db, &dev, &FtSweep::fault_free(4)).unwrap();
        // Device 1 dies on its second launch: after its MSV chunk, during
        // the Viterbi stage (or a redistributed MSV chunk).
        let inj = FaultInjector::new(FaultPlan::none().kill_device(1, 1), 4);
        let sweep = FtSweep {
            n_devices: 4,
            policy: RetryPolicy::no_wait(),
            injector: Some(&inj),
        };
        let faulted = pipe.run_gpu_ft(&db, &dev, &sweep).unwrap();
        assert_eq!(faulted.trace.lost_devices, vec![1]);
        assert!(!faulted.degraded_to_cpu);
        assert_eq!(faulted.result.hits, clean.result.hits);
        assert_eq!(funnel(&faulted.result), funnel(&clean.result));
    }

    #[test]
    fn total_device_loss_degrades_to_cpu_bit_identically() {
        let (pipe, db) = setup();
        let dev = DeviceSpec::tesla_k40();
        let clean = pipe.run_gpu_ft(&db, &dev, &FtSweep::fault_free(2)).unwrap();
        let plan = FaultPlan::none().kill_device(0, 0).kill_device(1, 1);
        let inj = FaultInjector::new(plan, 2);
        let sweep = FtSweep {
            n_devices: 2,
            policy: RetryPolicy::no_wait(),
            injector: Some(&inj),
        };
        let faulted = pipe.run_gpu_ft(&db, &dev, &sweep).unwrap();
        assert!(faulted.degraded_to_cpu);
        assert_eq!(faulted.result.hits, clean.result.hits);
        assert_eq!(funnel(&faulted.result), funnel(&clean.result));
    }

    #[test]
    fn transient_storm_retries_without_result_drift() {
        let (pipe, db) = setup();
        let dev = DeviceSpec::tesla_k40();
        let clean = pipe.run_gpu_ft(&db, &dev, &FtSweep::fault_free(3)).unwrap();
        let plan = FaultPlan::none()
            .transient(0, 0, FaultKind::KernelTimeout, 1)
            .transient(2, 0, FaultKind::LaunchTransient, 2);
        let inj = FaultInjector::new(plan, 3);
        let sweep = FtSweep {
            n_devices: 3,
            policy: RetryPolicy::no_wait(),
            injector: Some(&inj),
        };
        let faulted = pipe.run_gpu_ft(&db, &dev, &sweep).unwrap();
        assert!(faulted.trace.retries >= 3);
        assert!(faulted.trace.lost_devices.is_empty());
        assert_eq!(faulted.result.hits, clean.result.hits);
    }
}
