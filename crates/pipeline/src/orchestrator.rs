//! Fault-tolerant multi-device sweep orchestration.
//!
//! [`Pipeline::run_gpu_ft`] is the deployment entry point the paper's
//! §IV-A multi-GPU story needs in practice: the MSV and Viterbi filter
//! stages fan out across `n` devices through the recovery engine
//! ([`h3w_core::fault::run_chunks_ft`]) — transient faults retry with
//! capped backoff, a dead device's partition redistributes across
//! survivors, and when every device is gone the stage (and the rest of
//! the sweep) degrades to the striped CPU backend. Because the CPU and
//! device filters are bit-identical and every sequence is scored
//! independently, the reported hits and funnel counters are **always**
//! bit-identical to a fault-free run; only the modeled stage times and
//! the recovery journal differ.
//!
//! The stage sequencing itself lives in [`Pipeline::search_traced`]
//! (the `ExecPlan::FaultTolerant` arms); this module holds the sweep
//! descriptor, the per-stage recovery-engine adapters, and the
//! [`SweepReport`]-shaped convenience wrapper.

use crate::report::PipelineResult;
use crate::run::{ExecPlan, Pipeline};
use h3w_core::fault::{run_chunks_ft, RetryPolicy, SweepError, SweepTrace};
use h3w_core::multi_gpu::partition_id_slice;
use h3w_core::tiered::{run_msv_device_on, run_vit_device_on};
use h3w_seqdb::{PackedDb, SeqDb};
use h3w_simt::{DeviceSpec, FaultInjector};
use h3w_trace::Trace;

/// How a fault-tolerant sweep runs: device pool size, retry policy, and
/// the (optional) fault injector driving the simulation.
#[derive(Clone, Copy)]
pub struct FtSweep<'a> {
    /// Devices in the pool (all the same [`DeviceSpec`], per §IV-A).
    pub n_devices: usize,
    /// Transient-fault retry policy.
    pub policy: RetryPolicy,
    /// Armed fault plan, if simulating faults.
    pub injector: Option<&'a FaultInjector>,
}

impl FtSweep<'_> {
    /// An `n`-device sweep with no injected faults and no retry waits.
    pub fn fault_free(n_devices: usize) -> FtSweep<'static> {
        FtSweep {
            n_devices,
            policy: RetryPolicy::no_wait(),
            injector: None,
        }
    }
}

/// A completed fault-tolerant sweep: the (fault-invariant) results plus
/// the recovery journal.
#[derive(Debug)]
pub struct SweepReport {
    /// Hits and funnel counters — bit-identical to a fault-free sweep.
    pub result: PipelineResult,
    /// What the recovery engine did across all stages.
    pub trace: SweepTrace,
    /// True if any stage fell back to the striped CPU backend.
    pub degraded_to_cpu: bool,
}

impl Pipeline {
    /// Sweep a database with MSV + Viterbi fanned out over `n` simulated
    /// devices under a fault model, Forward on the host. Survives device
    /// loss by redistribution and total device loss by CPU fallback;
    /// planning errors ([`SweepError::NoConfig`] / [`SweepError::Launch`])
    /// still propagate, since no amount of rerouting fixes those.
    ///
    /// Convenience wrapper over [`Pipeline::search_traced`] with
    /// [`ExecPlan::FaultTolerant`] — the sweep runs through exactly the
    /// same driver as every other plan.
    pub fn run_gpu_ft(
        &self,
        db: &SeqDb,
        dev: &DeviceSpec,
        sweep: &FtSweep,
    ) -> Result<SweepReport, SweepError> {
        let trace = if Self::profile_env() {
            Trace::on()
        } else {
            Trace::off()
        };
        let plan = ExecPlan::FaultTolerant {
            dev: dev.clone(),
            sweep: *sweep,
        };
        let report = self.search_traced(db, &plan, &trace)?;
        Ok(SweepReport {
            result: report.result,
            trace: report.recovery,
            degraded_to_cpu: report.degraded_to_cpu,
        })
    }

    /// MSV stage through the recovery engine: survivor ids in, global
    /// `(seqid, score)` pairs out.
    #[allow(clippy::type_complexity)]
    pub(crate) fn ft_stage_msv(
        &self,
        packed: &PackedDb,
        ids: &[u32],
        dev: &DeviceSpec,
        sweep: &FtSweep,
        devices: &[usize],
    ) -> Result<(Vec<(u32, f32)>, f64, SweepTrace), SweepError> {
        let (runs, makespan, trace) = run_chunks_ft(
            partition_id_slice(packed, ids, devices.len()),
            devices,
            &sweep.policy,
            sweep.injector,
            |chunk, ctx| {
                let sub = packed.subset(chunk);
                let run = run_msv_device_on(&self.msv, &sub, dev, None, ctx)?;
                let scores: Vec<(u32, f32)> = run
                    .hits
                    .iter()
                    .map(|h| (sub.parent_id(h.seqid as usize) as u32, h.score))
                    .collect();
                Ok((scores, run.run.time.total_s))
            },
            |(_, t)| *t,
        )?;
        let scores = runs.into_iter().flat_map(|(s, _)| s).collect();
        Ok((scores, makespan, trace))
    }

    /// Viterbi stage through the recovery engine; same shape as
    /// [`Pipeline::ft_stage_msv`].
    #[allow(clippy::type_complexity)]
    pub(crate) fn ft_stage_vit(
        &self,
        packed: &PackedDb,
        ids: &[u32],
        dev: &DeviceSpec,
        sweep: &FtSweep,
        devices: &[usize],
    ) -> Result<(Vec<(u32, f32)>, f64, SweepTrace), SweepError> {
        let (runs, makespan, trace) = run_chunks_ft(
            partition_id_slice(packed, ids, devices.len()),
            devices,
            &sweep.policy,
            sweep.injector,
            |chunk, ctx| {
                let sub = packed.subset(chunk);
                let run = run_vit_device_on(&self.vit, &sub, dev, None, ctx)?;
                let scores: Vec<(u32, f32)> = run
                    .hits
                    .iter()
                    .map(|h| (sub.parent_id(h.seqid as usize) as u32, h.score))
                    .collect();
                Ok((scores, run.run.time.total_s))
            },
            |(_, t)| *t,
        )?;
        let scores = runs.into_iter().flat_map(|(s, _)| s).collect();
        Ok((scores, makespan, trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use h3w_hmm::build::{synthetic_model, BuildParams};
    use h3w_seqdb::gen::{generate, DbGenSpec};
    use h3w_simt::{FaultKind, FaultPlan};

    fn setup() -> (Pipeline, SeqDb) {
        let core = synthetic_model(80, 42, &BuildParams::default());
        let pipe = Pipeline::prepare(&core, PipelineConfig::default(), 7);
        let mut spec = DbGenSpec::envnr_like().scaled(0.0002);
        spec.homolog_fraction = 0.02;
        let db = generate(&spec, Some(&core), 3);
        (pipe, db)
    }

    fn funnel(r: &PipelineResult) -> Vec<(usize, usize)> {
        r.stages.iter().map(|s| (s.seqs_in, s.seqs_out)).collect()
    }

    #[test]
    fn fault_free_ft_sweep_matches_single_device_gpu() {
        let (pipe, db) = setup();
        let dev = DeviceSpec::tesla_k40();
        let single = pipe
            .search(&db, &ExecPlan::Device { dev: dev.clone() })
            .unwrap();
        let ft = pipe.run_gpu_ft(&db, &dev, &FtSweep::fault_free(4)).unwrap();
        assert!(!ft.degraded_to_cpu);
        assert_eq!(ft.result.hits, single.hits);
        assert_eq!(funnel(&ft.result), funnel(&single));
    }

    #[test]
    fn device_death_mid_sweep_is_invisible_in_results() {
        let (pipe, db) = setup();
        let dev = DeviceSpec::tesla_k40();
        let clean = pipe.run_gpu_ft(&db, &dev, &FtSweep::fault_free(4)).unwrap();
        // Device 1 dies on its second launch: after its MSV chunk, during
        // the Viterbi stage (or a redistributed MSV chunk).
        let inj = FaultInjector::new(FaultPlan::none().kill_device(1, 1), 4);
        let sweep = FtSweep {
            n_devices: 4,
            policy: RetryPolicy::no_wait(),
            injector: Some(&inj),
        };
        let faulted = pipe.run_gpu_ft(&db, &dev, &sweep).unwrap();
        assert_eq!(faulted.trace.lost_devices, vec![1]);
        assert!(!faulted.degraded_to_cpu);
        assert_eq!(faulted.result.hits, clean.result.hits);
        assert_eq!(funnel(&faulted.result), funnel(&clean.result));
    }

    #[test]
    fn total_device_loss_degrades_to_cpu_bit_identically() {
        let (pipe, db) = setup();
        let dev = DeviceSpec::tesla_k40();
        let clean = pipe.run_gpu_ft(&db, &dev, &FtSweep::fault_free(2)).unwrap();
        let plan = FaultPlan::none().kill_device(0, 0).kill_device(1, 1);
        let inj = FaultInjector::new(plan, 2);
        let sweep = FtSweep {
            n_devices: 2,
            policy: RetryPolicy::no_wait(),
            injector: Some(&inj),
        };
        let faulted = pipe.run_gpu_ft(&db, &dev, &sweep).unwrap();
        assert!(faulted.degraded_to_cpu);
        assert_eq!(faulted.result.hits, clean.result.hits);
        assert_eq!(funnel(&faulted.result), funnel(&clean.result));
    }

    #[test]
    fn transient_storm_retries_without_result_drift() {
        let (pipe, db) = setup();
        let dev = DeviceSpec::tesla_k40();
        let clean = pipe.run_gpu_ft(&db, &dev, &FtSweep::fault_free(3)).unwrap();
        let plan = FaultPlan::none()
            .transient(0, 0, FaultKind::KernelTimeout, 1)
            .transient(2, 0, FaultKind::LaunchTransient, 2);
        let inj = FaultInjector::new(plan, 3);
        let sweep = FtSweep {
            n_devices: 3,
            policy: RetryPolicy::no_wait(),
            injector: Some(&inj),
        };
        let faulted = pipe.run_gpu_ft(&db, &dev, &sweep).unwrap();
        assert!(faulted.trace.retries >= 3);
        assert!(faulted.trace.lost_devices.is_empty());
        assert_eq!(faulted.result.hits, clean.result.hits);
    }
}
