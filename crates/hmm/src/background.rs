//! The null (background) model — HMMER's `p7_bg`.
//!
//! Null model #1 is a one-state HMM emitting residues i.i.d. from the
//! background composition with a geometric length distribution tuned to the
//! target sequence length: self-loop probability `p1 = L/(L+1)`.
//! All profile scores in this workspace are log-odds in **nats** against
//! this model.

use crate::alphabet::{expand_scores, Residue, BACKGROUND_F, N_CODES, N_STANDARD};

/// The background model: residue frequencies plus the null length model.
#[derive(Debug, Clone)]
pub struct NullModel {
    /// Per-code emission probability (degenerates get the background-weighted
    /// member mean, gaps/pad get 0).
    pub f: [f32; N_CODES],
    /// Self-loop probability `p1` of the null length model, set by
    /// [`NullModel::set_length`].
    pub p1: f32,
}

impl Default for NullModel {
    fn default() -> Self {
        Self::new()
    }
}

impl NullModel {
    /// Standard Swiss-Prot background composition, length model unset (L=350).
    pub fn new() -> Self {
        let mut bg = NullModel {
            f: expand_scores(&BACKGROUND_F, 0.0),
            p1: 0.0,
        };
        bg.set_length(350);
        bg
    }

    /// Configure the null length model for a target of length `len`
    /// (HMMER's `p7_bg_SetLength`): `p1 = L/(L+1)`.
    pub fn set_length(&mut self, len: usize) {
        self.p1 = len as f32 / (len as f32 + 1.0);
    }

    /// Null-model log score (nats) of a digital sequence of length `len`:
    /// `L·ln(p1) + ln(1−p1)`. The residue emission terms cancel in log-odds
    /// scoring and are *not* included (HMMER's `p7_bg_NullOne`).
    pub fn null1_score(&self, len: usize) -> f32 {
        len as f32 * self.p1.ln() + (1.0 - self.p1).ln()
    }

    /// Background emission probability of a residue code.
    #[inline]
    pub fn freq(&self, code: Residue) -> f32 {
        self.f[code as usize]
    }

    /// Background frequencies over standard residues only.
    pub fn standard(&self) -> &[f32] {
        &self.f[..N_STANDARD]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_frequencies_normalized() {
        let bg = NullModel::new();
        let s: f32 = bg.standard().iter().sum();
        assert!((s - 1.0).abs() < 1e-4);
    }

    #[test]
    fn length_model_monotone() {
        let mut bg = NullModel::new();
        bg.set_length(100);
        let p100 = bg.p1;
        bg.set_length(1000);
        assert!(bg.p1 > p100);
        assert!(bg.p1 < 1.0);
    }

    #[test]
    fn null1_score_matches_formula() {
        let mut bg = NullModel::new();
        bg.set_length(100);
        let expect = 100.0 * (100.0f32 / 101.0).ln() + (1.0f32 / 101.0).ln();
        assert!((bg.null1_score(100) - expect).abs() < 1e-4);
    }

    #[test]
    fn degenerate_freq_is_mean_of_members() {
        let bg = NullModel::new();
        // X averages the whole background: expected value of f under f.
        let x = bg.freq(25);
        let mean: f32 = BACKGROUND_F.iter().map(|f| f * f).sum();
        assert!((x - mean).abs() < 1e-5);
    }
}
