//! HMMER3 ASCII profile file format (`.hmm`) — reader and writer.
//!
//! Implements the subset of the HMMER3/f text format that carries a core
//! model: the header block (`HMMER3/f`, `NAME`, `LENG`, `ALPH`, optional
//! `STATS` lines), the `HMM` column header, the per-node match-emission /
//! insert-emission / transition triplets, and the closing `//`. Scores are
//! stored, as in HMMER, as negative natural logs of probabilities with
//! `*` for zero probability.
//!
//! Round-tripping a model through this format preserves every probability
//! to the printed precision (5 decimal places, like `hmmer`'s own output).

use crate::alphabet::{N_STANDARD, SYMBOLS};
use crate::calibrate::Calibration;
use crate::plan7::{CoreModel, Node, NodeTrans};
use std::fmt::Write as _;

/// Parse failure with a line number.
#[derive(Debug, Clone, PartialEq)]
pub struct HmmParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of what went wrong.
    pub msg: String,
}

impl std::fmt::Display for HmmParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for HmmParseError {}

fn err(line: usize, msg: impl Into<String>) -> HmmParseError {
    HmmParseError {
        line,
        msg: msg.into(),
    }
}

/// A parsed `.hmm` file: the core model plus optional calibration stats.
#[derive(Debug, Clone)]
pub struct HmmFile {
    /// The core model.
    pub model: CoreModel,
    /// Calibration (from `STATS LOCAL` lines), if present.
    pub stats: Option<Calibration>,
}

/// Serialize one model (with optional calibration) to HMMER3/f text.
pub fn write_hmm(model: &CoreModel, stats: Option<&Calibration>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "HMMER3/f [hmmer3-warp | reproduction]");
    let _ = writeln!(out, "NAME  {}", model.name);
    let _ = writeln!(out, "LENG  {}", model.len());
    let _ = writeln!(out, "ALPH  amino");
    if let Some(c) = stats {
        // HMMER prints (mu, lambda) per stage; we carry λ in per-nat units.
        let _ = writeln!(
            out,
            "STATS LOCAL MSV      {:9.4} {:8.5}",
            c.mu_msv, c.lambda
        );
        let _ = writeln!(
            out,
            "STATS LOCAL VITERBI  {:9.4} {:8.5}",
            c.mu_vit, c.lambda
        );
        let _ = writeln!(
            out,
            "STATS LOCAL FORWARD  {:9.4} {:8.5}",
            c.tau_fwd, c.lambda
        );
    }
    let _ = write!(out, "HMM     ");
    for &ch in &SYMBOLS[..N_STANDARD] {
        let _ = write!(out, "   {ch}    ");
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "        {}",
        ["m->m", "m->i", "m->d", "i->m", "i->i", "d->m", "d->d"].join("   ")
    );
    let nlog = |p: f32| -> String {
        if p <= 0.0 {
            "      *".to_string()
        } else {
            format!("{:7.5}", -p.ln())
        }
    };
    for (k, node) in model.nodes.iter().enumerate() {
        // Match emissions, tagged with the node number and consensus.
        let _ = write!(out, "{:7}", k + 1);
        for &p in &node.mat {
            let _ = write!(out, " {}", nlog(p));
        }
        let _ = writeln!(
            out,
            " {:6} {} - -",
            k + 1,
            SYMBOLS[model.consensus[k] as usize]
        );
        // Insert emissions.
        let _ = write!(out, "       ");
        for &p in &node.ins {
            let _ = write!(out, " {}", nlog(p));
        }
        let _ = writeln!(out);
        // Transitions.
        let t = &node.t;
        let _ = writeln!(
            out,
            "        {} {} {} {} {} {} {}",
            nlog(t.mm),
            nlog(t.mi),
            nlog(t.md),
            nlog(t.im),
            nlog(t.ii),
            nlog(t.dm),
            nlog(t.dd)
        );
    }
    let _ = writeln!(out, "//");
    out
}

/// Parse one model from HMMER3/f text.
pub fn read_hmm(text: &str) -> Result<HmmFile, HmmParseError> {
    let mut lines = text.lines().enumerate().peekable();

    // Header.
    let (ln, first) = lines.next().ok_or_else(|| err(1, "empty file"))?;
    if !first.starts_with("HMMER3") {
        return Err(err(ln + 1, format!("not a HMMER3 file: {first:?}")));
    }
    let mut name = String::new();
    let mut leng: Option<usize> = None;
    let mut mu_msv = None;
    let mut mu_vit = None;
    let mut tau_fwd = None;
    let mut lambda = None;
    let mut hmm_line = 0usize;
    for (i, line) in lines.by_ref() {
        let ln = i + 1;
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("NAME") => name = parts.next().unwrap_or("").to_string(),
            Some("LENG") => {
                leng = Some(
                    parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err(ln, "bad LENG"))?,
                )
            }
            Some("ALPH") => {
                let a = parts.next().unwrap_or("");
                if !a.eq_ignore_ascii_case("amino") {
                    return Err(err(ln, format!("unsupported alphabet {a:?}")));
                }
            }
            Some("STATS") => {
                let _local = parts.next(); // LOCAL
                let which = parts.next().unwrap_or("");
                let loc: f32 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| err(ln, "bad STATS location"))?;
                let lam: f32 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| err(ln, "bad STATS lambda"))?;
                lambda = Some(lam);
                match which {
                    "MSV" => mu_msv = Some(loc),
                    "VITERBI" => mu_vit = Some(loc),
                    "FORWARD" => tau_fwd = Some(loc),
                    _ => return Err(err(ln, format!("unknown STATS kind {which:?}"))),
                }
            }
            Some("HMM") => {
                hmm_line = ln;
                break;
            }
            Some(_) | None => {} // tolerate unknown header lines
        }
    }
    if hmm_line == 0 {
        return Err(err(1, "missing HMM section"));
    }
    let leng = leng.ok_or_else(|| err(hmm_line, "missing LENG"))?;
    // Skip the transition-names line.
    lines
        .next()
        .ok_or_else(|| err(hmm_line, "truncated after HMM header"))?;

    let parse_probs = |ln: usize, toks: &[&str]| -> Result<[f32; N_STANDARD], HmmParseError> {
        if toks.len() < N_STANDARD {
            return Err(err(ln, format!("expected 20 scores, got {}", toks.len())));
        }
        let mut out = [0.0f32; N_STANDARD];
        for (o, tok) in out.iter_mut().zip(toks) {
            *o = if *tok == "*" {
                0.0
            } else {
                let v: f32 = tok
                    .parse()
                    .map_err(|_| err(ln, format!("bad score {tok:?}")))?;
                (-v).exp()
            };
        }
        Ok(out)
    };

    let mut nodes = Vec::with_capacity(leng);
    let mut consensus = Vec::with_capacity(leng);
    loop {
        let (i, line) = lines
            .next()
            .ok_or_else(|| err(hmm_line, "unterminated model (missing //)"))?;
        let ln = i + 1;
        let line = line.trim();
        if line == "//" {
            break;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        let node_no: usize = toks
            .first()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err(ln, format!("expected node number, got {:?}", toks.first())))?;
        if node_no != nodes.len() + 1 {
            return Err(err(ln, format!("node {node_no} out of order")));
        }
        let mat = parse_probs(ln, &toks[1..])?;
        // Consensus annotation column (after the 20 scores + MAP number).
        let cons_char = toks
            .get(1 + N_STANDARD + 1)
            .and_then(|t| t.chars().next())
            .unwrap_or('A');
        let cons = crate::alphabet::digitize(cons_char).map_err(|e| err(ln, e.to_string()))?;

        let (i2, ins_line) = lines.next().ok_or_else(|| err(ln, "missing insert line"))?;
        let ins_toks: Vec<&str> = ins_line.split_whitespace().collect();
        let ins = parse_probs(i2 + 1, &ins_toks)?;

        let (i3, t_line) = lines
            .next()
            .ok_or_else(|| err(ln, "missing transition line"))?;
        let t_toks: Vec<&str> = t_line.split_whitespace().collect();
        if t_toks.len() < 7 {
            return Err(err(i3 + 1, "expected 7 transitions"));
        }
        let tv = |s: &str| -> Result<f32, HmmParseError> {
            if s == "*" {
                Ok(0.0)
            } else {
                s.parse::<f32>()
                    .map(|v| (-v).exp())
                    .map_err(|_| err(i3 + 1, format!("bad transition {s:?}")))
            }
        };
        let t = NodeTrans {
            mm: tv(t_toks[0])?,
            mi: tv(t_toks[1])?,
            md: tv(t_toks[2])?,
            im: tv(t_toks[3])?,
            ii: tv(t_toks[4])?,
            dm: tv(t_toks[5])?,
            dd: tv(t_toks[6])?,
        };
        nodes.push(Node { mat, ins, t });
        consensus.push(cons);
    }
    if nodes.len() != leng {
        return Err(err(
            hmm_line,
            format!("LENG {} but parsed {} nodes", leng, nodes.len()),
        ));
    }
    let model = CoreModel {
        name,
        nodes,
        consensus,
    };
    model
        .validate()
        .map_err(|e| err(hmm_line, format!("invalid model: {e}")))?;
    let stats = match (mu_msv, mu_vit, tau_fwd, lambda) {
        (Some(mu_msv), Some(mu_vit), Some(tau_fwd), Some(lambda)) => Some(Calibration {
            mu_msv,
            mu_vit,
            tau_fwd,
            lambda,
        }),
        _ => None,
    };
    Ok(HmmFile { model, stats })
}

/// Parse every model from a concatenated multi-model file (HMMER files
/// routinely hold whole Pfam releases back to back).
pub fn read_hmm_many(text: &str) -> Result<Vec<HmmFile>, HmmParseError> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let bytes = text.as_bytes();
    while start < text.len() {
        // Skip blank space between records.
        while start < text.len() && bytes[start].is_ascii_whitespace() {
            start += 1;
        }
        if start >= text.len() {
            break;
        }
        // A record runs to the line after its `//` terminator.
        let rest = &text[start..];
        let end_rel = rest
            .find("\n//")
            .map(|i| {
                // Include the terminator line.
                let after = start + i + 1;
                text[after..]
                    .find('\n')
                    .map(|j| after + j + 1)
                    .unwrap_or(text.len())
            })
            .ok_or_else(|| err(0, "record missing // terminator"))?;
        out.push(read_hmm(&text[start..end_rel])?);
        start = end_rel;
    }
    if out.is_empty() {
        return Err(err(1, "no models in file"));
    }
    Ok(out)
}

/// Serialize several models back to back.
pub fn write_hmm_many<'a>(
    models: impl IntoIterator<Item = (&'a CoreModel, Option<&'a Calibration>)>,
) -> String {
    let mut out = String::new();
    for (model, stats) in models {
        out.push_str(&write_hmm(model, stats));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{synthetic_model, BuildParams};

    fn max_prob_diff(a: &CoreModel, b: &CoreModel) -> f32 {
        let mut d = 0f32;
        for (na, nb) in a.nodes.iter().zip(&b.nodes) {
            for (x, y) in na.mat.iter().zip(&nb.mat) {
                d = d.max((x - y).abs());
            }
            for (x, y) in na.ins.iter().zip(&nb.ins) {
                d = d.max((x - y).abs());
            }
            d = d.max((na.t.mm - nb.t.mm).abs());
            d = d.max((na.t.dd - nb.t.dd).abs());
        }
        d
    }

    #[test]
    fn round_trip_preserves_model() {
        for m in [1usize, 7, 64] {
            let model = synthetic_model(m, 5, &BuildParams::default());
            let text = write_hmm(&model, None);
            let back = read_hmm(&text).unwrap();
            assert_eq!(back.model.name, model.name);
            assert_eq!(back.model.len(), m);
            assert_eq!(back.model.consensus, model.consensus);
            assert!(
                max_prob_diff(&model, &back.model) < 1e-4,
                "m={m}: prob drift too large"
            );
            assert!(back.stats.is_none());
        }
    }

    #[test]
    fn round_trip_preserves_stats() {
        let model = synthetic_model(10, 2, &BuildParams::default());
        let cal = Calibration {
            mu_msv: -2.5,
            mu_vit: -1.25,
            tau_fwd: 4.75,
            lambda: 1.0,
        };
        let text = write_hmm(&model, Some(&cal));
        let back = read_hmm(&text).unwrap();
        let s = back.stats.unwrap();
        assert!((s.mu_msv - cal.mu_msv).abs() < 1e-3);
        assert!((s.mu_vit - cal.mu_vit).abs() < 1e-3);
        assert!((s.tau_fwd - cal.tau_fwd).abs() < 1e-3);
        assert_eq!(s.lambda, 1.0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_hmm("").is_err());
        assert!(read_hmm("PDB file\n").is_err());
        let model = synthetic_model(5, 1, &BuildParams::default());
        let text = write_hmm(&model, None);
        // Truncate before the terminator.
        let cut = text.rfind("//").unwrap();
        assert!(read_hmm(&text[..cut]).is_err());
        // Corrupt LENG.
        let bad = text.replace("LENG  5", "LENG  9");
        assert!(read_hmm(&bad).is_err());
    }

    #[test]
    fn multi_model_round_trip() {
        let models: Vec<CoreModel> = (0..3)
            .map(|i| synthetic_model(10 + i * 7, i as u64, &BuildParams::default()))
            .collect();
        let text = write_hmm_many(models.iter().map(|m| (m, None)));
        let back = read_hmm_many(&text).unwrap();
        assert_eq!(back.len(), 3);
        for (orig, parsed) in models.iter().zip(&back) {
            assert_eq!(parsed.model.name, orig.name);
            assert_eq!(parsed.model.len(), orig.len());
            assert_eq!(parsed.model.consensus, orig.consensus);
        }
        // Errors still surface from any record.
        let broken = text.replace("LENG  10", "LENG  99");
        assert!(read_hmm_many(&broken).is_err());
        assert!(read_hmm_many("").is_err());
    }

    #[test]
    fn rejects_wrong_alphabet() {
        let model = synthetic_model(3, 1, &BuildParams::default());
        let text = write_hmm(&model, None).replace("ALPH  amino", "ALPH  dna");
        let e = read_hmm(&text).unwrap_err();
        assert!(e.msg.contains("alphabet"), "{e}");
    }

    #[test]
    fn scores_survive_round_trip() {
        // The derived quantized tables must be identical after a round
        // trip (probabilities agree to 5 decimals ⇒ identical u8/i16
        // quantization almost everywhere; assert exact table equality).
        use crate::background::NullModel;
        use crate::msvprofile::MsvProfile;
        use crate::profile::Profile;
        let model = synthetic_model(40, 9, &BuildParams::default());
        let back = read_hmm(&write_hmm(&model, None)).unwrap().model;
        let bg = NullModel::new();
        let a = MsvProfile::from_profile(&Profile::config(&model, &bg));
        let b = MsvProfile::from_profile(&Profile::config(&back, &bg));
        let mut diffs = 0usize;
        for code in 0..26u8 {
            for k0 in 0..40 {
                if a.cost(code, k0) != b.cost(code, k0) {
                    diffs += 1;
                }
            }
        }
        // Allow a handful of off-by-one roundings at cell boundaries.
        assert!(diffs <= 8, "{diffs} quantized cells drifted");
    }
}
