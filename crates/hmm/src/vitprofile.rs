//! The 16-bit quantized ViterbiFilter score system — HMMER's `P7_OPROFILE`
//! word-score part.
//!
//! The P7Viterbi filter (Fig. 3) scores with saturating signed 16-bit words
//! in 1/500-bit units (`scale = 500/ln2` per nat), offset
//! [`VitProfile::BASE`], with `-32768` standing in for −∞. Emission and
//! transition scores are signed and *added*; saturating adds reproduce SSE
//! `adds_epi16` semantics exactly, so the striped CPU filter and the
//! warp-synchronous GPU kernel are bit-identical.
//!
//! Transition tables are **destination-aligned**: index `k0 = k−1` holds the
//! scores *entering* state(s) of node `k`. That is the layout every DP inner
//! loop wants (a thread computing column `k` reads index `k0`), on CPU
//! stripes and GPU warps alike.
//!
//! Canonical recurrence (offset space, all adds saturating; `⊥ = −32768`;
//! `diag_*` are previous-row values at `k−1`, `old_*` previous-row values
//! at `k`):
//!
//! ```text
//! dpM/dpI/dpD[·] = ⊥;  xN = BASE;  xB = xN ⊕ move;  xJ = xC = ⊥
//! for each residue x (row i):
//!     xE = ⊥; cur_m = cur_d = ⊥           // values at k−1 of THIS row
//!     for k = 1..=M, k0 = k−1:
//!         m = max(xB ⊕ bmk_in[k0], diag_m ⊕ tmm_in[k0],
//!                 diag_i ⊕ tim_in[k0], diag_d ⊕ tdm_in[k0]) ⊕ emis[x][k0]
//!         i = max(old_m ⊕ tmi_self[k0], old_i ⊕ tii_self[k0])
//!         d = max(cur_m ⊕ tmd_in[k0], cur_d ⊕ tdd_in[k0])
//!         xE = max(xE, m)
//!     xJ = max(xJ ⊕ loop, xE ⊕ e_to_j)
//!     xC = max(xC ⊕ loop, xE ⊕ e_to_c)
//!     xN = xN ⊕ loop
//!     xB = max(xN, xJ) ⊕ move
//! score = (xC − BASE)/scale + move_nats
//! ```
//!
//! The striped and warp implementations compute `d` lazily (M→D seed in the
//! main pass, D→D closure via Lazy-F); their fixed point equals the exact
//! in-order `d` above.

use crate::alphabet::N_CODES;
use crate::profile::{Profile, NEG_INF};

/// −∞ sentinel of the 16-bit pipeline.
pub const W_NEG_INF: i16 = i16::MIN;

/// Length-dependent special-state scores, quantized to words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VitLenScores {
    /// `N/J/C` self-loop score (≤ 0).
    pub loop_w: i16,
    /// `N→B` / `J→B` move score, also the final `C→T` move.
    pub move_w: i16,
    /// `E→J` score (`ln ½` multihit).
    pub e_to_j: i16,
    /// `E→C` score.
    pub e_to_c: i16,
}

/// 16-bit Viterbi filter score tables for one profile (destination-aligned).
#[derive(Debug, Clone)]
pub struct VitProfile {
    /// Model length `M`.
    pub m: usize,
    /// 1/500-bit units per nat.
    pub scale: f32,
    /// Score offset representing 0 nats.
    pub base: i16,
    /// Emission scores, code-major: `rwv[code * m + k0]` (signed, added).
    rwv: Vec<i16>,
    /// `M_{k-1} → M_k`, at `k0 = k−1`; `k0 = 0` is −∞.
    pub tmm_in: Vec<i16>,
    /// `I_{k-1} → M_k`.
    pub tim_in: Vec<i16>,
    /// `D_{k-1} → M_k`.
    pub tdm_in: Vec<i16>,
    /// `M_{k-1} → D_k`.
    pub tmd_in: Vec<i16>,
    /// `D_{k-1} → D_k`.
    pub tdd_in: Vec<i16>,
    /// `M_k → I_k` (self node); `k0 = m−1` is −∞ (Plan-7 has no `I_M`).
    pub tmi_self: Vec<i16>,
    /// `I_k → I_k` self-loop; `k0 = m−1` is −∞.
    pub tii_self: Vec<i16>,
    /// Local entry `B → M_k`.
    pub bmk_in: Vec<i16>,
}

impl VitProfile {
    /// The fixed score offset (HMMER's `om->base_w`).
    pub const BASE: i16 = 12000;

    /// Build the 16-bit tables from a configured profile.
    pub fn from_profile(p: &Profile) -> VitProfile {
        let scale = 500.0 / std::f32::consts::LN_2;
        let m = p.m;
        let mut rwv = vec![W_NEG_INF; N_CODES * m];
        for code in 0..N_CODES {
            for k in 1..=m {
                rwv[code * m + (k - 1)] = wordify(scale, p.msc[k][code]);
            }
        }
        // Destination-aligned: entering node k means leaving node k-1, so
        // index k0 reads the profile's source arrays at k0 (= node k-1),
        // which are −∞ at 0 already.
        let dest = |v: &[f32]| -> Vec<i16> { (0..m).map(|k0| wordify(scale, v[k0])).collect() };
        // Self-node transitions at node k = k0+1.
        let selfn = |v: &[f32]| -> Vec<i16> {
            (0..m)
                .map(|k0| {
                    if k0 == m - 1 {
                        W_NEG_INF // no I_M
                    } else {
                        wordify(scale, v[k0 + 1])
                    }
                })
                .collect()
        };
        VitProfile {
            m,
            scale,
            base: Self::BASE,
            rwv,
            tmm_in: dest(&p.tmm),
            tim_in: dest(&p.tim),
            tdm_in: dest(&p.tdm),
            tmd_in: dest(&p.tmd),
            tdd_in: dest(&p.tdd),
            tmi_self: selfn(&p.tmi),
            tii_self: selfn(&p.tii),
            bmk_in: (0..m).map(|k0| wordify(scale, p.bmk[k0 + 1])).collect(),
        }
    }

    /// Emission score for residue `code` at model position `k0` (0-based).
    #[inline(always)]
    pub fn emis(&self, code: u8, k0: usize) -> i16 {
        self.rwv[code as usize * self.m + k0]
    }

    /// Full emission row for one residue code (`m` entries).
    #[inline]
    pub fn emis_row(&self, code: u8) -> &[i16] {
        &self.rwv[code as usize * self.m..(code as usize + 1) * self.m]
    }

    /// Quantized special scores for a target of length `len` (multihit local).
    pub fn len_scores(&self, len: usize) -> VitLenScores {
        let l = len as f32;
        VitLenScores {
            loop_w: wordify(self.scale, (l / (l + 3.0)).ln()),
            move_w: wordify(self.scale, (3.0 / (l + 3.0)).ln()),
            e_to_j: wordify(self.scale, 0.5f32.ln()),
            e_to_c: wordify(self.scale, 0.5f32.ln()),
        }
    }

    /// Convert a final `xC` word to nats (adds the final `C→T` move in
    /// float to avoid a second rounding). A saturated `xC` means the true
    /// score is off-scale high: +∞, unconditionally passing the filter —
    /// HMMER's `eslERANGE` convention.
    pub fn score_to_nats(&self, xc: i16, len: usize) -> f32 {
        if xc == W_NEG_INF {
            return NEG_INF;
        }
        if xc == i16::MAX {
            return f32::INFINITY;
        }
        let l = len as f32;
        (xc as f32 - self.base as f32) / self.scale + (3.0 / (l + 3.0)).ln()
    }

    /// Device-memory footprint of the word tables in bytes (used by the
    /// occupancy model: emissions + 8 transition/entry rows).
    pub fn table_bytes(&self) -> usize {
        (self.rwv.len() + 8 * self.m) * 2
    }
}

/// Saturating add with the SSE `adds_epi16` semantics the filters rely on.
#[inline(always)]
pub fn wadd(a: i16, b: i16) -> i16 {
    a.saturating_add(b)
}

/// Quantize a nat score to a word (HMMER's `wordify`).
pub fn wordify(scale: f32, sc: f32) -> i16 {
    if sc == NEG_INF || sc.is_nan() {
        return W_NEG_INF;
    }
    (scale * sc).round().clamp(-32767.0, 32767.0) as i16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::background::NullModel;
    use crate::build::{synthetic_model, BuildParams};

    fn vp(m: usize) -> (Profile, VitProfile) {
        let bg = NullModel::new();
        let core = synthetic_model(m, 23, &BuildParams::default());
        let p = Profile::config(&core, &bg);
        let om = VitProfile::from_profile(&p);
        (p, om)
    }

    #[test]
    fn wordify_rounds_and_floors() {
        let scale = 500.0 / std::f32::consts::LN_2;
        assert_eq!(wordify(scale, 0.0), 0);
        assert_eq!(wordify(scale, NEG_INF), W_NEG_INF);
        let one_nat = wordify(scale, 1.0);
        assert!((one_nat as f32 - scale).abs() <= 0.5);
    }

    #[test]
    fn emissions_match_profile_within_half_unit() {
        let (p, om) = vp(40);
        for code in 0..20u8 {
            for k in 1..=om.m {
                let exact = om.scale * p.msc[k][code as usize];
                let q = om.emis(code, k - 1) as f32;
                if exact.abs() < 32000.0 {
                    assert!((q - exact).abs() <= 0.5 + 1e-2);
                }
            }
        }
    }

    #[test]
    fn destination_alignment_boundaries() {
        let (p, om) = vp(40);
        // No transitions into node 1 from node 0.
        assert_eq!(om.tmm_in[0], W_NEG_INF);
        assert_eq!(om.tdd_in[0], W_NEG_INF);
        // tmm_in[k0] quantizes p.tmm[k0] (leaving node k0 = k-1).
        assert_eq!(om.tmm_in[5], wordify(om.scale, p.tmm[5]));
        // No I_M: self transitions at the last node are disabled.
        assert_eq!(om.tmi_self[om.m - 1], W_NEG_INF);
        assert_eq!(om.tii_self[om.m - 1], W_NEG_INF);
        // Interior self transitions quantize node k = k0+1.
        assert_eq!(om.tmi_self[3], wordify(om.scale, p.tmi[4]));
        // Entry into node k quantizes bmk[k].
        assert_eq!(om.bmk_in[0], wordify(om.scale, p.bmk[1]));
    }

    #[test]
    fn transitions_are_nonpositive() {
        let (_, om) = vp(40);
        for k0 in 1..om.m {
            assert!(om.tmm_in[k0] <= 0);
            assert!(om.tdd_in[k0] <= 0);
        }
        for k0 in 0..om.m {
            assert!(om.bmk_in[k0] <= 0);
        }
    }

    #[test]
    fn wadd_saturates() {
        assert_eq!(wadd(32000, 32000), i16::MAX);
        assert_eq!(wadd(W_NEG_INF, -100), W_NEG_INF);
        // Known (accepted) leak of the SSE semantics: -inf plus a positive
        // score rises slightly off the floor, exactly as `adds_epi16` does.
        assert_eq!(wadd(W_NEG_INF, 500), -32268);
    }

    #[test]
    fn len_scores_shrink_with_length() {
        let (_, om) = vp(20);
        let short = om.len_scores(50);
        let long = om.len_scores(5000);
        assert!(long.loop_w > short.loop_w); // closer to 0
        assert!(long.move_w < short.move_w);
        assert_eq!(short.e_to_j, wordify(om.scale, 0.5f32.ln()));
    }

    #[test]
    fn score_to_nats_handles_neg_inf() {
        let (_, om) = vp(20);
        assert_eq!(om.score_to_nats(W_NEG_INF, 100), NEG_INF);
        let s = om.score_to_nats(om.base, 100);
        assert!((s - (3.0f32 / 103.0).ln()).abs() < 1e-5);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn emis_row_matches_emis() {
        let (_, om) = vp(17);
        let row = om.emis_row(3);
        for k0 in 0..17 {
            assert_eq!(row[k0], om.emis(3, k0));
        }
    }

    #[test]
    fn table_bytes_counts_emissions_and_transitions() {
        let (_, om) = vp(10);
        assert_eq!(om.table_bytes(), (N_CODES * 10 + 80) * 2);
    }
}
