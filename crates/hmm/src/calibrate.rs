//! Score-distribution calibration and P-values — HMMER's `p7_Calibrate`.
//!
//! HMMER 3.0's key statistical result (Eddy 2008, cited as \[3\] in the paper)
//! is that optimal-alignment (Viterbi/MSV) score maxima follow a Gumbel
//! distribution with a *known* slope `λ = log 2` **per bit** — i.e. 1.0
//! per nat, the unit used throughout this workspace — and Forward scores
//! follow an exponential tail with the same `λ`. Only the location parameter
//! (`μ` for Gumbel, `τ` for the exponential tail) must be determined per
//! model, by scoring a small sample of random background sequences.
//!
//! This module is scorer-agnostic: it fits locations from score samples
//! produced by any scoring closure, so the CPU reference, the striped
//! filters and the GPU kernels can all be calibrated identically.

use crate::alphabet::{Residue, BACKGROUND_F};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The universal score slope: `λ = log 2` per bit = `1.0` per nat.
/// (A score one bit above the location halves the P-value; scores here are
/// in nats, so the slope per nat is `ln2 / ln2 = 1`.)
pub const LAMBDA: f32 = 1.0;

/// Euler–Mascheroni constant (kept for reference; the mean of a standard
/// Gumbel is γ/λ above its location).
pub const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// Default number of random sequences per calibration fit (HMMER uses 200
/// for the Gumbel fits; we use more because the exponential tail fit keeps
/// only the top few percent of the sample).
pub const DEFAULT_N: usize = 500;

/// Default random-sequence length for calibration (HMMER uses 100).
pub const DEFAULT_LEN: usize = 100;

/// Fitted score-distribution locations for one model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Gumbel location of MSV filter scores.
    pub mu_msv: f32,
    /// Gumbel location of Viterbi filter scores.
    pub mu_vit: f32,
    /// Exponential-tail location of Forward scores.
    pub tau_fwd: f32,
    /// Shared slope (`log 2` per bit = 1.0 per nat).
    pub lambda: f32,
}

/// Draw a random background sequence of length `len` (i.i.d. Swiss-Prot
/// composition) — HMMER's synthetic calibration targets.
pub fn random_seq(rng: &mut StdRng, len: usize) -> Vec<Residue> {
    (0..len)
        .map(|_| {
            let mut u: f32 = rng.gen();
            for (x, &f) in BACKGROUND_F.iter().enumerate() {
                if u < f {
                    return x as Residue;
                }
                u -= f;
            }
            19
        })
        .collect()
}

/// Maximum-likelihood Gumbel location fit with fixed slope (HMMER's
/// `esl_gumbel_FitCompleteLoc`): `μ = −(1/λ)·ln( (1/n) Σ e^{−λ s_i} )`,
/// computed stably. Unlike the method of moments, this weights the
/// high-scoring tail correctly when the empirical slope deviates from the
/// conjectured `λ = ln 2`.
pub fn fit_gumbel_mu(scores: &[f32], lambda: f32) -> f32 {
    assert!(!scores.is_empty(), "cannot fit an empty sample");
    let l = lambda as f64;
    let min = scores.iter().cloned().fold(f32::INFINITY, f32::min) as f64;
    let sum: f64 = scores.iter().map(|&s| (-l * (s as f64 - min)).exp()).sum();
    (min - (sum / scores.len() as f64).ln() / l) as f32
}

/// Exponential-tail location fit with fixed slope (HMMER fits the top
/// `tail_p` fraction): `τ = q_{1−tail_p} + ln(tail_p)/λ`.
pub fn fit_exp_tail_tau(scores: &[f32], lambda: f32, tail_p: f32) -> f32 {
    assert!(!scores.is_empty(), "cannot fit an empty sample");
    assert!(tail_p > 0.0 && tail_p < 1.0);
    let mut sorted: Vec<f32> = scores.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((1.0 - tail_p) * (sorted.len() as f32 - 1.0)).round() as usize;
    sorted[idx] + tail_p.ln() / lambda
}

/// P-value of a score under a Gumbel with location `mu`, slope `lambda`:
/// `P(S > s) = 1 − exp(−e^{−λ(s−μ)})`, computed stably.
pub fn gumbel_pvalue(score: f32, mu: f32, lambda: f32) -> f64 {
    let x = -(lambda as f64) * (score as f64 - mu as f64);
    -f64::exp_m1(-x.exp())
}

/// P-value of a score under an exponential tail with location `tau`:
/// `P(S > s) = min(1, e^{−λ(s−τ)})`.
pub fn exp_pvalue(score: f32, tau: f32, lambda: f32) -> f64 {
    let x = (lambda as f64) * (score as f64 - tau as f64);
    (-x).exp().min(1.0)
}

/// Fit a Gumbel location for one extra scoring function over the same
/// deterministic `(seed, n, len)` random-sequence stream [`calibrate`]
/// draws — for optional filter stages (e.g. an SSV pre-filter) calibrated
/// outside the three-stage fit.
pub fn calibrate_gumbel_mu<F>(seed: u64, n: usize, len: usize, mut score: F) -> f32
where
    F: FnMut(&[Residue]) -> f32,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let scores: Vec<f32> = (0..n)
        .map(|_| {
            let seq = random_seq(&mut rng, len);
            score(&seq)
        })
        .collect();
    fit_gumbel_mu(&scores, LAMBDA)
}

/// Calibrate all three stages of the pipeline from scoring closures.
///
/// Each closure scores one digital sequence in nats. `n` random sequences
/// of length `len` are drawn deterministically from `seed`.
pub fn calibrate<FM, FV, FF>(
    seed: u64,
    n: usize,
    len: usize,
    mut msv: FM,
    mut vit: FV,
    mut fwd: FF,
) -> Calibration
where
    FM: FnMut(&[Residue]) -> f32,
    FV: FnMut(&[Residue]) -> f32,
    FF: FnMut(&[Residue]) -> f32,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ms = Vec::with_capacity(n);
    let mut vs = Vec::with_capacity(n);
    let mut fs = Vec::with_capacity(n);
    for _ in 0..n {
        let seq = random_seq(&mut rng, len);
        ms.push(msv(&seq));
        vs.push(vit(&seq));
        fs.push(fwd(&seq));
    }
    Calibration {
        mu_msv: fit_gumbel_mu(&ms, LAMBDA),
        mu_vit: fit_gumbel_mu(&vs, LAMBDA),
        tau_fwd: fit_exp_tail_tau(&fs, LAMBDA, 0.04),
        lambda: LAMBDA,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gumbel_sample(n: usize, mu: f64, lambda: f64, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen_range(1e-12..1.0);
                (mu - (-u.ln()).ln() / lambda) as f32
            })
            .collect()
    }

    #[test]
    fn gumbel_fit_recovers_mu() {
        let sample = gumbel_sample(20_000, 4.2, LAMBDA as f64, 1);
        let mu = fit_gumbel_mu(&sample, LAMBDA);
        assert!((mu - 4.2).abs() < 0.1, "fit {mu}");
    }

    #[test]
    fn exp_tail_fit_recovers_tau() {
        // Pure exponential beyond tau = 2.0 with mass tail_p at tau.
        let mut rng = StdRng::seed_from_u64(2);
        let lambda = LAMBDA as f64;
        let sample: Vec<f32> = (0..50_000)
            .map(|_| {
                let u: f64 = rng.gen_range(1e-12..1.0);
                if u < 0.96 {
                    (2.0 * u / 0.96) as f32 // bulk below tau
                } else {
                    (2.0 - ((1.0 - u) / 0.04).ln() / lambda) as f32
                }
            })
            .collect();
        // The true tail is P(S>s) = 0.04·e^{−λ(s−2)} = e^{−λ(s−τ*)} with
        // τ* = 2 + ln(0.04)/λ.
        let tau_true = 2.0 + 0.04f32.ln() / LAMBDA;
        let tau = fit_exp_tail_tau(&sample, LAMBDA, 0.04);
        assert!((tau - tau_true).abs() < 0.15, "fit {tau}, true {tau_true}");
    }

    #[test]
    fn gumbel_pvalue_properties() {
        let p_at_mu = gumbel_pvalue(5.0, 5.0, LAMBDA);
        assert!((p_at_mu - (1.0 - 1.0 / std::f64::consts::E)).abs() < 1e-9);
        assert!(gumbel_pvalue(50.0, 5.0, LAMBDA) < 1e-9);
        assert!(gumbel_pvalue(-50.0, 5.0, LAMBDA) > 0.999_999);
        // Monotone decreasing in score.
        assert!(gumbel_pvalue(6.0, 5.0, LAMBDA) > gumbel_pvalue(7.0, 5.0, LAMBDA));
    }

    #[test]
    fn exp_pvalue_properties() {
        assert_eq!(exp_pvalue(-3.0, 0.0, LAMBDA), 1.0);
        // One *bit* above the location halves the P-value.
        let one_bit = std::f32::consts::LN_2;
        assert!((exp_pvalue(one_bit, 0.0, LAMBDA) - 0.5).abs() < 1e-6);
        assert!(exp_pvalue(30.0, 0.0, LAMBDA) < 1e-12);
    }

    #[test]
    fn high_scoring_tails_agree() {
        // The paper's §I: Gumbel and exponential with the same λ share their
        // high-scoring tail: for s ≫ μ=τ, Gumbel P ≈ e^{-λ(s-μ)}.
        for s in [10.0f32, 15.0, 20.0] {
            let g = gumbel_pvalue(s, 0.0, LAMBDA);
            let e = exp_pvalue(s, 0.0, LAMBDA);
            assert!((g / e - 1.0).abs() < 1e-2, "s={s}: {g} vs {e}");
        }
    }

    #[test]
    fn random_seq_deterministic_and_standard() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let sa = random_seq(&mut a, 500);
        let sb = random_seq(&mut b, 500);
        assert_eq!(sa, sb);
        assert!(sa.iter().all(|&r| (r as usize) < 20));
    }

    #[test]
    fn calibrate_wires_all_three() {
        let cal = calibrate(3, 50, 60, |s| s.len() as f32, |_| 1.0, |_| 0.5);
        // Constant samples: the ML location fit returns the constant.
        assert!((cal.mu_msv - 60.0).abs() < 1e-3);
        assert!((cal.mu_vit - 1.0).abs() < 1e-3);
        assert!(cal.tau_fwd < 0.5 + 1e-6);
    }
}
