//! Log-space arithmetic shared by every Forward implementation.
//!
//! HMMER's `p7_FLogsum`: `ln(e^a + e^b)` through a lookup table of
//! `ln(1+e^{-d})` at 1/160-nat resolution — an order of magnitude faster
//! than the transcendental path at ≈ 3 × 10⁻³ nats error per call. Both
//! the CPU Forward and the warp-synchronous Forward kernel use *this*
//! table, so their per-call rounding is identical and only summation
//! order distinguishes them.

use crate::profile::NEG_INF;

/// Exact, numerically stable `ln(e^a + e^b)`.
#[inline]
pub fn logsum_exact(a: f32, b: f32) -> f32 {
    if a == NEG_INF {
        b
    } else if b == NEG_INF {
        a
    } else if a >= b {
        a + (b - a).exp().ln_1p()
    } else {
        b + (a - b).exp().ln_1p()
    }
}

/// Table resolution (HMMER's `p7_LOGSUM_SCALE` is 1/0.00625 per nat).
pub const FLOGSUM_STEP: f32 = 0.00625;
/// Table span: `ln(1+e^{-x})` is below f32 noise beyond ≈ 15.7 nats.
pub const FLOGSUM_MAX: f32 = 15.7;
const FLOGSUM_N: usize = (FLOGSUM_MAX / FLOGSUM_STEP) as usize + 1;

fn table() -> &'static [f32; FLOGSUM_N] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Box<[f32; FLOGSUM_N]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = Box::new([0.0f32; FLOGSUM_N]);
        for (i, v) in t.iter_mut().enumerate() {
            *v = (-(i as f32) * FLOGSUM_STEP).exp().ln_1p();
        }
        t
    })
}

/// Table-driven `ln(e^a + e^b)` — HMMER's `p7_FLogsum`.
#[inline]
pub fn flogsum(a: f32, b: f32) -> f32 {
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    if lo == NEG_INF {
        return hi;
    }
    let d = hi - lo;
    if d >= FLOGSUM_MAX {
        hi
    } else {
        hi + table()[(d / FLOGSUM_STEP) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flogsum_tracks_exact() {
        for (a, b) in [
            (0.0f32, 0.0f32),
            (3.3, -2.1),
            (-8.0, -8.5),
            (12.0, 0.0),
            (100.0, 99.0),
            (-1000.0, -1000.1),
        ] {
            let e = logsum_exact(a, b);
            let f = flogsum(a, b);
            assert!((e - f).abs() < 4e-3, "{a},{b}: exact {e} table {f}");
        }
        assert_eq!(flogsum(NEG_INF, NEG_INF), NEG_INF);
        assert_eq!(flogsum(NEG_INF, 5.0), 5.0);
        assert_eq!(flogsum(5.0, NEG_INF), 5.0);
    }

    #[test]
    fn flogsum_commutative_and_dominant() {
        assert_eq!(flogsum(2.0, 7.0), flogsum(7.0, 2.0));
        // Far-apart operands: the big one wins outright.
        assert_eq!(flogsum(0.0, -20.0), 0.0);
    }
}
