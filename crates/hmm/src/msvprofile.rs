//! The 8-bit quantized MSV score system — HMMER's `P7_OPROFILE` MSV part.
//!
//! The MSV filter (Fig. 2) scores with saturating unsigned bytes in
//! "third-bit" units: `scale = 3/ln2` per nat, offset [`MsvProfile::BASE`].
//! Emission scores are stored *biased*: `rbv = clamp(bias − round(scale·msc))`
//! so the DP adds `bias` then subtracts `rbv`, which nets `+round(scale·msc)`
//! with a saturation floor at 0 standing in for −∞.
//!
//! Every MSV implementation in this workspace — the scalar quantized
//! reference, the striped 16-lane CPU filter and the warp-synchronous GPU
//! kernel — consumes this table and MUST produce bit-identical `xJ` values;
//! the canonical recurrence is documented on [`MsvProfile`].

use crate::profile::Profile;

/// Length-dependent special-transition costs of the MSV filter, quantized
/// to bytes (costs are *subtracted* with saturation at 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsvLenCosts {
    /// `N/J→B` move cost plus the flat `B→Mk` entry cost, combined
    /// (HMMER's `tjbmv`): subtracted when refreshing `xB`.
    pub tjbm: u8,
    /// `E→J` cost (= −round(scale·ln ½) = 3 third-bits).
    pub tec: u8,
}

/// 8-bit MSV score tables for one profile.
///
/// Canonical filter recurrence (offset space; all ops saturating u8):
///
/// ```text
/// xJ = 0;  dp[k] = 0 for all k;  xB = BASE ⊖ tjbm
/// for each residue x (row i):
///     xE = 0
///     for k = 1..=M:
///         sv    = max(dp[k-1] (prev row), xB)   // diagonal dependency
///         sv    = sv ⊕ bias ⊖ rbv[x][k]
///         xE    = max(xE, sv)
///         dp[k] = sv                            // in-place row update
///     if xE ≥ 255 − bias: overflow ⇒ score = +∞ (sequence passes filter)
///     xJ = max(xJ, xE ⊖ tec)
///     xB = max(BASE, xJ) ⊖ tjbm
/// return xJ
/// ```
///
/// where `⊕`/`⊖` are saturating add/sub and `dp[0]` is 0 (−∞).
#[derive(Debug, Clone)]
pub struct MsvProfile {
    /// Model length `M`.
    pub m: usize,
    /// Third-bits per nat.
    pub scale: f32,
    /// Score offset representing 0 nats.
    pub base: u8,
    /// Emission bias (the largest positive emission, in third-bits).
    pub bias: u8,
    /// Biased emission costs, code-major: `rbv[code * m + (k-1)]`.
    rbv: Vec<u8>,
}

impl MsvProfile {
    /// The fixed score offset (HMMER's `om->base_b`).
    pub const BASE: u8 = 190;

    /// Build the 8-bit MSV tables from a configured profile.
    pub fn from_profile(p: &Profile) -> MsvProfile {
        let scale = 3.0 / std::f32::consts::LN_2;
        let bias = unbiased_cost(scale, -p.max_msc.max(0.0));
        let m = p.m;
        let mut rbv = vec![0u8; crate::alphabet::N_CODES * m];
        for code in 0..crate::alphabet::N_CODES {
            for k in 1..=m {
                let sc = p.msc[k][code];
                rbv[code * m + (k - 1)] = biased_cost(scale, bias, sc);
            }
        }
        MsvProfile {
            m,
            scale,
            base: Self::BASE,
            bias,
            rbv,
        }
    }

    /// Biased emission cost for residue `code` at model position `k0`
    /// (0-based, i.e. node `k0+1`).
    #[inline(always)]
    pub fn cost(&self, code: u8, k0: usize) -> u8 {
        self.rbv[code as usize * self.m + k0]
    }

    /// Full cost row for one residue code (`m` entries).
    #[inline]
    pub fn cost_row(&self, code: u8) -> &[u8] {
        &self.rbv[code as usize * self.m..(code as usize + 1) * self.m]
    }

    /// Quantized special costs for a target of length `len`.
    ///
    /// `tjbm` combines the `N/J→B` move (`ln(3/(L+3))`) with the flat MSV
    /// entry `ln(2/(M(M+1)))`; `tec` is the `E→J`/`E→C` cost (`ln ½`).
    pub fn len_costs(&self, len: usize) -> MsvLenCosts {
        let l = len as f32;
        let tjb = -self.scale * (3.0 / (l + 3.0)).ln();
        let tbm = -self.scale * (2.0 / ((self.m as f32) * (self.m as f32 + 1.0))).ln();
        MsvLenCosts {
            tjbm: sat_u8(tjb.round() + tbm.round()),
            tec: sat_u8((self.scale * std::f32::consts::LN_2).round()),
        }
    }

    /// Overflow threshold: an `xE` at or above this means the biased byte
    /// pipeline saturated and the true score is off-scale high.
    #[inline]
    pub fn overflow_limit(&self) -> u8 {
        255 - self.bias
    }

    /// Convert a final filter `xJ` byte to nats.
    ///
    /// The filter runs in the *free-loop* approximation (N/C/J self-loops
    /// cost 0, exactly as HMMER's MSVFilter); the returned score is
    /// `(xJ − base)/scale` plus the final `C→T` move. Comparable to the
    /// free-loop float reference, and to the full-model reference after
    /// its `≈ −3 nat` loop correction (HMMER applies the same constant).
    pub fn score_to_nats(&self, xj: u8, len: usize) -> f32 {
        let l = len as f32;
        (xj as f32 - self.base as f32) / self.scale + (3.0 / (l + 3.0)).ln()
    }

    /// Score reported for an overflowed filter pass (+∞ ⇒ always passes).
    pub fn overflow_score() -> f32 {
        f32::INFINITY
    }

    /// Convert a final **SSV** `xmax` byte to nats (single-hit variant:
    /// one `E→C` plus the final move, free-loop approximation). Lives
    /// beside [`MsvProfile::score_to_nats`] because SSV shares this exact
    /// byte pipeline.
    pub fn ssv_score_to_nats(&self, xmax: u8, len: usize) -> f32 {
        let l = len as f32;
        (xmax as f32 - self.base as f32) / self.scale + 0.5f32.ln() + (3.0 / (l + 3.0)).ln()
    }
}

/// Quantize a non-positive nat score to an unsigned byte *cost*
/// (HMMER's `unbiased_byteify`).
fn unbiased_cost(scale: f32, sc: f32) -> u8 {
    sat_u8((-scale * sc).round())
}

/// Quantize a nat score to a *biased* byte cost (HMMER's `biased_byteify`):
/// `bias − round(scale·sc)`, saturated to `0..=255`.
fn biased_cost(scale: f32, bias: u8, sc: f32) -> u8 {
    if sc == f32::NEG_INFINITY {
        return 255;
    }
    sat_u8(bias as f32 - (scale * sc).round())
}

fn sat_u8(v: f32) -> u8 {
    if v.is_nan() {
        255
    } else {
        v.clamp(0.0, 255.0) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::background::NullModel;
    use crate::build::{synthetic_model, BuildParams};

    fn msv(m: usize) -> (Profile, MsvProfile) {
        let bg = NullModel::new();
        let core = synthetic_model(m, 11, &BuildParams::default());
        let p = Profile::config(&core, &bg);
        let om = MsvProfile::from_profile(&p);
        (p, om)
    }

    #[test]
    fn bias_covers_best_emission() {
        let (p, om) = msv(80);
        // The consensus emission must quantize to a net *gain*:
        // bias - rbv = round(scale*msc) > 0 somewhere.
        let mut best_gain = 0i32;
        for code in 0..20u8 {
            for k0 in 0..om.m {
                best_gain = best_gain.max(om.bias as i32 - om.cost(code, k0) as i32);
            }
        }
        let expect = (om.scale * p.max_msc).round() as i32;
        assert_eq!(best_gain, expect.min(om.bias as i32));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn quantization_error_bounded() {
        let (p, om) = msv(60);
        for code in 0..20u8 {
            for k in 1..=om.m {
                let sc = p.msc[k][code as usize];
                let q = om.bias as f32 - om.cost(code, k - 1) as f32; // round(scale*sc), unless clamped
                let exact = om.scale * sc;
                if exact > -(om.cost(code, k - 1) as f32) && om.cost(code, k - 1) < 255 {
                    assert!(
                        (q - exact).abs() <= 0.5 + 1e-3,
                        "code {code} k {k}: q {q} exact {exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn neg_inf_maps_to_max_cost() {
        let (_, om) = msv(10);
        // Gap codes score -inf.
        assert_eq!(om.cost(27, 0), 255);
    }

    #[test]
    fn tec_is_three_thirdbits() {
        let (_, om) = msv(10);
        assert_eq!(om.len_costs(100).tec, 3);
    }

    #[test]
    fn tjbm_grows_with_model_size() {
        let (_, small) = msv(10);
        let (_, large) = msv(500);
        assert!(large.len_costs(100).tjbm > small.len_costs(100).tjbm);
    }

    #[test]
    fn score_round_trip_near_linear() {
        let (_, om) = msv(10);
        let s1 = om.score_to_nats(200, 100);
        let s2 = om.score_to_nats(210, 100);
        let per_byte = 1.0 / om.scale;
        assert!(((s2 - s1) - 10.0 * per_byte).abs() < 1e-4);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn cost_row_matches_cost() {
        let (_, om) = msv(33);
        let row = om.cost_row(5);
        assert_eq!(row.len(), 33);
        for k0 in 0..33 {
            assert_eq!(row[k0], om.cost(5, k0));
        }
    }
}
