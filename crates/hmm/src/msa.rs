//! Multiple sequence alignments and `hmmbuild`-style model construction.
//!
//! HMMER builds its profile HMMs from MSAs; the paper's query models are
//! Pfam families, which are exactly that. This module provides the
//! construction path a downstream user of this crate needs to search with
//! *their own* family: parse an aligned FASTA, assign match columns by
//! gap-majority (HMMER's `--fast` rule), collect weighted counts with
//! background pseudocounts, and emit a [`CoreModel`].

use crate::alphabet::{digitize, is_gap, is_standard, symbol, Residue, BACKGROUND_F, N_STANDARD};
use crate::plan7::{CoreModel, Node, NodeTrans};

/// One aligned row set (sequences padded with gap symbols to equal width).
#[derive(Debug, Clone)]
pub struct Msa {
    /// Sequence names.
    pub names: Vec<String>,
    /// Aligned rows: residue codes with gap codes (`-`, `.` → 26) allowed.
    pub rows: Vec<Vec<Residue>>,
    /// Alignment width.
    pub width: usize,
}

/// MSA parse/validation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum MsaError {
    /// Two rows of different lengths.
    RaggedRows {
        name: String,
        expected: usize,
        got: usize,
    },
    /// A character that is neither a residue nor a gap.
    BadChar { name: String, ch: char },
    /// The alignment has no rows or no columns.
    Empty,
    /// No column qualified as a match column.
    NoMatchColumns,
}

impl std::fmt::Display for MsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsaError::RaggedRows {
                name,
                expected,
                got,
            } => write!(f, "row {name:?}: width {got}, expected {expected}"),
            MsaError::BadChar { name, ch } => write!(f, "row {name:?}: bad character {ch:?}"),
            MsaError::Empty => write!(f, "empty alignment"),
            MsaError::NoMatchColumns => write!(f, "no column has ≥ 50% residues"),
        }
    }
}

impl std::error::Error for MsaError {}

impl Msa {
    /// Parse an aligned FASTA (rows must share one width; `-` and `.` are
    /// gaps; case-insensitive residues).
    pub fn parse_afa(text: &str) -> Result<Msa, MsaError> {
        let mut names = Vec::new();
        let mut rows: Vec<Vec<Residue>> = Vec::new();
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(h) = line.strip_prefix('>') {
                names.push(h.split_whitespace().next().unwrap_or("").to_string());
                rows.push(Vec::new());
            } else if let Some(row) = rows.last_mut() {
                let name = names.last().cloned().unwrap_or_default();
                for ch in line.chars() {
                    if ch.is_whitespace() {
                        continue;
                    }
                    let code = digitize(ch).map_err(|_| MsaError::BadChar {
                        name: name.clone(),
                        ch,
                    })?;
                    row.push(code);
                }
            }
        }
        if rows.is_empty() || rows[0].is_empty() {
            return Err(MsaError::Empty);
        }
        let width = rows[0].len();
        for (name, row) in names.iter().zip(&rows) {
            if row.len() != width {
                return Err(MsaError::RaggedRows {
                    name: name.clone(),
                    expected: width,
                    got: row.len(),
                });
            }
        }
        Ok(Msa { names, rows, width })
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Fraction of gap characters in column `c`.
    pub fn gap_fraction(&self, c: usize) -> f64 {
        let gaps = self.rows.iter().filter(|r| is_gap(r[c])).count();
        gaps as f64 / self.rows.len() as f64
    }

    /// Render back to aligned FASTA.
    pub fn render_afa(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, row) in self.names.iter().zip(&self.rows) {
            let _ = writeln!(out, ">{name}");
            for chunk in row.chunks(60) {
                for &r in chunk {
                    out.push(symbol(r).expect("valid code"));
                }
                out.push('\n');
            }
        }
        out
    }
}

/// Model-construction tunables (HMMER-flavoured defaults).
#[derive(Debug, Clone)]
pub struct MsaBuildParams {
    /// A column is a match column when its gap fraction is below this
    /// (HMMER `--fast` uses 0.5).
    pub match_threshold: f64,
    /// Total pseudocount mass added to each match-emission distribution,
    /// spread background-proportionally.
    pub emission_pseudocount: f32,
    /// Pseudocount added to every transition count.
    pub transition_pseudocount: f32,
    /// Henikoff position-based sequence weighting (HMMER's default `--wpb`):
    /// redundant rows share weight so a lopsided alignment doesn't dominate
    /// the counts. Off = uniform weights.
    pub position_based_weights: bool,
    /// Entropy weighting (HMMER's `--eent`): scale the total observed
    /// counts down until the model's mean per-column relative entropy hits
    /// this target in bits — large alignments otherwise produce
    /// over-specific models. `None` disables.
    pub entropy_target_bits: Option<f32>,
}

impl Default for MsaBuildParams {
    fn default() -> Self {
        MsaBuildParams {
            match_threshold: 0.5,
            emission_pseudocount: 2.0,
            transition_pseudocount: 0.4,
            position_based_weights: true,
            entropy_target_bits: Some(1.4),
        }
    }
}

/// Henikoff & Henikoff (1994) position-based sequence weights, normalized
/// to mean 1 (so total counts keep the scale of the row count).
///
/// Per column: each distinct residue type shares `1/r` of the column's
/// weight equally among the `s` rows carrying it (`1/(r·s)` per row);
/// gap rows get nothing. Row weights sum the column shares.
pub fn henikoff_weights(msa: &Msa) -> Vec<f32> {
    let n = msa.rows.len();
    let mut w = vec![0f64; n];
    for c in 0..msa.width {
        // Count rows per residue type in this column.
        let mut per_type = [0u32; 32];
        for row in &msa.rows {
            let r = row[c];
            if !is_gap(r) {
                per_type[r as usize] += 1;
            }
        }
        let r_types = per_type.iter().filter(|&&k| k > 0).count();
        if r_types == 0 {
            continue;
        }
        for (i, row) in msa.rows.iter().enumerate() {
            let x = row[c];
            if !is_gap(x) {
                w[i] += 1.0 / (r_types as f64 * per_type[x as usize] as f64);
            }
        }
    }
    let total: f64 = w.iter().sum();
    if total <= 0.0 {
        return vec![1.0; n];
    }
    let scale = n as f64 / total;
    w.into_iter().map(|v| (v * scale) as f32).collect()
}

/// Find the count-scale (≤ 1) at which the built model's mean per-column
/// relative entropy reaches `target` bits (HMMER's entropy weighting,
/// binary search as in `p7_EntropyWeight`). Returns 1.0 when even the
/// full counts sit at or below the target.
fn entropy_weight_scale(
    msa: &Msa,
    kinds: &[Col],
    weights: &[f32],
    params: &MsaBuildParams,
    target: f32,
) -> f32 {
    let bg = crate::background::NullModel::new();
    let mean_re = |scale: f32| -> f32 {
        // Emission-only rebuild at this scale (transitions don't affect RE).
        let mut totals = 0f32;
        let mut n_cols = 0usize;
        let mut node = vec![[0f32; N_STANDARD]; kinds.iter().filter(|&&k| k == Col::Match).count()];
        for (row, &w) in msa.rows.iter().zip(weights) {
            let mut ni = 0usize;
            for (c, &kind) in kinds.iter().enumerate() {
                if kind != Col::Match {
                    continue;
                }
                let r = row[c];
                if !is_gap(r) && is_standard(r) {
                    node[ni][r as usize] += w * scale;
                }
                ni += 1;
            }
        }
        for counts in &node {
            let total: f32 = counts.iter().sum::<f32>() + params.emission_pseudocount;
            let mut re = 0f32;
            for x in 0..N_STANDARD {
                let p = (counts[x] + params.emission_pseudocount * BACKGROUND_F[x]) / total;
                if p > 0.0 {
                    re += p * (p / bg.f[x].max(1e-9)).log2();
                }
            }
            totals += re.max(0.0);
            n_cols += 1;
        }
        if n_cols == 0 {
            0.0
        } else {
            totals / n_cols as f32
        }
    };
    if mean_re(1.0) <= target {
        return 1.0;
    }
    let (mut lo, mut hi) = (1e-3f32, 1.0f32);
    for _ in 0..25 {
        let mid = 0.5 * (lo + hi);
        if mean_re(mid) > target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Per-row state path element over the match-column skeleton.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Col {
    Match,
    Insert,
}

/// Build a core model from an alignment (`hmmbuild`-style).
pub fn build_from_msa(
    msa: &Msa,
    name: &str,
    params: &MsaBuildParams,
) -> Result<CoreModel, MsaError> {
    if msa.rows.is_empty() {
        return Err(MsaError::Empty);
    }
    // 1. Match-column assignment by gap majority.
    let kinds: Vec<Col> = (0..msa.width)
        .map(|c| {
            if msa.gap_fraction(c) < params.match_threshold {
                Col::Match
            } else {
                Col::Insert
            }
        })
        .collect();
    let match_cols: Vec<usize> = kinds
        .iter()
        .enumerate()
        .filter(|(_, &k)| k == Col::Match)
        .map(|(c, _)| c)
        .collect();
    let m = match_cols.len();
    if m == 0 {
        return Err(MsaError::NoMatchColumns);
    }

    // 2. Emission counts.
    let mut mat_counts = vec![[0f32; N_STANDARD]; m];
    let mut ins_counts = vec![[0f32; N_STANDARD]; m];
    // 3. Transition counts per node (from node k to k+1; node index 0-based).
    #[derive(Clone, Copy, Default)]
    struct TCounts {
        mm: f32,
        mi: f32,
        md: f32,
        im: f32,
        ii: f32,
        dm: f32,
        dd: f32,
    }
    let mut t_counts = vec![TCounts::default(); m];

    let mut weights = if params.position_based_weights {
        henikoff_weights(msa)
    } else {
        vec![1.0; msa.rows.len()]
    };
    if let Some(target) = params.entropy_target_bits {
        let scale = entropy_weight_scale(msa, &kinds, &weights, params, target);
        for w in &mut weights {
            *w *= scale;
        }
    }
    for (row, &w) in msa.rows.iter().zip(&weights) {
        // Walk the row as a state path: at each match column the row is in
        // M (residue) or D (gap); insert-column residues attach to the
        // preceding node's I state.
        #[derive(Clone, Copy, PartialEq)]
        enum St {
            M,
            I,
            D,
            Begin,
        }
        let mut node = 0usize; // next match node to consume (0-based)
        let mut state = St::Begin;
        for (c, &kind) in kinds.iter().enumerate() {
            let r = row[c];
            match kind {
                Col::Match => {
                    let next = if is_gap(r) { St::D } else { St::M };
                    // Record the transition from the previous state at
                    // node-1 into this node. Begin → first node counts as
                    // an M/D split we fold into node 0's virtual entry —
                    // skipped, matching the core-model scope.
                    if node > 0 {
                        let t = &mut t_counts[node - 1];
                        match (state, next) {
                            (St::M, St::M) => t.mm += 1.0,
                            (St::M, St::D) => t.md += 1.0,
                            (St::I, St::M) => t.im += 1.0,
                            (St::I, St::D) => t.md += 1.0, // I→D folded (Plan-7 has no I→D)
                            (St::D, St::M) => t.dm += 1.0,
                            (St::D, St::D) => t.dd += 1.0,
                            (St::Begin, _) => {}
                            _ => {}
                        }
                    }
                    if !is_gap(r) {
                        if is_standard(r) {
                            mat_counts[node][r as usize] += w;
                        } else {
                            // Degenerate: spread over members.
                            for &mem in crate::alphabet::degenerate_members(r) {
                                mat_counts[node][mem as usize] +=
                                    w / crate::alphabet::degenerate_members(r).len() as f32;
                            }
                        }
                    }
                    state = next;
                    node += 1;
                }
                Col::Insert => {
                    if !is_gap(r) && node > 0 {
                        if is_standard(r) {
                            ins_counts[node - 1][r as usize] += w;
                        }
                        let t = &mut t_counts[node - 1];
                        match state {
                            St::M => t.mi += w,
                            St::I => t.ii += w,
                            St::D => t.mi += w, // D→I folded (no D→I in Plan-7)
                            St::Begin => {}
                        }
                        state = St::I;
                    }
                    // Inserts before node 1 are N-flank: ignored.
                }
            }
        }
    }

    // 4. Normalize with pseudocounts.
    let normalize_emis = |counts: &[f32; N_STANDARD], alpha: f32| -> [f32; N_STANDARD] {
        let mut out = [0f32; N_STANDARD];
        let total: f32 = counts.iter().sum::<f32>() + alpha;
        for (x, o) in out.iter_mut().enumerate() {
            *o = (counts[x] + alpha * BACKGROUND_F[x]) / total;
        }
        out
    };
    let a = params.transition_pseudocount;
    let mut nodes = Vec::with_capacity(m);
    let mut consensus = Vec::with_capacity(m);
    for k in 0..m {
        let mat = normalize_emis(&mat_counts[k], params.emission_pseudocount);
        let has_ins = ins_counts[k].iter().sum::<f32>() > 0.0;
        let ins = if has_ins {
            normalize_emis(&ins_counts[k], params.emission_pseudocount)
        } else {
            BACKGROUND_F
        };
        let t = &t_counts[k];
        let msum = t.mm + t.mi + t.md + 3.0 * a;
        let isum = t.im + t.ii + 2.0 * a;
        let dsum = t.dm + t.dd + 2.0 * a;
        nodes.push(Node {
            mat,
            ins,
            t: NodeTrans {
                mm: (t.mm + a) / msum,
                mi: (t.mi + a) / msum,
                md: (t.md + a) / msum,
                im: (t.im + a) / isum,
                ii: (t.ii + a) / isum,
                dm: (t.dm + a) / dsum,
                dd: (t.dd + a) / dsum,
            },
        });
        let best = mat
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
            .map(|(x, _)| x as u8)
            .unwrap_or(0);
        consensus.push(best);
    }
    let model = CoreModel {
        name: name.to_string(),
        nodes,
        consensus,
    };
    debug_assert!(model.validate().is_ok(), "{:?}", model.validate());
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOY: &str = "\
>seq1
MKV-LA
>seq2
MKVQLA
>seq3
MKV-LA
>seq4
M-VQLG
";

    #[test]
    fn parse_and_dimensions() {
        let msa = Msa::parse_afa(TOY).unwrap();
        assert_eq!(msa.n_rows(), 4);
        assert_eq!(msa.width, 6);
        assert!((msa.gap_fraction(3) - 0.5).abs() < 1e-9);
        assert_eq!(msa.gap_fraction(0), 0.0);
    }

    #[test]
    fn afa_round_trip() {
        let msa = Msa::parse_afa(TOY).unwrap();
        let again = Msa::parse_afa(&msa.render_afa()).unwrap();
        assert_eq!(again.rows, msa.rows);
        assert_eq!(again.names, msa.names);
    }

    #[test]
    fn ragged_and_bad_rows_rejected() {
        assert!(matches!(
            Msa::parse_afa(">a\nMKV\n>b\nMK\n"),
            Err(MsaError::RaggedRows { .. })
        ));
        assert!(matches!(
            Msa::parse_afa(">a\nMK9\n"),
            Err(MsaError::BadChar { .. })
        ));
        assert!(matches!(Msa::parse_afa(""), Err(MsaError::Empty)));
    }

    #[test]
    fn build_toy_model() {
        let msa = Msa::parse_afa(TOY).unwrap();
        let model = build_from_msa(&msa, "toy", &MsaBuildParams::default()).unwrap();
        // Column 3 (Q/-) has exactly 50% gaps → insert column; 5 match cols.
        assert_eq!(model.len(), 5);
        model.validate().unwrap();
        // Column 0 is all M → consensus M (code 10).
        assert_eq!(model.consensus[0], 10);
        // Column 1 (K,K,-,K... row4 has '-') still majority K.
        assert_eq!(model.consensus[1], 8);
        // Node 1 saw one deletion (seq4): its entering D path exists via
        // node 0's md count.
        assert!(model.nodes[0].t.md > model.nodes[2].t.md);
    }

    #[test]
    fn built_model_separates_homologs_from_background() {
        // End-to-end: sample gapped rows from a known conserved pattern,
        // build, and verify the model scores a consensus-bearing sequence
        // far above random background.
        use crate::background::NullModel;
        use crate::profile::Profile;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let pattern: Vec<u8> = (0..30).map(|_| rng.gen_range(0u8..20)).collect();
        let mut text = String::new();
        for i in 0..25 {
            text.push_str(&format!(">r{i}\n"));
            for &p in &pattern {
                if rng.gen::<f32>() < 0.08 {
                    text.push('-');
                } else if rng.gen::<f32>() < 0.15 {
                    text.push(symbol(rng.gen_range(0u8..20)).unwrap());
                } else {
                    text.push(symbol(p).unwrap());
                }
            }
            text.push('\n');
        }
        let msa = Msa::parse_afa(&text).unwrap();
        let model = build_from_msa(&msa, "sampled", &MsaBuildParams::default()).unwrap();
        let bg = NullModel::new();
        let prof = Profile::config(&model, &bg);
        let hom: Vec<u8> = pattern.clone();
        let rand_seq: Vec<u8> = (0..30).map(|_| rng.gen_range(0u8..20)).collect();
        let s_hom = ungapped_best(&prof, &hom);
        let s_bg = ungapped_best(&prof, &rand_seq);
        assert!(s_hom > s_bg + 10.0, "homolog {s_hom} vs background {s_bg}");
    }

    #[test]
    fn no_match_columns_error() {
        let all_gaps = ">a\n---\n>b\n---\n>c\nMKV\n"; // 2/3 gaps per column
        let msa = Msa::parse_afa(all_gaps).unwrap();
        assert!(matches!(
            build_from_msa(&msa, "x", &MsaBuildParams::default()),
            Err(MsaError::NoMatchColumns)
        ));
    }

    /// Best ungapped diagonal log-odds sum — a tiny scorer local to this
    /// test (full scorers live in `h3w-cpu`, which depends on this crate).
    fn ungapped_best(p: &crate::profile::Profile, seq: &[u8]) -> f32 {
        let mut best = f32::NEG_INFINITY;
        for start in 0..seq.len() {
            let mut acc = 0.0f32;
            for (off, &x) in seq[start..].iter().enumerate() {
                let k = off + 1;
                if k > p.m {
                    break;
                }
                acc += p.msc[k][x as usize];
                best = best.max(acc);
            }
        }
        best
    }
}

#[cfg(test)]
mod weight_tests {
    use super::*;

    #[test]
    fn identical_rows_share_weight() {
        // Three copies of one sequence + one diverged sequence: the
        // copies must weigh less each than the loner.
        let text = ">a\nMKVLAY\n>b\nMKVLAY\n>c\nMKVLAY\n>d\nWQRSTC\n";
        let msa = Msa::parse_afa(text).unwrap();
        let w = henikoff_weights(&msa);
        assert_eq!(w.len(), 4);
        assert!((w[0] - w[1]).abs() < 1e-6 && (w[1] - w[2]).abs() < 1e-6);
        assert!(w[3] > 2.0 * w[0], "loner {} vs copy {}", w[3], w[0]);
        // Normalized to mean 1.
        let mean: f32 = w.iter().sum::<f32>() / 4.0;
        assert!((mean - 1.0).abs() < 1e-5);
    }

    #[test]
    fn uniform_alignment_gets_uniform_weights() {
        let text = ">a\nMKVL\n>b\nWQRS\n>c\nACDE\n";
        let msa = Msa::parse_afa(text).unwrap();
        let w = henikoff_weights(&msa);
        for v in &w {
            assert!((v - 1.0).abs() < 1e-5, "{w:?}");
        }
    }

    #[test]
    fn weighting_tempers_redundant_counts() {
        // 9 identical rows + 1 divergent row, built with and without
        // weighting: the divergent row's residues should carry visibly
        // more probability mass under weighting.
        let mut text = String::new();
        for i in 0..9 {
            text.push_str(&format!(">copy{i}\nMKVLAY\n"));
        }
        text.push_str(">odd\nWWWWWW\n");
        let msa = Msa::parse_afa(&text).unwrap();
        let weighted = build_from_msa(&msa, "w", &MsaBuildParams::default()).unwrap();
        let params = MsaBuildParams {
            position_based_weights: false,
            ..Default::default()
        };
        let unweighted = build_from_msa(&msa, "u", &params).unwrap();
        // Column 1: W is residue 18.
        let w_mass = weighted.nodes[0].mat[18];
        let u_mass = unweighted.nodes[0].mat[18];
        assert!(
            w_mass > 1.5 * u_mass,
            "weighted W mass {w_mass} vs unweighted {u_mass}"
        );
    }

    #[test]
    fn gap_only_columns_do_not_poison_weights() {
        let text = ">a\nM-KV\n>b\nM-KV\n>c\nW-RS\n";
        let msa = Msa::parse_afa(text).unwrap();
        let w = henikoff_weights(&msa);
        assert!(w.iter().all(|v| v.is_finite() && *v > 0.0));
    }
}

#[cfg(test)]
mod eweight_tests {
    use super::*;
    use crate::background::NullModel;
    use crate::info::model_info;

    fn big_identical_alignment(n: usize) -> Msa {
        let mut text = String::new();
        for i in 0..n {
            text.push_str(&format!(">r{i}\nMKVLAYWQRST\n"));
        }
        Msa::parse_afa(&text).unwrap()
    }

    #[test]
    fn entropy_weighting_caps_information_content() {
        let msa = big_identical_alignment(200);
        let bg = NullModel::new();
        let mut params = MsaBuildParams {
            entropy_target_bits: Some(1.4),
            ..Default::default()
        };
        let capped = build_from_msa(&msa, "c", &params).unwrap();
        params.entropy_target_bits = None;
        let raw = build_from_msa(&msa, "r", &params).unwrap();
        let re_capped = model_info(&capped, &bg).mean_re_bits;
        let re_raw = model_info(&raw, &bg).mean_re_bits;
        assert!(
            re_raw > 3.0,
            "200 identical rows should be near-deterministic: {re_raw}"
        );
        assert!(
            (re_capped - 1.4).abs() < 0.15,
            "capped RE {re_capped} should sit near the 1.4-bit target"
        );
    }

    #[test]
    fn entropy_weighting_is_noop_below_target() {
        // Two diverse rows carry little information: no scaling needed,
        // so the result matches the unweighted build exactly.
        let msa = Msa::parse_afa(">a\nMKVL\n>b\nWQRS\n").unwrap();
        let with = MsaBuildParams {
            entropy_target_bits: Some(5.0), // far above achievable
            ..Default::default()
        };
        let without = MsaBuildParams {
            entropy_target_bits: None,
            ..Default::default()
        };
        let a = build_from_msa(&msa, "a", &with).unwrap();
        let b = build_from_msa(&msa, "b", &without).unwrap();
        for (na, nb) in a.nodes.iter().zip(&b.nodes) {
            for (x, y) in na.mat.iter().zip(&nb.mat) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }
}
