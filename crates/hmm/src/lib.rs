//! # h3w-hmm — Plan-7 profile HMM substrate
//!
//! Everything HMMER 3.0's compute kernels need to know about a protein
//! motif model, reimplemented from scratch for the `hmmer3-warp`
//! reproduction of Jiang & Ganesan (IPDPSW 2015):
//!
//! * [`alphabet`] — the 29-symbol, 5-bit digitized amino alphabet (Fig. 6);
//! * [`background`] — the null model scores are log-odds against;
//! * [`plan7`] — the Plan-7 core model (Fig. 3's M/I/D node chain);
//! * [`profile`] — the configured local search profile in nats;
//! * [`msvprofile`] — the saturating 8-bit MSV filter score system (Fig. 2);
//! * [`vitprofile`] — the saturating 16-bit ViterbiFilter score system;
//! * [`build`] — seeded synthetic models standing in for Pfam 27.0;
//! * [`calibrate`] — Gumbel/exponential score statistics (`λ = log 2`);
//! * [`hmmio`] — the HMMER3 ASCII `.hmm` profile file format;
//! * [`msa`] — alignment-based model construction (`hmmbuild`-style).

pub mod alphabet;
pub mod background;
pub mod build;
pub mod calibrate;
pub mod hmmio;
pub mod info;
pub mod logspace;
pub mod msa;
pub mod msvprofile;
pub mod plan7;
pub mod profile;
pub mod vitprofile;

pub use alphabet::Residue;
pub use background::NullModel;
pub use build::{synthetic_model, BuildParams, PAPER_MODEL_SIZES};
pub use calibrate::Calibration;
pub use msvprofile::MsvProfile;
pub use plan7::CoreModel;
pub use profile::{Profile, SearchMode, NEG_INF};
pub use vitprofile::{VitProfile, W_NEG_INF};
