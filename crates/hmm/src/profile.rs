//! The configured search profile — HMMER's `P7_PROFILE`.
//!
//! A [`Profile`] is a [`CoreModel`] converted to
//! log-odds scores (nats against the null model) and wrapped with the
//! algorithm-dependent states: local entry `B→Mk`, uniform local exit
//! `Mk→E` (score 0), the multi-hit `E→{J,C}` choice, and the N/C/J length
//! model re-tuned per target sequence (`p7_ReconfigLength`).
//!
//! Score conventions shared by every implementation in this workspace
//! (float reference, striped CPU filters, warp-synchronous GPU kernels):
//!
//! * rows `i = 1..=L` over target residues, columns `k = 1..=M`;
//! * `M(i,k) = msc[k][x_i] + max(B(i-1)+bmk[k], M(i-1,k-1)+tmm[k-1],
//!   I(i-1,k-1)+tim[k-1], D(i-1,k-1)+tdm[k-1])`;
//! * `I(i,k) = max(M(i-1,k)+tmi[k], I(i-1,k)+tii[k])` (insert emission
//!   score is 0 in local mode, as in HMMER3);
//! * `D(i,k) = max(M(i,k-1)+tmd[k-1], D(i,k-1)+tdd[k-1])`;
//! * `E(i) = max_k M(i,k)` (filter-style exit — the same approximation
//!   HMMER3's ViterbiFilter makes);
//! * specials: `J/C` fed by `E`, `B` fed by `N`/`J`; final score
//!   `C(L) + move`.

use crate::alphabet::{expand_scores, N_CODES};
use crate::background::NullModel;
use crate::plan7::CoreModel;

/// Negative infinity stand-in for impossible paths.
pub const NEG_INF: f32 = f32::NEG_INFINITY;

/// Alignment mode of the profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Default HMMER3 mode: any number of hits per target (`E→J = E→C = ½`).
    MultihitLocal,
    /// At most one hit per target (`E→C = 1`).
    UnihitLocal,
}

/// Special-state scores configured for one target length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecialScores {
    /// `N→N`, `J→J`, `C→C` self-loop score (identical in HMMER's length model).
    pub loop_sc: f32,
    /// `N→B`, `J→B`, `C→T` move score.
    pub move_sc: f32,
    /// `E→J` score (−∞ in unihit mode).
    pub e_to_j: f32,
    /// `E→C` score.
    pub e_to_c: f32,
}

/// A search profile in nats.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Model name, copied from the core model.
    pub name: String,
    /// Model length `M`.
    pub m: usize,
    /// Alignment mode.
    pub mode: SearchMode,
    /// Match emission log-odds: `msc[k][code]`, `k = 1..=M`; row 0 is −∞.
    pub msc: Vec<[f32; N_CODES]>,
    /// Core transitions in nats, `t*[k]` = transition leaving node `k`
    /// (to node `k+1` for `mm`/`im`/`dm`/`md`/`dd`, within node `k` for
    /// `mi`/`ii`). Index 0 is −∞ (no node 0).
    pub tmm: Vec<f32>,
    pub tmi: Vec<f32>,
    pub tmd: Vec<f32>,
    pub tim: Vec<f32>,
    pub tii: Vec<f32>,
    pub tdm: Vec<f32>,
    pub tdd: Vec<f32>,
    /// Local entry `B→Mk`, `k = 1..=M`; index 0 is −∞. Occupancy-style
    /// distribution `2(M−k+1)/(M(M+1))`.
    pub bmk: Vec<f32>,
    /// Special-state scores for the currently configured target length.
    pub xs: SpecialScores,
    /// Target length the profile is currently configured for.
    pub current_len: usize,
    /// Largest match-emission log-odds in the model (sets the MSV bias).
    pub max_msc: f32,
}

impl Profile {
    /// Configure a core model into a multihit-local search profile
    /// (HMMER3's default `p7_ProfileConfig(..., p7_LOCAL)`), with the length
    /// model initially tuned for `L = 350`.
    pub fn config(core: &CoreModel, bg: &NullModel) -> Profile {
        Self::config_mode(core, bg, SearchMode::MultihitLocal)
    }

    /// Configure with an explicit [`SearchMode`].
    pub fn config_mode(core: &CoreModel, bg: &NullModel, mode: SearchMode) -> Profile {
        let m = core.len();
        let mut msc = Vec::with_capacity(m + 1);
        msc.push([NEG_INF; N_CODES]);
        let mut max_msc = NEG_INF;
        for node in &core.nodes {
            let mut std_sc = [0.0f32; 20];
            for (x, s) in std_sc.iter_mut().enumerate() {
                let f = bg.f[x].max(1e-9);
                *s = (node.mat[x].max(1e-9) / f).ln();
            }
            let row = expand_scores(&std_sc, NEG_INF);
            for &v in &row[..26] {
                if v.is_finite() {
                    max_msc = max_msc.max(v);
                }
            }
            msc.push(row);
        }

        let ln = |p: f32| if p > 0.0 { p.ln() } else { NEG_INF };
        let mut tmm = vec![NEG_INF; m + 1];
        let mut tmi = vec![NEG_INF; m + 1];
        let mut tmd = vec![NEG_INF; m + 1];
        let mut tim = vec![NEG_INF; m + 1];
        let mut tii = vec![NEG_INF; m + 1];
        let mut tdm = vec![NEG_INF; m + 1];
        let mut tdd = vec![NEG_INF; m + 1];
        for (k, node) in core.nodes.iter().enumerate() {
            let k = k + 1;
            tmm[k] = ln(node.t.mm);
            tmi[k] = ln(node.t.mi);
            tmd[k] = ln(node.t.md);
            tim[k] = ln(node.t.im);
            tii[k] = ln(node.t.ii);
            tdm[k] = ln(node.t.dm);
            tdd[k] = ln(node.t.dd);
        }

        // Occupancy-style uniform local entry: P(B→Mk) = 2(M−k+1)/(M(M+1)).
        let mut bmk = vec![NEG_INF; m + 1];
        let denom = (m as f32) * (m as f32 + 1.0);
        for (k, b) in bmk.iter_mut().enumerate().skip(1) {
            *b = (2.0 * (m as f32 - k as f32 + 1.0) / denom).ln();
        }

        let mut p = Profile {
            name: core.name.clone(),
            m,
            mode,
            msc,
            tmm,
            tmi,
            tmd,
            tim,
            tii,
            tdm,
            tdd,
            bmk,
            xs: SpecialScores {
                loop_sc: NEG_INF,
                move_sc: NEG_INF,
                e_to_j: NEG_INF,
                e_to_c: NEG_INF,
            },
            current_len: 0,
            max_msc,
        };
        p.config_length(350);
        p
    }

    /// Compute the special-state scores for a target of length `len`
    /// without mutating the profile — what parallel database sweeps use
    /// (each target length gets its own [`SpecialScores`]).
    pub fn specials_for(&self, len: usize) -> SpecialScores {
        let l = len as f32;
        match self.mode {
            SearchMode::MultihitLocal => SpecialScores {
                loop_sc: (l / (l + 3.0)).ln(),
                move_sc: (3.0 / (l + 3.0)).ln(),
                e_to_j: 0.5f32.ln(),
                e_to_c: 0.5f32.ln(),
            },
            SearchMode::UnihitLocal => SpecialScores {
                loop_sc: (l / (l + 2.0)).ln(),
                move_sc: (2.0 / (l + 2.0)).ln(),
                e_to_j: NEG_INF,
                e_to_c: 0.0,
            },
        }
    }

    /// Retune the N/C/J length model for a target of length `len`
    /// (HMMER's `p7_ReconfigLength`). Multihit: loop `= ln(L/(L+3))`,
    /// move `= ln(3/(L+3))`; unihit uses `L+2` and `2`.
    pub fn config_length(&mut self, len: usize) {
        self.xs = self.specials_for(len);
        self.current_len = len;
    }

    /// Flat MSV entry score `ln(2/(M(M+1)))` — the simplified uniform entry
    /// of the MSV heuristic model (Fig. 2).
    pub fn msv_entry(&self) -> f32 {
        (2.0 / ((self.m as f32) * (self.m as f32 + 1.0))).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{synthetic_model, BuildParams};

    fn sample_profile(m: usize) -> Profile {
        let bg = NullModel::new();
        let core = synthetic_model(m, 7, &BuildParams::default());
        Profile::config(&core, &bg)
    }

    #[test]
    fn entry_distribution_normalizes() {
        let p = sample_profile(40);
        let total: f64 = (1..=p.m).map(|k| (p.bmk[k] as f64).exp()).sum();
        assert!((total - 1.0).abs() < 1e-4, "entry sums to {total}");
    }

    #[test]
    fn msv_entry_matches_formula() {
        let p = sample_profile(25);
        let expect = (2.0f32 / (25.0 * 26.0)).ln();
        assert!((p.msv_entry() - expect).abs() < 1e-6);
    }

    #[test]
    fn length_reconfig_changes_specials_only() {
        let mut p = sample_profile(30);
        let msc_before = p.msc[3];
        p.config_length(10_000);
        assert_eq!(p.current_len, 10_000);
        assert_eq!(p.msc[3], msc_before);
        assert!(p.xs.loop_sc > (100.0f32 / 103.0).ln()); // longer → loop closer to 0
    }

    #[test]
    fn multihit_specials() {
        let mut p = sample_profile(30);
        p.config_length(100);
        assert!((p.xs.e_to_j - 0.5f32.ln()).abs() < 1e-6);
        assert!((p.xs.loop_sc - (100.0f32 / 103.0).ln()).abs() < 1e-6);
        assert!((p.xs.move_sc - (3.0f32 / 103.0).ln()).abs() < 1e-6);
    }

    #[test]
    fn unihit_disables_j() {
        let bg = NullModel::new();
        let core = synthetic_model(20, 3, &BuildParams::default());
        let mut p = Profile::config_mode(&core, &bg, SearchMode::UnihitLocal);
        p.config_length(100);
        assert_eq!(p.xs.e_to_j, NEG_INF);
        assert_eq!(p.xs.e_to_c, 0.0);
    }

    #[test]
    fn transition_rows_have_expected_infinities() {
        let p = sample_profile(10);
        assert_eq!(p.tmm[0], NEG_INF);
        assert!(p.tmm[1].is_finite());
        assert!(p.tdd[p.m].is_finite()); // node M transitions exist (unused by DP)
        assert_eq!(p.msc[0][0], NEG_INF);
    }

    #[test]
    fn max_msc_is_positive_for_conserved_model() {
        let p = sample_profile(60);
        assert!(
            p.max_msc > 1.0,
            "a conserved synthetic model should have strong log-odds, got {}",
            p.max_msc
        );
    }
}
