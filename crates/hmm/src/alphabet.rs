//! The 29-symbol amino-acid alphabet of the paper (Fig. 6).
//!
//! HMMER 3.0 digitizes protein residues into small integer codes. The paper's
//! residue-packing scheme (§III-A, Fig. 6) relies on every code fitting in
//! 5 bits: 20 standard amino acids, 6 degenerate symbols (`B J Z O U X`), and
//! 3 gap/terminator symbols (`-`, `*`, `~`), i.e. codes `0..=28`. Code `31`
//! ([`PAD_CODE`]) is reserved as the packed-stream terminator flag.

/// Number of standard amino acids.
pub const N_STANDARD: usize = 20;
/// Number of degenerate residue symbols (`B J Z O U X`).
pub const N_DEGENERATE: usize = 6;
/// Number of gap/terminator symbols (`-`, `*`, `~`).
pub const N_GAP: usize = 3;
/// Total number of real alphabet symbols (codes `0..N_SYMBOLS`).
pub const N_SYMBOLS: usize = N_STANDARD + N_DEGENERATE + N_GAP; // 29
/// Size of the score tables indexed by residue code. Covers every 5-bit
/// pattern so a packed residue can index a table without bounds remapping.
pub const N_CODES: usize = 32;
/// Reserved 5-bit pad/terminator code appended to packed residue words
/// (drawn red in Fig. 6). Never emitted by a real sequence.
pub const PAD_CODE: u8 = 31;

/// Canonical one-letter symbols in code order.
///
/// `0..=19` standard amino acids (alphabetical by letter, the Easel order),
/// `20..=25` degenerate, `26..=28` gap-like.
pub const SYMBOLS: [char; N_SYMBOLS] = [
    'A', 'C', 'D', 'E', 'F', 'G', 'H', 'I', 'K', 'L', //
    'M', 'N', 'P', 'Q', 'R', 'S', 'T', 'V', 'W', 'Y', //
    'B', 'J', 'Z', 'O', 'U', 'X', //
    '-', '*', '~',
];

/// Digitized residue code (`0..=28`, or [`PAD_CODE`] in packed streams).
pub type Residue = u8;

/// Background amino-acid frequencies (Swiss-Prot composition, the same
/// numbers HMMER's Easel library ships as `fq[]` in `esl_composition`).
/// Indexed by standard residue code; sums to 1.
pub const BACKGROUND_F: [f32; N_STANDARD] = [
    0.0787945, // A
    0.0151600, // C
    0.0535222, // D
    0.0668298, // E
    0.0397062, // F
    0.0695071, // G
    0.0229198, // H
    0.0590092, // I
    0.0594422, // K
    0.0963728, // L
    0.0237718, // M
    0.0414386, // N
    0.0482904, // P
    0.0395639, // Q
    0.0540978, // R
    0.0683364, // S
    0.0540687, // T
    0.0673417, // V
    0.0114135, // W
    0.0304133, // Y
];

/// Errors produced when digitizing text sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlphabetError {
    /// The character is not part of the 29-symbol alphabet.
    InvalidChar(char),
    /// A code outside `0..N_SYMBOLS` (and not [`PAD_CODE`]) was decoded.
    InvalidCode(u8),
}

impl std::fmt::Display for AlphabetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlphabetError::InvalidChar(c) => write!(f, "invalid residue character {c:?}"),
            AlphabetError::InvalidCode(x) => write!(f, "invalid residue code {x}"),
        }
    }
}

impl std::error::Error for AlphabetError {}

/// Digitize one residue character (case-insensitive). `.` is treated as `-`.
pub fn digitize(c: char) -> Result<Residue, AlphabetError> {
    let u = c.to_ascii_uppercase();
    let u = if u == '.' { '-' } else { u };
    SYMBOLS
        .iter()
        .position(|&s| s == u)
        .map(|i| i as Residue)
        .ok_or(AlphabetError::InvalidChar(c))
}

/// Map a residue code back to its canonical character.
pub fn symbol(code: Residue) -> Result<char, AlphabetError> {
    SYMBOLS
        .get(code as usize)
        .copied()
        .ok_or(AlphabetError::InvalidCode(code))
}

/// Is this code one of the 20 standard amino acids?
#[inline]
pub fn is_standard(code: Residue) -> bool {
    (code as usize) < N_STANDARD
}

/// Is this code a degenerate residue symbol (`B J Z O U X`)?
#[inline]
pub fn is_degenerate(code: Residue) -> bool {
    (N_STANDARD..N_STANDARD + N_DEGENERATE).contains(&(code as usize))
}

/// Is this code gap-like (`-`, `*`, `~`)?
#[inline]
pub fn is_gap(code: Residue) -> bool {
    (N_STANDARD + N_DEGENERATE..N_SYMBOLS).contains(&(code as usize))
}

/// Standard-residue membership of a degenerate code.
///
/// `B = {D,N}`, `J = {I,L}`, `Z = {E,Q}`, `O → K` (pyrrolysine),
/// `U → C` (selenocysteine), `X = all twenty`.
pub fn degenerate_members(code: Residue) -> &'static [Residue] {
    const D_N: [Residue; 2] = [2, 11]; // B
    const I_L: [Residue; 2] = [7, 9]; // J
    const E_Q: [Residue; 2] = [3, 13]; // Z
    const K_: [Residue; 1] = [8]; // O
    const C_: [Residue; 1] = [1]; // U
    const ALL: [Residue; 20] = [
        0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19,
    ];
    match code as usize {
        20 => &D_N,
        21 => &I_L,
        22 => &E_Q,
        23 => &K_,
        24 => &C_,
        25 => &ALL,
        _ => &[],
    }
}

/// Expand a per-standard-residue score/probability table to all [`N_CODES`]
/// codes, filling degenerate codes with the background-weighted expectation
/// of their members and gap/pad codes with `fill`.
///
/// This mirrors HMMER's `esl_abc_FExpectScVec`: a degenerate residue scores
/// the *expected* score of its members under the background distribution.
#[allow(clippy::needless_range_loop)]
pub fn expand_scores(standard: &[f32; N_STANDARD], fill: f32) -> [f32; N_CODES] {
    let mut out = [fill; N_CODES];
    out[..N_STANDARD].copy_from_slice(standard);
    for code in N_STANDARD..N_STANDARD + N_DEGENERATE {
        let members = degenerate_members(code as Residue);
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for &m in members {
            let w = BACKGROUND_F[m as usize] as f64;
            num += w * standard[m as usize] as f64;
            den += w;
        }
        out[code] = if den > 0.0 { (num / den) as f32 } else { fill };
    }
    out
}

/// Digitize a full text sequence, rejecting gap-like symbols (search tools
/// operate on unaligned sequences).
pub fn digitize_seq(text: &str) -> Result<Vec<Residue>, AlphabetError> {
    text.chars()
        .filter(|c| !c.is_whitespace())
        .map(|c| {
            let code = digitize(c)?;
            if is_gap(code) {
                Err(AlphabetError::InvalidChar(c))
            } else {
                Ok(code)
            }
        })
        .collect()
}

/// Render a digital sequence back to text.
pub fn textize_seq(seq: &[Residue]) -> Result<String, AlphabetError> {
    seq.iter().map(|&r| symbol(r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn background_sums_to_one() {
        let s: f32 = BACKGROUND_F.iter().sum();
        assert!((s - 1.0).abs() < 1e-4, "background sum {s}");
    }

    #[test]
    fn digitize_round_trip() {
        for (i, &c) in SYMBOLS.iter().enumerate() {
            assert_eq!(digitize(c).unwrap(), i as Residue);
            assert_eq!(symbol(i as Residue).unwrap(), c);
        }
    }

    #[test]
    fn lowercase_and_dot() {
        assert_eq!(digitize('a').unwrap(), 0);
        assert_eq!(digitize('y').unwrap(), 19);
        assert_eq!(digitize('.').unwrap(), digitize('-').unwrap());
    }

    #[test]
    fn invalid_char_rejected() {
        assert!(digitize('1').is_err());
        assert!(digitize('!').is_err());
    }

    #[test]
    fn class_predicates_partition() {
        for code in 0..N_SYMBOLS as Residue {
            let n = is_standard(code) as u8 + is_degenerate(code) as u8 + is_gap(code) as u8;
            assert_eq!(n, 1, "code {code} must be in exactly one class");
        }
        assert!(!is_standard(PAD_CODE) && !is_degenerate(PAD_CODE) && !is_gap(PAD_CODE));
    }

    #[test]
    fn all_codes_fit_five_bits() {
        // Compile-time facts, asserted dynamically so a future edit that
        // grows the alphabet past 5 bits fails loudly here.
        let n = SYMBOLS.len();
        assert!(n <= 29, "alphabet grew past the packing budget: {n}");
        let pad = PAD_CODE as usize;
        assert!(pad < 32 && pad >= n);
    }

    #[test]
    fn degenerate_members_are_standard() {
        for code in N_STANDARD..N_STANDARD + N_DEGENERATE {
            let members = degenerate_members(code as Residue);
            assert!(!members.is_empty(), "code {code} has no members");
            assert!(members.iter().all(|&m| is_standard(m)));
        }
        assert_eq!(degenerate_members(25).len(), 20); // X
    }

    #[test]
    fn expand_scores_x_is_background_mean() {
        let mut table = [0.0f32; N_STANDARD];
        for (i, t) in table.iter_mut().enumerate() {
            *t = i as f32;
        }
        let full = expand_scores(&table, -99.0);
        let mean: f32 = (0..N_STANDARD).map(|i| BACKGROUND_F[i] * table[i]).sum();
        assert!((full[25] - mean).abs() < 1e-4);
        assert_eq!(full[26], -99.0);
        assert_eq!(full[31], -99.0);
    }

    #[test]
    fn digitize_seq_rejects_gaps() {
        assert!(digitize_seq("ACDE-FG").is_err());
        let d = digitize_seq("acd efg").unwrap();
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn textize_round_trip() {
        let d = digitize_seq("MKVLAYXZB").unwrap();
        assert_eq!(textize_seq(&d).unwrap(), "MKVLAYXZB");
    }
}
