//! Synthetic profile-HMM construction — the substitute for Pfam 27.0.
//!
//! The paper evaluates on Pfam models of sizes 48…2405 (§IV). The kernels
//! observe a model only through its size `M` and its quantized score tables,
//! so a seeded synthetic model of the same size exercises identical code
//! paths and resource footprints (see DESIGN.md §2). This module generates
//! such models, plus a sampler matching the Pfam model-size distribution
//! quoted in the paper (84.5% ≤ 400, 14.4% in 401..=1000, 1.1% > 1000).

use crate::alphabet::{BACKGROUND_F, N_STANDARD};
use crate::plan7::{CoreModel, Node, NodeTrans};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The eight model sizes benchmarked in the paper (Figs. 9–11).
pub const PAPER_MODEL_SIZES: [usize; 8] = [48, 100, 200, 400, 800, 1002, 1528, 2405];

/// Number of protein families in Pfam 27.0 (pfamA + pfamB) per the paper.
pub const PFAM_N_FAMILIES: usize = 34_831;

/// Tunables for [`synthetic_model`].
#[derive(Debug, Clone)]
pub struct BuildParams {
    /// Mean probability mass on the consensus residue of a match column.
    pub conservation: f32,
    /// Half-width of the per-column jitter applied to `conservation`.
    pub conservation_jitter: f32,
    /// Mean M→M transition probability.
    pub t_mm: f32,
    /// Mean I→I self-loop probability.
    pub t_ii: f32,
    /// Mean D→D continuation probability.
    pub t_dd: f32,
}

impl Default for BuildParams {
    fn default() -> Self {
        BuildParams {
            conservation: 0.70,
            conservation_jitter: 0.15,
            t_mm: 0.95,
            t_ii: 0.35,
            t_dd: 0.30,
        }
    }
}

impl BuildParams {
    /// A deliberately gappy parameterization (high D→D), used by the Lazy-F
    /// ablation (E8): the paper's §VI notes large models can take the D-D
    /// path in as much as 80% of transitions.
    pub fn gappy() -> Self {
        BuildParams {
            conservation: 0.55,
            conservation_jitter: 0.10,
            t_mm: 0.80,
            t_ii: 0.40,
            t_dd: 0.80,
        }
    }
}

/// Deterministically generate a Plan-7 core model of length `m`.
///
/// Each column gets a consensus residue drawn from the background, with
/// `conservation` mass on it and the remainder spread background-
/// proportionally; inserts emit the background; transitions are jittered
/// around the [`BuildParams`] means.
pub fn synthetic_model(m: usize, seed: u64, params: &BuildParams) -> CoreModel {
    assert!(m >= 1, "model length must be >= 1");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15 ^ (m as u64) << 32);
    let mut nodes = Vec::with_capacity(m);
    let mut consensus = Vec::with_capacity(m);
    for _ in 0..m {
        let cons = sample_background(&mut rng);
        consensus.push(cons);
        let c = (params.conservation
            + rng.gen_range(-params.conservation_jitter..=params.conservation_jitter))
        .clamp(0.25, 0.95);
        let mut mat = [0.0f32; N_STANDARD];
        let rest = 1.0 - c;
        for (x, p) in mat.iter_mut().enumerate() {
            *p = rest * BACKGROUND_F[x];
        }
        mat[cons as usize] += c;
        normalize(&mut mat);

        let ins = BACKGROUND_F;

        let mm = jitter(&mut rng, params.t_mm, 0.03).clamp(0.5, 0.98);
        let leftover = 1.0 - mm;
        let mi_frac = rng.gen_range(0.3..0.7);
        let mi = leftover * mi_frac;
        let md = leftover - mi;
        let ii = jitter(&mut rng, params.t_ii, 0.10).clamp(0.05, 0.9);
        let dd = jitter(&mut rng, params.t_dd, 0.10).clamp(0.05, 0.95);
        nodes.push(Node {
            mat,
            ins,
            t: NodeTrans {
                mm,
                mi,
                md,
                im: 1.0 - ii,
                ii,
                dm: 1.0 - dd,
                dd,
            },
        });
    }
    let model = CoreModel {
        name: format!("SYN{m:05}-{seed:08x}"),
        nodes,
        consensus,
    };
    debug_assert!(model.validate().is_ok());
    model
}

/// Sample `n` model sizes following the Pfam 27.0 size bands quoted in §IV
/// of the paper: 84.5% of families ≤ 400 columns, 14.4% in 401..=1000,
/// 1.1% above 1000 (capped at 2500). Within a band sizes are log-uniform.
pub fn pfam_size_sample(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u: f32 = rng.gen();
            let (lo, hi) = if u < 0.845 {
                (20.0f32, 400.0f32)
            } else if u < 0.845 + 0.144 {
                (401.0, 1000.0)
            } else {
                (1001.0, 2500.0)
            };
            let x = (lo.ln() + rng.gen::<f32>() * (hi.ln() - lo.ln())).exp();
            x.round() as usize
        })
        .collect()
}

fn sample_background(rng: &mut StdRng) -> u8 {
    let mut u: f32 = rng.gen();
    for (x, &f) in BACKGROUND_F.iter().enumerate() {
        if u < f {
            return x as u8;
        }
        u -= f;
    }
    (N_STANDARD - 1) as u8
}

fn jitter(rng: &mut StdRng, mean: f32, width: f32) -> f32 {
    mean + rng.gen_range(-width..=width)
}

fn normalize(v: &mut [f32; N_STANDARD]) {
    let s: f32 = v.iter().sum();
    for p in v.iter_mut() {
        *p /= s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_model_is_valid() {
        for &m in &[1usize, 48, 400] {
            let model = synthetic_model(m, 42, &BuildParams::default());
            model.validate().unwrap();
            assert_eq!(model.len(), m);
        }
    }

    #[test]
    fn synthetic_model_is_deterministic() {
        let a = synthetic_model(64, 7, &BuildParams::default());
        let b = synthetic_model(64, 7, &BuildParams::default());
        assert_eq!(a.consensus, b.consensus);
        assert_eq!(a.nodes[10].mat, b.nodes[10].mat);
    }

    #[test]
    fn different_seeds_differ() {
        let a = synthetic_model(64, 7, &BuildParams::default());
        let b = synthetic_model(64, 8, &BuildParams::default());
        assert_ne!(a.consensus, b.consensus);
    }

    #[test]
    fn gappy_params_raise_dd() {
        let g = synthetic_model(100, 1, &BuildParams::gappy());
        let c = synthetic_model(100, 1, &BuildParams::default());
        let mean_dd =
            |m: &CoreModel| m.nodes.iter().map(|n| n.t.dd as f64).sum::<f64>() / m.len() as f64;
        assert!(mean_dd(&g) > mean_dd(&c) + 0.3);
    }

    #[test]
    fn pfam_sample_matches_bands() {
        let sizes = pfam_size_sample(20_000, 3);
        let n = sizes.len() as f64;
        let small = sizes.iter().filter(|&&s| s <= 400).count() as f64 / n;
        let mid = sizes.iter().filter(|&&s| s > 400 && s <= 1000).count() as f64 / n;
        let large = sizes.iter().filter(|&&s| s > 1000).count() as f64 / n;
        assert!((small - 0.845).abs() < 0.02, "small band {small}");
        assert!((mid - 0.144).abs() < 0.02, "mid band {mid}");
        assert!((large - 0.011).abs() < 0.01, "large band {large}");
    }

    #[test]
    fn pfam_sample_deterministic() {
        assert_eq!(pfam_size_sample(100, 9), pfam_size_sample(100, 9));
    }
}
