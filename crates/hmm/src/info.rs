//! Model information statistics — what `hmmbuild` reports about a model
//! (per-column relative entropy, gappiness, consensus).

use crate::alphabet::{symbol, N_STANDARD};
use crate::background::NullModel;
use crate::plan7::CoreModel;

/// Summary statistics of one core model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelInfo {
    /// Model length.
    pub m: usize,
    /// Mean per-column relative entropy in bits (HMMER aims for ~0.59
    /// bits/column after entropy weighting; unweighted seeds are higher).
    pub mean_re_bits: f32,
    /// Total information content in bits.
    pub total_re_bits: f32,
    /// Mean D→D probability (the Lazy-F workload driver, §III-B/§VI).
    pub mean_dd: f32,
    /// Mean I→I probability.
    pub mean_ii: f32,
    /// Consensus sequence.
    pub consensus: String,
}

/// Per-column relative entropy (KL divergence of match emissions vs the
/// background) in **bits**.
pub fn relative_entropy_per_column(model: &CoreModel, bg: &NullModel) -> Vec<f32> {
    model
        .nodes
        .iter()
        .map(|node| {
            let mut re = 0f32;
            for x in 0..N_STANDARD {
                let p = node.mat[x];
                if p > 0.0 {
                    re += p * (p / bg.f[x].max(1e-9)).log2();
                }
            }
            re.max(0.0)
        })
        .collect()
}

/// Compute the summary.
pub fn model_info(model: &CoreModel, bg: &NullModel) -> ModelInfo {
    let re = relative_entropy_per_column(model, bg);
    let total: f32 = re.iter().sum();
    let m = model.len();
    let mean_dd = model.nodes.iter().map(|n| n.t.dd).sum::<f32>() / m as f32;
    let mean_ii = model.nodes.iter().map(|n| n.t.ii).sum::<f32>() / m as f32;
    ModelInfo {
        m,
        mean_re_bits: total / m as f32,
        total_re_bits: total,
        mean_dd,
        mean_ii,
        consensus: model
            .consensus
            .iter()
            .map(|&c| symbol(c).expect("valid consensus code"))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{synthetic_model, BuildParams};
    use crate::plan7::{Node, NodeTrans};

    #[test]
    fn background_model_has_zero_entropy() {
        // A model that emits the background distribution carries no
        // information.
        let node = Node {
            mat: crate::alphabet::BACKGROUND_F,
            ins: crate::alphabet::BACKGROUND_F,
            t: NodeTrans::conserved(),
        };
        let model = CoreModel {
            name: "bg".into(),
            nodes: vec![node; 4],
            consensus: vec![0; 4],
        };
        let bg = NullModel::new();
        let info = model_info(&model, &bg);
        assert!(info.mean_re_bits.abs() < 1e-4, "{}", info.mean_re_bits);
    }

    #[test]
    fn deterministic_column_has_high_entropy() {
        // A column that always emits W (background 1.1%) carries
        // log2(1/0.0114) ≈ 6.45 bits.
        let mut mat = [0f32; N_STANDARD];
        mat[18] = 1.0; // W
        let node = Node {
            mat,
            ins: crate::alphabet::BACKGROUND_F,
            t: NodeTrans::conserved(),
        };
        let model = CoreModel {
            name: "w".into(),
            nodes: vec![node],
            consensus: vec![18],
        };
        let bg = NullModel::new();
        let re = relative_entropy_per_column(&model, &bg);
        assert!((re[0] - 6.45).abs() < 0.05, "{}", re[0]);
    }

    #[test]
    fn gappy_models_report_higher_dd() {
        let bg = NullModel::new();
        let c = model_info(&synthetic_model(60, 3, &BuildParams::default()), &bg);
        let g = model_info(&synthetic_model(60, 3, &BuildParams::gappy()), &bg);
        assert!(g.mean_dd > c.mean_dd + 0.3);
        assert_eq!(c.consensus.len(), 60);
    }

    #[test]
    fn conserved_synthetic_models_carry_information() {
        let bg = NullModel::new();
        let info = model_info(&synthetic_model(100, 7, &BuildParams::default()), &bg);
        // ~70% consensus mass gives a couple of bits per column.
        assert!(
            info.mean_re_bits > 1.0 && info.mean_re_bits < 4.5,
            "{}",
            info.mean_re_bits
        );
        assert!((info.total_re_bits / info.mean_re_bits - 100.0).abs() < 0.5);
    }
}
