//! Multi-GPU database scan on four simulated Fermi GTX 580s (§IV-A).
//!
//! ```sh
//! cargo run --release --example multi_gpu_scan
//! ```
//!
//! The database is partitioned length-sorted round-robin, each device runs
//! the same warp-synchronous MSV kernel (shared-memory reductions — Fermi
//! has no shuffle), and the wall time is the makespan.

use hmmer3_warp::core::multi_gpu::{partition_db, run_msv_multi};
use hmmer3_warp::prelude::*;

fn main() {
    let model = synthetic_model(400, 580, &BuildParams::default());
    let bg = NullModel::new();
    let profile = Profile::config(&model, &bg);
    let msv = MsvProfile::from_profile(&profile);
    let mut spec = DbGenSpec::envnr_like().scaled(5e-5); // ≈ 330 seqs
    spec.homolog_fraction = 0.01;
    let db = generate(&spec, Some(&model), 33);
    let dev = DeviceSpec::gtx_580();
    println!(
        "query m=400, database {} seqs / {} residues, 4x {}",
        db.len(),
        db.total_residues(),
        dev.name
    );

    let parts = partition_db(&db, 4);
    println!();
    println!("partition balance (residues per device):");
    for (i, p) in parts.iter().enumerate() {
        println!(
            "  device {}: {:>8} residues / {:>4} seqs",
            i,
            p.total_residues(),
            p.len()
        );
    }

    let run = run_msv_multi(&msv, &db, &dev, 4, None).expect("multi-GPU run");
    println!();
    println!("per-device modeled MSV times:");
    for (i, d) in run.devices.iter().enumerate() {
        println!(
            "  device {}: {:.3} ms ({:?} config, occupancy {:.0}%, {} rows)",
            i,
            d.run.time.total_s * 1e3,
            d.run.mem,
            d.run.occupancy.occupancy * 100.0,
            d.run.stats.rows
        );
    }
    println!("makespan: {:.3} ms", run.makespan_s * 1e3);
    let slowest = run
        .devices
        .iter()
        .map(|d| d.run.time.total_s)
        .fold(0.0f64, f64::max);
    let fastest = run
        .devices
        .iter()
        .map(|d| d.run.time.total_s)
        .fold(f64::INFINITY, f64::min);
    println!(
        "device time spread: {:.1}% (residue counts are balanced to ~5%; on a \
         sample this small the per-device warp-scheduling tails dominate)",
        (slowest / fastest - 1.0) * 100.0
    );
    let total: usize = run.devices.iter().map(|d| d.hits.len()).sum();
    assert_eq!(total, db.len());
    println!(
        "all {} sequences scored exactly once across the 4 devices",
        total
    );
}
