//! Sweep the paper's eight model sizes and watch the §IV occupancy story:
//! the shared-memory configuration collapses as the model grows, the
//! global configuration holds, and the cache-aware switch picks the
//! faster one per size.
//!
//! ```sh
//! cargo run --release --example model_size_sweep
//! ```

use hmmer3_warp::core::layout::best_config;
use hmmer3_warp::core::stats_model::DbAggregates;
use hmmer3_warp::core::tiered::auto_mem_config;
use hmmer3_warp::prelude::*;

fn main() {
    let dev = DeviceSpec::tesla_k40();
    // A nominal Env_nr-scale workload shape (only the aggregates matter
    // for configuration choice).
    let agg = DbAggregates {
        n_seqs: 6_549_721,
        total_residues: 1_290_247_663,
        total_words: 215_041_277,
        code_rows: [1_290_247_663 / 26; 26],
    };
    println!("device: {}", dev.name);
    println!();
    println!(
        "{:>6} | {:<9} | {:>9} {:>9} | {:>9} {:>9} | {:>8}",
        "M", "stage", "sh-occ", "sh-wpb", "gl-occ", "gl-wpb", "switch"
    );
    for stage in [Stage::Msv, Stage::Viterbi] {
        for &m in &PAPER_MODEL_SIZES {
            let fmt = |mem| match best_config(stage, m, mem, &dev) {
                Some((cfg, occ)) => (
                    format!("{:>8.0}%", occ.occupancy * 100.0),
                    format!("{:>9}", cfg.warps_per_block),
                ),
                None => (format!("{:>9}", "-"), format!("{:>9}", "-")),
            };
            let (so, sw) = fmt(MemConfig::Shared);
            let (go, gw) = fmt(MemConfig::Global);
            let choice = match auto_mem_config(stage, m, &dev, &agg) {
                Some(MemConfig::Shared) => "shared",
                Some(MemConfig::Global) => "global",
                None => "-",
            };
            println!(
                "{:>6} | {:<9} | {} {} | {} {} | {:>8}",
                m,
                match stage {
                    Stage::Msv => "MSV",
                    Stage::Viterbi => "P7Viterbi",
                    Stage::Forward => "Forward",
                },
                so,
                sw,
                go,
                gw,
                choice
            );
        }
    }
    println!();
    println!(
        "paper §IV: MSV switches shared→global near M = 1002; P7Viterbi is \
         register-capped at 50% and its shared tables stop fitting near M ≈ 650."
    );
}
