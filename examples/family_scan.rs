//! Family scan: build models from alignments, then scan a database with
//! the whole family set (hmmscan-style) — the end-to-end workflow a
//! downstream user runs.
//!
//! ```sh
//! cargo run --release --example family_scan
//! ```

use hmmer3_warp::hmm::msa::{build_from_msa, Msa, MsaBuildParams};
use hmmer3_warp::pipeline::{best_hits_per_target, scan};
use hmmer3_warp::prelude::*;
use hmmer3_warp::seqdb::gen::sample_homolog;
use hmmer3_warp::seqdb::DigitalSeq;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fabricate a small alignment around a conserved pattern (stand-in for a
/// curated seed alignment).
fn fake_alignment(rng: &mut StdRng, cols: usize, rows: usize) -> String {
    use hmmer3_warp::hmm::alphabet::symbol;
    let pattern: Vec<u8> = (0..cols).map(|_| rng.gen_range(0u8..20)).collect();
    let mut text = String::new();
    for r in 0..rows {
        text.push_str(&format!(">row{r}\n"));
        for &p in &pattern {
            let c = if rng.gen::<f32>() < 0.07 {
                '-'
            } else if rng.gen::<f32>() < 0.12 {
                symbol(rng.gen_range(0u8..20)).unwrap()
            } else {
                symbol(p).unwrap()
            };
            text.push(c);
        }
        text.push('\n');
    }
    text
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);

    // 1. Build three families from (fabricated) seed alignments.
    let mut families = Vec::new();
    for (i, cols) in [40usize, 65, 90].into_iter().enumerate() {
        let afa = fake_alignment(&mut rng, cols, 30);
        let msa = Msa::parse_afa(&afa).expect("valid alignment");
        let mut model =
            build_from_msa(&msa, &format!("FAM{i:03}"), &MsaBuildParams::default()).unwrap();
        model.name = format!("FAM{i:03}");
        println!(
            "built {}: {} match columns from {} rows",
            model.name,
            model.len(),
            msa.n_rows()
        );
        families.push(model);
    }

    // 2. A target database seeded with homologs of families 0 and 2.
    let mut db = generate(&DbGenSpec::envnr_like().scaled(2e-4), None, 7);
    for (tag, fam) in [(0usize, &families[0]), (2, &families[2])] {
        for j in 0..8 {
            db.seqs.push(DigitalSeq {
                name: format!("planted_f{tag}_{j}"),
                desc: String::new(),
                residues: sample_homolog(&mut rng, fam, 30),
            });
        }
    }
    println!(
        "database: {} sequences / {} residues (16 planted homologs)",
        db.len(),
        db.total_residues()
    );

    // 3. Scan.
    let results = scan(&families, &db, PipelineConfig::default(), 99).expect("cpu scan succeeds");
    println!();
    for fr in &results {
        println!(
            "{} (M={}): MSV pass {}, Viterbi pass {}, hits {}",
            fr.family,
            fr.m,
            fr.passed.0,
            fr.passed.1,
            fr.hits.len()
        );
    }

    // 4. Per-target view.
    println!();
    println!("per-target assignments:");
    for (seqid, matches) in best_hits_per_target(&results).iter().take(12) {
        let name = &db.seqs[*seqid as usize].name;
        let m = &matches[0];
        println!(
            "  {:<18} → {} (fwd {:.1} nats, E = {:.2e}{})",
            name,
            m.family,
            m.score,
            m.evalue,
            if matches.len() > 1 {
                format!(", +{} weaker", matches.len() - 1)
            } else {
                String::new()
            }
        );
    }
}
