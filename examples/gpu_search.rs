//! GPU-accelerated search on the simulated Tesla K40.
//!
//! ```sh
//! cargo run --release --example gpu_search
//! ```
//!
//! The MSV and P7Viterbi stages run as warp-synchronous kernels on the
//! SIMT simulator (one warp per sequence, zero per-row barriers,
//! conflict-free shared memory, shuffle reductions); the Forward stage
//! stays on the host — exactly the paper's deployment. Scores are
//! bit-identical to the CPU path, so the reported hits are too.

use hmmer3_warp::core::tiered::run_msv_device;
use hmmer3_warp::prelude::*;

fn main() {
    let model = synthetic_model(200, 77, &BuildParams::default());
    let pipe = Pipeline::prepare(&model, PipelineConfig::default(), 8);
    let mut spec = DbGenSpec::envnr_like().scaled(1e-4); // ≈ 650 short reads
    spec.homolog_fraction = 0.01;
    let db = generate(&spec, Some(&model), 21);
    let dev = DeviceSpec::tesla_k40();
    println!(
        "query m={}, database {} seqs / {} residues, device {}",
        model.len(),
        db.len(),
        db.total_residues(),
        dev.name
    );

    // Run the full pipeline with the two filter stages on the device.
    let gpu = pipe
        .search(&db, &ExecPlan::Device { dev: dev.clone() })
        .expect("device run");
    println!();
    print!("{}", gpu.render());

    // Peek under the hood: launch one MSV kernel directly and inspect the
    // structural claims of §III-A.
    let packed = PackedDb::from_db(&db);
    let run = run_msv_device(&pipe.msv, &packed, &dev, None).expect("kernel run");
    let s = &run.run.stats;
    println!();
    println!("MSV kernel telemetry ({:?} config):", run.run.mem);
    println!(
        "  occupancy          : {:.0}%",
        run.run.occupancy.occupancy * 100.0
    );
    println!("  rows processed     : {}", s.rows);
    println!(
        "  barriers           : {} (launch staging only — zero per row)",
        s.barriers
    );
    println!("  bank conflicts     : {}", s.smem_conflict_extra);
    println!("  shared-mem races   : {}", s.hazards);
    println!("  shuffle reductions : {} (5 per row)", s.shuffles);
    println!(
        "  modeled device time: {:.3} ms (imbalance {:.3})",
        run.run.time.total_s * 1e3,
        run.run.imbalance
    );

    // The CPU pipeline must agree hit-for-hit.
    let cpu = pipe
        .search(&db, &ExecPlan::Cpu)
        .expect("the CPU plan cannot fail");
    assert_eq!(
        cpu.hits.iter().map(|h| h.seqid).collect::<Vec<_>>(),
        gpu.hits.iter().map(|h| h.seqid).collect::<Vec<_>>()
    );
    println!();
    println!("CPU and simulated-GPU pipelines report identical hits.");
}
