//! Quickstart: build a query motif, search a database, report homologs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! This is the plain-CPU path — the full HMMER 3.0 task pipeline
//! (MSV filter → P7Viterbi filter → Forward) with striped SSE-style
//! filters and calibrated E-values, no simulated GPU involved.

use hmmer3_warp::prelude::*;

fn main() {
    // 1. A query model. Real deployments would build this from a multiple
    //    sequence alignment; here we synthesize a 120-column family.
    let model = synthetic_model(120, 2024, &BuildParams::default());
    println!("query: {} ({} consensus columns)", model.name, model.len());

    // 2. Prepare the pipeline: configure the profile, quantize the 8-bit
    //    MSV and 16-bit Viterbi score systems, stripe them, and calibrate
    //    the score statistics (Gumbel/exponential, λ = log 2).
    let pipe = Pipeline::prepare(&model, PipelineConfig::default(), 7);
    println!(
        "calibrated: mu_msv {:.2}, mu_vit {:.2}, tau_fwd {:.2} (nats)",
        pipe.cal.mu_msv, pipe.cal.mu_vit, pipe.cal.tau_fwd
    );

    // 3. A target database: Swiss-Prot-like lengths, 2% of sequences are
    //    true homologs of the query (sampled from the model itself).
    let mut spec = DbGenSpec::swissprot_like().scaled(0.002); // ≈ 920 seqs
    spec.homolog_fraction = 0.02;
    let db = generate(&spec, Some(&model), 11);
    println!(
        "database: {} — {} sequences, {} residues",
        db.name,
        db.len(),
        db.total_residues()
    );

    // 4. Search.
    let result = pipe
        .search(&db, &ExecPlan::Cpu)
        .expect("the CPU plan cannot fail");
    println!();
    print!("{}", result.render());

    // 5. The funnel in action: the MSV filter discards ~98% of targets,
    //    Viterbi most of the rest; only then is the expensive Forward
    //    score computed.
    let recovered = result
        .hits
        .iter()
        .filter(|h| h.name.starts_with("hom"))
        .count();
    let planted = db.seqs.iter().filter(|s| s.name.starts_with("hom")).count();
    println!("recovered {recovered} of {planted} planted homologs");
}
